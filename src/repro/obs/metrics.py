"""Counters, gauges, and fixed-bucket histograms for the checkpoint pipeline.

The paper's whole argument is quantitative — per-phase checkpoint cost,
bytes written, specialization hit rates — yet measurements used to be
hand-rolled ``perf_counter`` deltas scattered through the consumers. A
:class:`MetricsRegistry` centralizes them: the runtime records into named
instruments, and one :meth:`~MetricsRegistry.snapshot` call yields the
whole state as JSON-ready data (histograms include interpolated
percentiles, so ``BENCH_*.json`` reports latency distributions, not just
totals).

Instruments are identified by name plus a label set
(``commit_seconds{phase=BTA}``); asking for the same identity twice
returns the same instrument. Everything is guarded by one lock, because
the :class:`~repro.core.storage.BackgroundWriter` drain thread records
concurrently with the committing thread.

The disabled registry is the shared :data:`NULL_METRICS` singleton: its
instruments are process-wide no-op singletons, so an uninstrumented hot
path performs no allocation and no locking.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: default latency buckets (seconds): ~50us to 5s, roughly log-spaced
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: default size buckets (bytes): 64 B to 64 MB, powers of ~8
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    64.0,
    512.0,
    4096.0,
    32768.0,
    262144.0,
    2097152.0,
    16777216.0,
    67108864.0,
)

#: the percentiles every histogram snapshot reports
SNAPSHOT_PERCENTILES = (0.5, 0.9, 0.99)


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """The canonical identity string: ``name{k1=v1,k2=v2}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("key", "value", "_lock")

    def __init__(self, key: str, lock: threading.Lock) -> None:
        self.key = key
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (queue depth, chain length)."""

    __slots__ = ("key", "value", "_lock")

    def __init__(self, key: str, lock: threading.Lock) -> None:
        self.key = key
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Fixed upper-bound buckets plus sum/count/min/max.

    A value lands in the first bucket whose upper bound is ``>=`` the
    value; values above the last bound land in the overflow bucket.
    Percentiles are estimated by linear interpolation inside the bucket
    containing the requested rank (the overflow bucket reports the
    observed maximum).
    """

    __slots__ = ("key", "buckets", "counts", "sum", "count", "min", "max", "_lock")

    def __init__(
        self,
        key: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        self.key = key
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            index = len(self.buckets)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    index = position
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``0 < q <= 1``); None when empty."""
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == len(self.buckets):
                    return self.max
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> dict:
        data = {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }
        for q in SNAPSHOT_PERCENTILES:
            data[f"p{int(q * 100)}"] = self.percentile(q)
        return data


class MetricsRegistry:
    """Named instruments plus one JSON-ready snapshot of all of them."""

    #: False only on the :class:`NullMetrics` singleton
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(key, self._lock)
                self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(key, self._lock)
                self._gauges[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        key = metric_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(key, self._lock, buckets)
            self._histograms[key] = instrument
        return instrument

    def snapshot(self) -> dict:
        """Everything recorded so far, as plain JSON-serializable data."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: counters[k].value for k in sorted(counters)},
            "gauges": {k: gauges[k].value for k in sorted(gauges)},
            "histograms": {
                k: histograms[k].snapshot() for k in sorted(histograms)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    key = "null"

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(MetricsRegistry):
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS, **labels):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: the process-wide disabled registry; hot paths compare against it
NULL_METRICS = NullMetrics()
