"""Structured tracing for the checkpoint pipeline.

A :class:`Tracer` turns the runtime's interesting moments — commit start
and end, strategy fallback, retry attempts, compaction, background-writer
drains, fsck repairs — into typed event records delivered to pluggable
:class:`Exporter` targets. Records are flat dictionaries::

    {"ts": 12.345678901, "seq": 17, "type": "commit.end",
     "phase": "BTA", "kind": "incremental", "strategy": "specialized:...",
     "wall_seconds": 0.00042, "bytes": 1337, ...}

``ts`` is a ``perf_counter`` timestamp (monotonic within one process,
meaningless across processes), ``seq`` a per-tracer sequence number that
makes ordering unambiguous even at equal timestamps, and ``type`` the
event's schema tag (see ``docs/INTERNALS.md`` §7 for the full catalog).

Two invariants the runtime relies on:

- **Exporter failure never fails a commit.** Every export is guarded;
  a raising exporter only increments :attr:`Tracer.dropped`.
- **Disabled tracing is free.** The disabled tracer is the shared
  :data:`NULL_TRACER` singleton; instrumented code checks
  ``tracer.enabled`` before allocating records or reading the clock, so
  an uninstrumented commit performs no extra timer calls and no
  allocation.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Iterable, List, Optional


class Exporter:
    """One delivery target for trace records."""

    def export(self, record: dict) -> None:
        """Deliver one event record (must not retain and mutate it)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op by default)."""


class MemoryExporter(Exporter):
    """Collect records in memory (tests, in-process aggregation)."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def export(self, record: dict) -> None:
        self.records.append(record)

    def of_type(self, etype: str) -> List[dict]:
        """The collected records with ``type == etype``, in order."""
        return [r for r in self.records if r.get("type") == etype]


class JsonlExporter(Exporter):
    """Append-only JSON-lines trace file.

    One compact JSON object per line, flushed per record so a crashed
    process leaves at worst one torn final line (the reader skips it).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def export(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class Tracer:
    """Emit typed event records to every attached exporter.

    Thread-safe: the sequence counter and the export fan-out are guarded,
    because the background writer's drain thread traces concurrently with
    the committing thread.
    """

    #: False only on the :class:`NullTracer` singleton
    enabled = True

    def __init__(
        self,
        exporters: Iterable[Exporter] = (),
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.exporters: List[Exporter] = list(exporters)
        self.clock = clock
        #: records lost to raising exporters (tracing never fails a commit)
        self.dropped = 0
        self._seq = 0
        self._lock = threading.Lock()

    def event(self, etype: str, **fields) -> None:
        """Emit one event record of type ``etype``."""
        record = dict(fields)
        record["type"] = etype
        record["ts"] = self.clock()
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            for exporter in self.exporters:
                try:
                    exporter.export(record)
                except Exception:
                    # An observability failure must never become a
                    # checkpointing failure; count it and move on.
                    self.dropped += 1

    def span(self, etype: str, **fields) -> "Span":
        """A context manager emitting ``<etype>.start`` / ``<etype>.end``.

        The end record carries ``wall_seconds`` plus any fields added via
        :meth:`Span.add` while the span was open.
        """
        return Span(self, etype, fields)

    def close(self) -> None:
        """Close every exporter (errors are swallowed and counted)."""
        for exporter in self.exporters:
            try:
                exporter.close()
            except Exception:
                with self._lock:
                    self.dropped += 1


class Span:
    """One timed region: start/end event pair sharing a field set."""

    __slots__ = ("tracer", "etype", "fields", "start")

    def __init__(self, tracer: Tracer, etype: str, fields: dict) -> None:
        self.tracer = tracer
        self.etype = etype
        self.fields = fields
        self.start: Optional[float] = None

    def add(self, **fields) -> None:
        """Attach fields to the eventual end record."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self.start = self.tracer.clock()
        self.tracer.event(f"{self.etype}.start", **self.fields)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = self.tracer.clock() - (self.start or 0.0)
        fields = dict(self.fields)
        fields["wall_seconds"] = wall
        if exc_type is not None:
            fields["error"] = f"{exc_type.__name__}: {exc}"
        self.tracer.event(f"{self.etype}.end", **fields)


class _NullSpan:
    """The shared no-op span: nothing is timed, nothing is allocated."""

    __slots__ = ()

    def add(self, **fields) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def event(self, etype: str, **fields) -> None:
        pass

    def span(self, etype: str, **fields):
        return _NULL_SPAN

    def close(self) -> None:
        pass


#: the process-wide disabled tracer; instrumented code compares against it
NULL_TRACER = NullTracer()


def tracer_or_null(tracer: Optional[Tracer]) -> Tracer:
    """Normalize an optional tracer argument to a usable tracer."""
    return tracer if tracer is not None else NULL_TRACER
