"""repro.obs — structured tracing, metrics, and profiling for the pipeline.

The observability layer the runtime emits its own measurements through,
instead of ad-hoc ``perf_counter`` deltas in every consumer:

- :mod:`repro.obs.tracer` — typed event records (commit start/end,
  strategy fallback, retry attempts, compaction, writer drains, fsck
  repairs) delivered to pluggable exporters, including an append-only
  JSON-lines file. The disabled tracer is the shared :data:`NULL_TRACER`
  no-op singleton, so uninstrumented hot paths pay nothing.
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket latency
  histograms behind one :class:`MetricsRegistry`, snapshotable as JSON
  (with interpolated percentiles).
- :mod:`repro.obs.report` — ``python -m repro.obs report trace.jsonl``
  aggregates a trace into the per-phase commit-cost table shape of the
  paper's figures.

Attach both to a session::

    from repro.obs import JsonlExporter, MetricsRegistry, Tracer

    tracer = Tracer([JsonlExporter("trace.jsonl")])
    metrics = MetricsRegistry()
    session = CheckpointSession(roots=root, sink="ckpts/",
                                tracer=tracer, metrics=metrics)
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    metric_key,
)
from repro.obs.report import TraceReport, aggregate, read_trace, report_file
from repro.obs.tracer import (
    NULL_TRACER,
    Exporter,
    JsonlExporter,
    MemoryExporter,
    NullTracer,
    Span,
    Tracer,
    tracer_or_null,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Exporter",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MemoryExporter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "TraceReport",
    "Tracer",
    "aggregate",
    "metric_key",
    "read_trace",
    "report_file",
    "tracer_or_null",
]
