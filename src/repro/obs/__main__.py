"""CLI: ``python -m repro.obs report <trace.jsonl>`` and a traced workload.

``report``
    Aggregate a JSON-lines trace into per-phase commit latency
    percentiles, bytes, and strategy-tier counts (``--json`` for the
    machine-readable form).

``workload``
    Run the deterministic synthetic workload with tracing and metrics
    enabled — the CI smoke path proving the whole instrumented pipeline
    end to end. Writes the trace (and optionally a metrics snapshot),
    then prints the aggregated report.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args) -> int:
    from repro.obs.report import report_file, save_json

    report = report_file(args.trace)
    if args.json:
        print(save_json(report, args.out))
    else:
        print(report.render())
        if args.out is not None:
            save_json(report, args.out)
    if not report.records:
        print(f"error: no trace records in {args.trace}", file=sys.stderr)
        return 1
    return 0


def _cmd_workload(args) -> int:
    import os
    import tempfile

    from repro.core.checkpoint import snapshot_flags
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import report_file
    from repro.obs.tracer import JsonlExporter, Tracer
    from repro.runtime.policy import EpochPolicy
    from repro.runtime.session import CheckpointSession
    from repro.synthetic.structures import build_structures, element_at

    tracer = Tracer([JsonlExporter(args.out)])
    metrics = MetricsRegistry()
    store_dir = args.store or tempfile.mkdtemp(prefix="obs-workload-")
    roots = build_structures(args.structures, 2, 3, 1)
    session = CheckpointSession(
        roots=roots,
        sink=store_dir,
        policy=EpochPolicy.periodic_full(interval=8),
        tracer=tracer,
        metrics=metrics,
    )
    session.base()
    phases = ("hot", "tail")
    for step in range(1, args.epochs):
        compound = roots[step % len(roots)]
        element_at(compound, step % 2, step % 3).v0 = step
        phase = phases[step % len(phases)]
        dirty = sum(
            1 for _, modified in snapshot_flags(roots) if modified
        )
        metrics.counter("dirty_objects_total", phase=phase).inc(dirty)
        tracer.event("workload.step", step=step, phase=phase, dirty_objects=dirty)
        session.commit(phase=phase)
    session.close()
    tracer.close()

    if args.metrics_out is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(metrics.to_json() + "\n")
        print(f"[wrote {args.metrics_out}]")
    print(f"[wrote {args.out}: {session.commits} commits into {store_dir}]")
    print(report_file(args.out).render())
    if args.store is None:
        import shutil

        shutil.rmtree(store_dir, ignore_errors=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace reporting and the traced synthetic workload.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="aggregate a JSON-lines trace")
    report.add_argument("trace", help="path to the trace.jsonl file")
    report.add_argument(
        "--json", action="store_true", help="print the machine-readable report"
    )
    report.add_argument(
        "--out", default=None, metavar="FILE", help="also write the JSON report"
    )
    report.set_defaults(func=_cmd_report)

    workload = sub.add_parser(
        "workload", help="run the traced synthetic workload"
    )
    workload.add_argument(
        "--out", default="trace.jsonl", metavar="FILE", help="trace output path"
    )
    workload.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="also write the metrics snapshot as JSON",
    )
    workload.add_argument(
        "--structures", type=int, default=50, help="synthetic population size"
    )
    workload.add_argument(
        "--epochs", type=int, default=24, help="epochs to commit (incl. base)"
    )
    workload.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="checkpoint directory (default: a temporary one, removed after)",
    )
    workload.set_defaults(func=_cmd_workload)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
