"""Cost profiles for the paper's three execution environments.

A :class:`CostProfile` prices each abstract operation (see
:mod:`repro.vm.ops`) in nanoseconds; simulated execution time is the dot
product of a profile with measured op counts. The three profiles stand in
for the environments of the paper's evaluation (a 300 MHz UltraSPARC-II,
~3.3 ns/cycle), and were calibrated so the *relative* behaviour matches
what the paper reports (see EXPERIMENTS.md):

``JDK12_JIT``
    The JDK 1.2 just-in-time compiler: little inlining, expensive dynamic
    dispatch, accessor methods cost nearly as much as virtual calls, and
    per-bytecode overheads inflate even field reads and writes.
``HOTSPOT``
    JDK 1.2 with the HotSpot dynamic compiler: aggressive inlining of
    accessors and monomorphic call sites makes generic code much faster —
    the paper observes that unspecialized code under HotSpot can beat
    specialized code without it — but dispatch that remains megamorphic
    (the driver's ``record``/``fold``/``checkpoint`` sites see many
    receiver classes) still pays a real call price.
``HARISSA``
    The Harissa Java-to-C compiler plus GCC: cheap direct-style code,
    with virtual calls compiled to indirect calls through method tables.

The absolute scale is approximate by construction (we are not cycle-exact
simulating a 1999 SPARC); the harness reports *speedups*, which depend
only on cost ratios.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.vm.ops import OP_NAMES, OpCounts


class CostProfile:
    """Nanosecond price of each abstract operation on one backend."""

    def __init__(self, name: str, costs: Dict[str, float]) -> None:
        unknown = set(costs) - set(OP_NAMES)
        if unknown:
            raise KeyError(f"unknown ops in profile {name!r}: {sorted(unknown)}")
        self.name = name
        self.costs = {op: float(costs.get(op, 0.0)) for op in OP_NAMES}

    def seconds(self, counts: OpCounts) -> float:
        """Simulated wall-clock seconds for the given op counts."""
        costs = self.costs
        return sum(counts.counts[op] * costs[op] for op in OP_NAMES) * 1e-9

    def nanoseconds(self, counts: OpCounts) -> float:
        return self.seconds(counts) * 1e9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostProfile({self.name!r})"


# Calibration
# -----------
# The profiles below were fitted numerically (tools/fit_profiles.py): op
# counts were measured for the eleven synthetic configurations whose
# speedups the paper reports (Figures 7-10 for Harissa, Figure 11 and
# Table 2 for the Sun VMs), and per-op prices were searched to minimize
# the log-error against the paper's ratios, under physical-ordering
# constraints (a field read must not cost more than half a virtual call,
# an accessor call at most ~a virtual call). The resulting stories:
#
# - Harissa (Java-to-C + gcc): field reads and tests are a couple of
#   cycles; gcc inlines the tiny accessor bodies; virtual calls remain
#   indirect calls through method tables; entering one large monolithic
#   specialized routine has a real per-structure price (`call`),
#   dominated by instruction-cache effects — this is what caps the
#   paper's Figure 10 speedups near 15.
# - JDK 1.2 JIT: everything is slow, accessors are not inlined, stream
#   writes are very expensive (synchronized OutputStream plumbing).
# - HotSpot: accessors and straight-line code are aggressively inlined
#   (generic code gets ~2x faster than Harissa's, the paper's Table 2
#   observation), but the driver's polymorphic record/fold/checkpoint
#   sites keep a real dispatch price, so specialization still wins
#   (Figure 11b).
#
# `EPOCH_SCALE` converts the (roughly modern-hardware) nanosecond prices
# to the paper's 300 MHz UltraSPARC epoch when absolute seconds are
# reported (Table 2): with it, Harissa's unspecialized time for the
# Table 2 workload lands at ~4 s, JDK 1.2's at ~10-16 s, HotSpot's at
# ~2 s — the paper's order of magnitude.
#
# `pack` and `hash` are NOT part of the fitted calibration — the paper
# has no packed codec or hash-verified tier. They are engineering
# estimates layered on top:
#
# - `pack` is one batched bounds-checked store of a run of fixed-size
#   fields into a preallocated buffer. It replaces k typed stream writes
#   with one call, so it is priced slightly above a single `write_int`
#   on each backend (the batching win comes from paying it once per run
#   instead of once per field).
# - `hash` is fingerprinting one object's wire content during block
#   verification — a digest update over a few tens of bytes, priced in
#   the neighbourhood of a `write_str` (buffer traversal plus per-call
#   overhead; cheapest where calls are cheap).

EPOCH_SCALE = 30.0

JDK12_JIT = CostProfile(
    "JDK 1.2 JIT",
    {
        "vcall": 80.0,
        "call": 450.0,
        "acc": 50.0,
        "getfield": 45.0,
        "test": 5.0,
        "write_int": 105.0,
        "write_float": 190.0,
        "write_bool": 65.0,
        "write_str": 500.0,
        "flag_reset": 25.0,
        "iter": 25.0,
        "pack": 110.0,
        "hash": 350.0,
    },
)

HOTSPOT = CostProfile(
    "JDK 1.2 + HotSpot",
    {
        "vcall": 32.5,
        "call": 122.0,
        "acc": 2.0,
        "getfield": 2.0,
        "test": 1.0,
        "write_int": 24.0,
        "write_float": 43.0,
        "write_bool": 14.0,
        "write_str": 120.0,
        "flag_reset": 1.0,
        "iter": 3.0,
        "pack": 26.0,
        "hash": 130.0,
    },
)

HARISSA = CostProfile(
    "Harissa",
    {
        "vcall": 53.0,
        "call": 160.0,
        "acc": 8.5,
        "getfield": 3.0,
        "test": 2.0,
        "write_int": 41.0,
        "write_float": 75.0,
        "write_bool": 25.0,
        "write_str": 200.0,
        "flag_reset": 2.0,
        "iter": 8.0,
        "pack": 44.0,
        "hash": 190.0,
    },
)

PROFILES: Tuple[CostProfile, ...] = (JDK12_JIT, HOTSPOT, HARISSA)


def profile_by_name(name: str) -> CostProfile:
    """Look a profile up by its display name (case-insensitive prefix)."""
    wanted = name.lower()
    for profile in PROFILES:
        if profile.name.lower().startswith(wanted) or wanted in profile.name.lower():
            return profile
    raise KeyError(f"no cost profile matching {name!r}")
