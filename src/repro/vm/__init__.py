"""Metered abstract machine — the execution-environment substrate.

The paper evaluates on three execution environments (JDK 1.2 JIT,
JDK 1.2 + HotSpot, and the Harissa Java-to-C compiler) that we cannot
run. This subpackage substitutes them with a two-part model:

1. :mod:`repro.vm.machine` — an interpreter for the checkpointing IR that
   *executes the real algorithms* (producing byte-identical output to the
   production drivers, which tests verify) while counting every abstract
   operation: virtual calls, accessor calls, field reads, tests, typed
   writes, flag resets, loop iterations.
2. :mod:`repro.vm.backends` — cost profiles assigning a nanosecond price
   to each operation per execution environment. Simulated time is the
   dot product of the op counts with a profile.

Because the op counts are exact and only the prices change between
backends, the model reproduces precisely the quantity that distinguished
the paper's three environments: how expensive dynamic dispatch and
accessor calls are relative to straight-line field access.
"""

from repro.vm.backends import HARISSA, HOTSPOT, JDK12_JIT, PROFILES, CostProfile
from repro.vm.machine import MeteredMachine
from repro.vm.ops import OpCounts

__all__ = [
    "OpCounts",
    "MeteredMachine",
    "CostProfile",
    "HARISSA",
    "HOTSPOT",
    "JDK12_JIT",
    "PROFILES",
]
