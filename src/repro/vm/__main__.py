"""Command line: op-count and simulated-time breakdowns.

Usage::

    python -m repro.vm [--structures N] [--lists K] [--length L]
                       [--ints M] [--percent P] [--modified-lists K2]
                       [--last-only]

Prints, for every checkpointing variant, the abstract-operation breakdown
measured by the metered machine and the simulated time on each calibrated
backend — the raw material behind the paper's figures.
"""

from __future__ import annotations

import argparse
import sys

from repro.synthetic.runner import SyntheticConfig, SyntheticWorkload, run_variant
from repro.vm.backends import PROFILES
from repro.vm.ops import OP_NAMES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.vm")
    parser.add_argument("--structures", type=int, default=500)
    parser.add_argument("--lists", type=int, default=5)
    parser.add_argument("--length", type=int, default=5)
    parser.add_argument("--ints", type=int, default=1)
    parser.add_argument("--percent", type=float, default=25.0)
    parser.add_argument("--modified-lists", type=int, default=None)
    parser.add_argument("--last-only", action="store_true")
    args = parser.parse_args(argv)

    config = SyntheticConfig(
        num_structures=args.structures,
        num_lists=args.lists,
        list_length=args.length,
        ints_per_element=args.ints,
        percent_modified=args.percent / 100.0,
        modified_lists=args.modified_lists,
        last_only=args.last_only,
    )
    workload = SyntheticWorkload(config)
    print(f"workload: {config.describe()}")
    print(f"objects: {workload.object_count()}, modified: {workload.modified_count}")
    print()

    variants = ("full", "incremental", "spec_struct", "spec_struct_mod")
    results = {
        variant: run_variant(workload, variant, meter_sample=None)
        for variant in variants
    }

    used_ops = [
        op
        for op in OP_NAMES
        if any(results[v].counts[op] for v in variants)
    ]
    header = f"{'op':12s}" + "".join(f"{v:>16s}" for v in variants)
    print(header)
    print("-" * len(header))
    for op in used_ops:
        row = f"{op:12s}" + "".join(
            f"{results[v].counts[op]:16,d}" for v in variants
        )
        print(row)
    print("-" * len(header))
    print(
        f"{'bytes':12s}"
        + "".join(f"{results[v].checkpoint_bytes:16,d}" for v in variants)
    )
    print()
    for profile in PROFILES:
        row = f"{profile.name:20s}"
        for variant in variants:
            row += f"{profile.seconds(results[variant].counts) * 1000:12.3f}ms"
        print(row)
    print()
    baseline = results["incremental"]
    for profile in PROFILES:
        base_seconds = profile.seconds(baseline.counts)
        speedups = " ".join(
            f"{v}={base_seconds / profile.seconds(results[v].counts):5.2f}x"
            for v in ("spec_struct", "spec_struct_mod")
        )
        print(f"speedup vs incremental on {profile.name}: {speedups}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
