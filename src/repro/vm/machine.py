"""An interpreting abstract machine for the checkpointing IR.

:class:`MeteredMachine` *executes* the checkpointing algorithms — the same
IR templates the specializer consumes, and the residual IR it produces —
against live object structures, writing real checkpoint bytes while
counting every abstract operation. Tests verify that its output is
byte-identical to the production drivers and to the compiled specialized
functions, which makes the op counts trustworthy: they are measurements of
an actual execution, not an analytical estimate.

Accounting conventions (see :mod:`repro.vm.ops`):

- In *generic* code, reads of ``_ckpt_info`` / ``modified`` / ``object_id``
  count as accessor calls (``acc``) — in the paper's Java they are
  ``getCheckpointInfo()`` / ``modified()`` / ``getId()`` method calls whose
  price depends on how well the backend inlines accessors.
- In *specialized* code the receiver class is static, so the same reads
  count as plain ``getfield`` — the specializer has proven the access.
- Entering ``checkpoint``/``record``/``fold`` in generic code costs one
  ``vcall``; invoking one compiled specialized routine costs one ``call``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.checkpointable import Checkpointable
from repro.core.errors import PatternViolationError, SpecializationError
from repro.core.streams import DataOutputStream, NullOutputStream
from repro.spec import ir, templates
from repro.vm.ops import OpCounts

_ACCESSOR_FIELDS = ("_ckpt_info", "modified", "object_id")


class _Driver:
    """Sentinel bound to the ``ckpt`` variable during interpretation."""


_DRIVER = _Driver()


class MeteredMachine:
    """Executes checkpointing IR with operation accounting."""

    def __init__(self, out: Optional[DataOutputStream] = None) -> None:
        self.counts = OpCounts()
        self.out = out if out is not None else NullOutputStream()
        self._record_cache: Dict[type, ir.Stmt] = {}
        self._fold_cache: Dict[type, ir.Stmt] = {}
        self._checkpoint_template = templates.checkpoint_ir()
        self._full_template = templates.full_checkpoint_ir()
        self._full_mode = False

    # -- public entry points -------------------------------------------------

    def run_incremental(self, root: Checkpointable) -> None:
        """Execute the generic incremental driver on one structure."""
        self._full_mode = False
        self._visit(root)

    def run_full(self, root: Checkpointable) -> None:
        """Execute the generic full-checkpoint driver on one structure."""
        self._full_mode = True
        self._visit(root)

    def run_residual(self, residual: ir.Seq, root: Checkpointable) -> None:
        """Execute a specialized (residual) program on one structure."""
        self.counts.bump("call")  # direct invocation of the routine
        env: Dict[str, Any] = {"root": root}
        self._exec(residual, env, generic=False)

    # -- generic interpretation ------------------------------------------------

    def _visit(self, obj: Checkpointable) -> None:
        self.counts.bump("vcall")  # the ckpt.checkpoint(o) dispatch
        template = self._full_template if self._full_mode else self._checkpoint_template
        env: Dict[str, Any] = {"o": obj, "out": self.out, "ckpt": _DRIVER}
        self._exec(template, env, generic=True)

    def _record_ir(self, cls: type) -> ir.Stmt:
        cached = self._record_cache.get(cls)
        if cached is None:
            cached = templates.record_ir(cls)
            self._record_cache[cls] = cached
        return cached

    def _fold_ir(self, cls: type) -> ir.Stmt:
        cached = self._fold_cache.get(cls)
        if cached is None:
            cached = templates.fold_ir(cls)
            self._fold_cache[cls] = cached
        return cached

    # -- execution ------------------------------------------------------------

    def _exec(self, stmt: ir.Stmt, env: Dict[str, Any], generic: bool) -> None:
        counts = self.counts
        if isinstance(stmt, ir.Seq):
            for inner in stmt.stmts:
                self._exec(inner, env, generic)
        elif isinstance(stmt, ir.Assign):
            env[stmt.name] = self._eval(stmt.expr, env, generic)
        elif isinstance(stmt, ir.If):
            counts.bump("test")
            if self._eval(stmt.cond, env, generic):
                self._exec(stmt.then, env, generic)
            elif stmt.orelse is not None:
                self._exec(stmt.orelse, env, generic)
        elif isinstance(stmt, ir.Write):
            value = self._eval(stmt.expr, env, generic)
            self._write(stmt.kind, value, generic)
        elif isinstance(stmt, ir.SetAttr):
            counts.bump("flag_reset")
            base = self._eval(stmt.base, env, generic)
            setattr(base, stmt.field, self._eval(stmt.expr, env, generic))
        elif isinstance(stmt, ir.ExprStmt):
            self._call(stmt.expr, env, generic)
        elif isinstance(stmt, ir.WriteScalarList):
            counts.bump("getfield")
            values = self._eval(stmt.expr, env, generic)._items
            self._write("int", len(values), generic)
            for value in values:
                counts.bump("iter")
                self._write(stmt.kind, value, generic)
        elif isinstance(stmt, ir.RecordChildIds):
            counts.bump("getfield")
            members = self._eval(stmt.expr, env, generic)._items
            self._write("int", len(members), generic)
            for member in members:
                counts.bump("iter")
                counts.bump("acc" if generic else "getfield")
                self._write("int", member._ckpt_info.object_id, generic)
        elif isinstance(stmt, ir.FoldChildren):
            counts.bump("getfield")
            members = self._eval(stmt.expr, env, generic)._items
            for member in members:
                counts.bump("iter")
                self._visit(member)
        elif isinstance(stmt, ir.Guard):
            counts.bump("test")
            if not self._eval(stmt.cond, env, generic):
                raise PatternViolationError(stmt.message)
        else:
            raise SpecializationError(f"machine cannot execute {stmt!r}")

    def _call(self, call: ir.Expr, env: Dict[str, Any], generic: bool) -> None:
        if not isinstance(call, ir.MethodCall):
            raise SpecializationError(f"machine cannot execute expression {call!r}")
        receiver = self._eval(call.base, env, generic)
        if receiver is _DRIVER and call.method == "checkpoint":
            # _visit accounts the vcall at the callee entry.
            self._visit(self._eval(call.args[0], env, generic))
            return
        self.counts.bump("vcall")
        if call.method == "record":
            body = self._record_ir(type(receiver))
            self._exec(body, {"self": receiver, "out": self.out}, generic)
        elif call.method == "fold":
            body = self._fold_ir(type(receiver))
            self._exec(body, {"self": receiver, "ckpt": _DRIVER}, generic)
        else:
            raise SpecializationError(f"machine cannot dispatch {call!r}")

    def _eval(self, expr: ir.Expr, env: Dict[str, Any], generic: bool) -> Any:
        counts = self.counts
        if isinstance(expr, ir.Var):
            return env[expr.name]
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.FieldGet):
            base = self._eval(expr.base, env, generic)
            if generic and expr.field in _ACCESSOR_FIELDS:
                counts.bump("acc")
            else:
                counts.bump("getfield")
            return getattr(base, expr.field)
        if isinstance(expr, ir.IndexGet):
            counts.bump("getfield")
            return self._eval(expr.base, env, generic)._items[expr.index]
        if isinstance(expr, ir.ListLen):
            counts.bump("getfield")
            return len(self._eval(expr.base, env, generic)._items)
        if isinstance(expr, ir.IsNone):
            return self._eval(expr.base, env, generic) is None
        if isinstance(expr, ir.Not):
            return not self._eval(expr.operand, env, generic)
        if isinstance(expr, ir.Eq):
            return self._eval(expr.left, env, generic) == self._eval(
                expr.right, env, generic
            )
        if isinstance(expr, ir.ClassIs):
            return type(self._eval(expr.base, env, generic)) is expr.cls
        if isinstance(expr, ir.ClassSerialOf):
            return type(self._eval(expr.base, env, generic))._ckpt_serial
        raise SpecializationError(f"machine cannot evaluate {expr!r}")

    def _write(self, kind: str, value: Any, generic: bool) -> None:
        # Reaching the stream costs a small method call in generic code
        # (``d.writeInt(...)``; an attribute lookup plus call in the
        # Python implementation) — priced in the accessor bucket.
        # Specialized code uses statically pre-bound writers, whose call
        # overhead is folded into the write op price itself.
        if generic:
            self.counts.bump("acc")
        self.counts.bump("write_" + kind)
        out = self.out
        if kind == "int":
            out.write_int32(value)
        elif kind == "float":
            out.write_float64(value)
        elif kind == "bool":
            out.write_bool(value)
        else:
            out.write_str(value)
