"""An interpreting abstract machine for the checkpointing IR.

:class:`MeteredMachine` *executes* the checkpointing algorithms — the same
IR templates the specializer consumes, and the residual IR it produces —
against live object structures, writing real checkpoint bytes while
counting every abstract operation. Tests verify that its output is
byte-identical to the production drivers and to the compiled specialized
functions, which makes the op counts trustworthy: they are measurements of
an actual execution, not an analytical estimate.

Accounting conventions (see :mod:`repro.vm.ops`):

- In *generic* code, reads of ``_ckpt_info`` / ``modified`` / ``object_id``
  count as accessor calls (``acc``) — in the paper's Java they are
  ``getCheckpointInfo()`` / ``modified()`` / ``getId()`` method calls whose
  price depends on how well the backend inlines accessors.
- In *specialized* code the receiver class is static, so the same reads
  count as plain ``getfield`` — the specializer has proven the access.
- Entering ``checkpoint``/``record``/``fold`` in generic code costs one
  ``vcall``; invoking one compiled specialized routine costs one ``call``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.blocks import HASH_OFF, HASH_SKIP, HASH_VERIFY, BlockTier
from repro.core.checkpointable import Checkpointable
from repro.core.errors import (
    CheckpointError,
    PatternViolationError,
    SpecializationError,
)
from repro.core.streams import DataOutputStream, NullOutputStream, PackedEncoder
from repro.spec import ir, templates
from repro.vm.ops import OpCounts

_ACCESSOR_FIELDS = ("_ckpt_info", "modified", "object_id")


class _Driver:
    """Sentinel bound to the ``ckpt`` variable during interpretation."""


_DRIVER = _Driver()


class MeteredMachine:
    """Executes checkpointing IR with operation accounting."""

    def __init__(self, out: Optional[DataOutputStream] = None) -> None:
        self.counts = OpCounts()
        self.out = out if out is not None else NullOutputStream()
        self._record_cache: Dict[type, ir.Stmt] = {}
        self._fold_cache: Dict[type, ir.Stmt] = {}
        self._checkpoint_template = templates.checkpoint_ir()
        self._full_template = templates.full_checkpoint_ir()
        self._full_mode = False

    # -- public entry points -------------------------------------------------

    def run_incremental(self, root: Checkpointable) -> None:
        """Execute the generic incremental driver on one structure."""
        self._full_mode = False
        self._visit(root)

    def run_full(self, root: Checkpointable) -> None:
        """Execute the generic full-checkpoint driver on one structure."""
        self._full_mode = True
        self._visit(root)

    def run_residual(self, residual: ir.Seq, root: Checkpointable) -> None:
        """Execute a specialized (residual) program on one structure."""
        self.counts.bump("call")  # direct invocation of the routine
        env: Dict[str, Any] = {"root": root}
        self._exec(residual, env, generic=False)

    def run_packed(
        self, root: Checkpointable, enc: Optional[PackedEncoder] = None
    ) -> PackedEncoder:
        """Execute the packed incremental driver on one structure.

        Same traversal and flag protocol as :meth:`run_incremental`, but
        modified objects are recorded through the generated
        ``record_packed`` routines: runs of consecutive fixed-size fields
        cost one ``pack`` op (a single batched ``struct.pack_into``)
        instead of one typed stream write each. The bytes land in ``enc``
        and are byte-identical to the flag-walk driver's output, which is
        what makes the counts trustworthy.

        Like the generic record IR, the accounting is schema-derived, so
        classes with a hand-written ``record`` (which the production
        packed codec replays through a temporary stream) are priced as if
        they were schema-generated.
        """
        enc = enc if enc is not None else PackedEncoder()
        self._packed_visit(root, enc)
        return enc

    def run_differential(
        self, tier: BlockTier, enc: Optional[PackedEncoder] = None
    ) -> PackedEncoder:
        """Execute one differential commit over a partitioned block tier.

        The block-tier skip decision is one ``test`` per block; only dirty
        blocks pay the packed flag walk. In the hash modes every
        fingerprinted member additionally costs one ``hash`` op. The tier
        must already be partitioned and in sync with its roots — the
        (re)partition walk is the caller's baseline commit, modeled by
        running this once right after :meth:`BlockTier.partition` (all
        blocks start dirty, so that commit walks everything).
        """
        if not tier.partitioned:
            raise CheckpointError(
                "run_differential needs a partitioned BlockTier; call "
                "tier.partition(roots) first"
            )
        counts = self.counts
        enc = enc if enc is not None else PackedEncoder()
        for block in tier.blocks:
            counts.bump("test")  # the per-block generation/dirty check
            clean = tier.is_clean(block)
            if clean and tier.hash_mode == HASH_VERIFY:
                counts.bump("test")  # fingerprint comparison
                for _ in tier.members(block):
                    counts.bump("iter")
                    counts.bump("hash")
                if not tier.fingerprint_unchanged(block):
                    tier.heal(block)
                    clean = False
            if clean:
                continue
            if tier.hash_mode == HASH_SKIP:
                counts.bump("test")  # fingerprint comparison
                for _ in tier.members(block):
                    counts.bump("iter")
                    counts.bump("hash")
                if tier.fingerprint_unchanged(block):
                    for obj in tier.members(block):
                        counts.bump("flag_reset")
                        obj._ckpt_info.reset_modified()
                    tier.mark_committed(block)
                    continue
            for root in block.roots:
                self._packed_visit(root, enc)
            tier.mark_committed(block)
            if tier.hash_mode != HASH_OFF:
                for _ in tier.members(block):
                    counts.bump("iter")
                    counts.bump("hash")
                tier.refresh_fingerprint(block)
        return enc

    # -- generic interpretation ------------------------------------------------

    def _visit(self, obj: Checkpointable) -> None:
        self.counts.bump("vcall")  # the ckpt.checkpoint(o) dispatch
        template = self._full_template if self._full_mode else self._checkpoint_template
        env: Dict[str, Any] = {"o": obj, "out": self.out, "ckpt": _DRIVER}
        self._exec(template, env, generic=True)

    # -- packed interpretation -------------------------------------------------

    def _packed_visit(self, obj: Checkpointable, enc: PackedEncoder) -> None:
        counts = self.counts
        counts.bump("vcall")  # the ckpt.checkpoint(o) dispatch
        counts.bump("acc")  # getCheckpointInfo()
        info = obj._ckpt_info
        counts.bump("acc")  # modified()
        counts.bump("test")
        if info.modified:
            counts.bump("acc")  # getId()
            counts.bump("pack")  # header: one batched id+serial store
            enc.put_header(info.object_id, obj._ckpt_serial)
            counts.bump("vcall")  # record_packed dispatch
            self._account_record_packed(obj)
            obj.record_packed(enc)
            counts.bump("flag_reset")
            info.modified = False
        counts.bump("vcall")  # fold dispatch
        for spec in obj._ckpt_schema:
            if spec.role == "child":
                counts.bump("getfield")
                counts.bump("test")
                child = getattr(obj, spec.slot)
                if child is not None:
                    self._packed_visit(child, enc)
            elif spec.role == "child_list":
                counts.bump("getfield")
                for member in getattr(obj, spec.slot)._items:
                    counts.bump("iter")
                    self._packed_visit(member, enc)

    def _account_record_packed(self, obj: Checkpointable) -> None:
        """Meter one ``record_packed`` call, mirroring the codegen's batching.

        Consecutive fixed-size fields (int/float/bool scalars and child
        ids) share one ``pack``; strings and lists break the run exactly
        where the generated source flushes it.
        """
        counts = self.counts
        run = 0  # fixed-size fields accumulated into the pending pack
        for spec in obj._ckpt_schema:
            role = spec.role
            if role == "scalar" and spec.kind != "str":
                counts.bump("getfield")  # the slot read feeding the pack
                run += 1
                continue
            if role == "child":
                counts.bump("getfield")  # child pointer
                counts.bump("test")  # the None test in the id expression
                counts.bump("acc")  # child getId()
                run += 1
                continue
            if run:
                counts.bump("pack")
                run = 0
            if role == "scalar":  # str
                counts.bump("getfield")
                counts.bump("write_str")
            elif role == "scalar_list":
                counts.bump("getfield")  # slot
                counts.bump("getfield")  # len
                members = getattr(obj, spec.slot)._items
                counts.bump("pack")  # the count store
                if spec.kind == "str":
                    for _ in members:
                        counts.bump("iter")
                        counts.bump("write_str")
                else:
                    counts.bump("test")  # non-empty check
                    if members:
                        counts.bump("pack")  # one batched store, all elements
            else:  # child_list
                counts.bump("getfield")  # slot
                counts.bump("getfield")  # len
                members = getattr(obj, spec.slot)._items
                counts.bump("pack")  # the count store
                counts.bump("test")  # non-empty check
                if members:
                    counts.bump("pack")  # one batched store, all ids
                    for _ in members:
                        counts.bump("iter")
                        counts.bump("acc")  # per-member getId()
        if run:
            counts.bump("pack")

    def _record_ir(self, cls: type) -> ir.Stmt:
        cached = self._record_cache.get(cls)
        if cached is None:
            cached = templates.record_ir(cls)
            self._record_cache[cls] = cached
        return cached

    def _fold_ir(self, cls: type) -> ir.Stmt:
        cached = self._fold_cache.get(cls)
        if cached is None:
            cached = templates.fold_ir(cls)
            self._fold_cache[cls] = cached
        return cached

    # -- execution ------------------------------------------------------------

    def _exec(self, stmt: ir.Stmt, env: Dict[str, Any], generic: bool) -> None:
        counts = self.counts
        if isinstance(stmt, ir.Seq):
            for inner in stmt.stmts:
                self._exec(inner, env, generic)
        elif isinstance(stmt, ir.Assign):
            env[stmt.name] = self._eval(stmt.expr, env, generic)
        elif isinstance(stmt, ir.If):
            counts.bump("test")
            if self._eval(stmt.cond, env, generic):
                self._exec(stmt.then, env, generic)
            elif stmt.orelse is not None:
                self._exec(stmt.orelse, env, generic)
        elif isinstance(stmt, ir.Write):
            value = self._eval(stmt.expr, env, generic)
            self._write(stmt.kind, value, generic)
        elif isinstance(stmt, ir.SetAttr):
            counts.bump("flag_reset")
            base = self._eval(stmt.base, env, generic)
            setattr(base, stmt.field, self._eval(stmt.expr, env, generic))
        elif isinstance(stmt, ir.ExprStmt):
            self._call(stmt.expr, env, generic)
        elif isinstance(stmt, ir.WriteScalarList):
            counts.bump("getfield")
            values = self._eval(stmt.expr, env, generic)._items
            self._write("int", len(values), generic)
            for value in values:
                counts.bump("iter")
                self._write(stmt.kind, value, generic)
        elif isinstance(stmt, ir.RecordChildIds):
            counts.bump("getfield")
            members = self._eval(stmt.expr, env, generic)._items
            self._write("int", len(members), generic)
            for member in members:
                counts.bump("iter")
                counts.bump("acc" if generic else "getfield")
                self._write("int", member._ckpt_info.object_id, generic)
        elif isinstance(stmt, ir.FoldChildren):
            counts.bump("getfield")
            members = self._eval(stmt.expr, env, generic)._items
            for member in members:
                counts.bump("iter")
                self._visit(member)
        elif isinstance(stmt, ir.Guard):
            counts.bump("test")
            if not self._eval(stmt.cond, env, generic):
                raise PatternViolationError(stmt.message)
        else:
            raise SpecializationError(f"machine cannot execute {stmt!r}")

    def _call(self, call: ir.Expr, env: Dict[str, Any], generic: bool) -> None:
        if not isinstance(call, ir.MethodCall):
            raise SpecializationError(f"machine cannot execute expression {call!r}")
        receiver = self._eval(call.base, env, generic)
        if receiver is _DRIVER and call.method == "checkpoint":
            # _visit accounts the vcall at the callee entry.
            self._visit(self._eval(call.args[0], env, generic))
            return
        self.counts.bump("vcall")
        if call.method == "record":
            body = self._record_ir(type(receiver))
            self._exec(body, {"self": receiver, "out": self.out}, generic)
        elif call.method == "fold":
            body = self._fold_ir(type(receiver))
            self._exec(body, {"self": receiver, "ckpt": _DRIVER}, generic)
        else:
            raise SpecializationError(f"machine cannot dispatch {call!r}")

    def _eval(self, expr: ir.Expr, env: Dict[str, Any], generic: bool) -> Any:
        counts = self.counts
        if isinstance(expr, ir.Var):
            return env[expr.name]
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.FieldGet):
            base = self._eval(expr.base, env, generic)
            if generic and expr.field in _ACCESSOR_FIELDS:
                counts.bump("acc")
            else:
                counts.bump("getfield")
            return getattr(base, expr.field)
        if isinstance(expr, ir.IndexGet):
            counts.bump("getfield")
            return self._eval(expr.base, env, generic)._items[expr.index]
        if isinstance(expr, ir.ListLen):
            counts.bump("getfield")
            return len(self._eval(expr.base, env, generic)._items)
        if isinstance(expr, ir.IsNone):
            return self._eval(expr.base, env, generic) is None
        if isinstance(expr, ir.Not):
            return not self._eval(expr.operand, env, generic)
        if isinstance(expr, ir.Eq):
            return self._eval(expr.left, env, generic) == self._eval(
                expr.right, env, generic
            )
        if isinstance(expr, ir.ClassIs):
            return type(self._eval(expr.base, env, generic)) is expr.cls
        if isinstance(expr, ir.ClassSerialOf):
            return type(self._eval(expr.base, env, generic))._ckpt_serial
        raise SpecializationError(f"machine cannot evaluate {expr!r}")

    def _write(self, kind: str, value: Any, generic: bool) -> None:
        # Reaching the stream costs a small method call in generic code
        # (``d.writeInt(...)``; an attribute lookup plus call in the
        # Python implementation) — priced in the accessor bucket.
        # Specialized code uses statically pre-bound writers, whose call
        # overhead is folded into the write op price itself.
        if generic:
            self.counts.bump("acc")
        self.counts.bump("write_" + kind)
        out = self.out
        if kind == "int":
            out.write_int32(value)
        elif kind == "float":
            out.write_float64(value)
        elif kind == "bool":
            out.write_bool(value)
        else:
            out.write_str(value)
