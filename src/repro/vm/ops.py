"""Operation vocabulary of the abstract machine.

Every checkpointing variant decomposes into these operations; the
:class:`~repro.vm.backends.CostProfile` of a backend prices them.

=============  ==============================================================
op             meaning
=============  ==============================================================
``vcall``      dynamically dispatched method call (``checkpoint``,
               ``record``, ``fold`` in the generic system)
``call``       direct (statically bound) call — e.g. invoking one
               specialized checkpoint routine per structure
``acc``        accessor call (``getCheckpointInfo``, ``modified``,
               ``getId``, ``resetModified``) in generic code; a JIT may or
               may not inline these, which is priced per backend
``getfield``   plain field read (child pointers, scalar fields, and every
               read in specialized code, where the receiver class is known)
``test``       conditional branch
``write_int``  append a 32-bit integer to the checkpoint stream
``write_float``/``write_bool``/``write_str``
               other typed appends
``flag_reset`` clearing a modification flag
``iter``       one iteration of a residual (not unrolled) loop
``pack``       one batched fixed-size store into a preallocated buffer — a
               run of consecutive int/float/bool fields coalesced into a
               single ``struct.pack_into`` (the packed codec's replacement
               for a sequence of stream writes)
``hash``       fingerprinting one object's wire content during block
               verification (the differential tier's hash modes)
=============  ==============================================================

``pack`` and ``hash`` extend the paper's vocabulary: the paper has no
packed or hash-verified variant, so their prices in the backend profiles
are engineering estimates rather than fitted calibration (see
:mod:`repro.vm.backends`).
"""

from __future__ import annotations

from typing import Dict, Iterable

OP_NAMES = (
    "vcall",
    "call",
    "acc",
    "getfield",
    "test",
    "write_int",
    "write_float",
    "write_bool",
    "write_str",
    "flag_reset",
    "iter",
    "pack",
    "hash",
)


class OpCounts:
    """A multiset of abstract operations."""

    __slots__ = ("counts",)

    def __init__(self, counts: Dict[str, int] = None) -> None:
        self.counts = {name: 0 for name in OP_NAMES}
        if counts:
            for name, value in counts.items():
                if name not in self.counts:
                    raise KeyError(f"unknown op {name!r}")
                self.counts[name] = value

    def bump(self, name: str, amount: int = 1) -> None:
        self.counts[name] += amount

    def __add__(self, other: "OpCounts") -> "OpCounts":
        merged = OpCounts()
        for name in OP_NAMES:
            merged.counts[name] = self.counts[name] + other.counts[name]
        return merged

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        for name in OP_NAMES:
            self.counts[name] += other.counts[name]
        return self

    def scaled(self, factor: float) -> "OpCounts":
        scaled = OpCounts()
        for name in OP_NAMES:
            scaled.counts[name] = int(round(self.counts[name] * factor))
        return scaled

    def total(self) -> int:
        """Total number of abstract operations."""
        return sum(self.counts.values())

    def __getitem__(self, name: str) -> int:
        return self.counts[name]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OpCounts) and self.counts == other.counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: v for k, v in self.counts.items() if v}
        return f"OpCounts({nonzero!r})"

    def nonzero(self) -> Dict[str, int]:
        return {k: v for k, v in self.counts.items() if v}

    @staticmethod
    def sum(items: Iterable["OpCounts"]) -> "OpCounts":
        total = OpCounts()
        for item in items:
            total += item
        return total
