"""The generic checkpointing algorithm, expressed in the specializer IR.

These builders produce exactly the code that runs in the unspecialized
system (paper Figures 1 and 2):

- :func:`checkpoint_ir` — the driver's ``checkpoint(o)`` method,
- :func:`record_ir` — the per-class generated ``record`` method,
- :func:`fold_ir` — the per-class generated ``fold`` method.

The specializer unfolds this program against declared structure and
modification facts; it never sees the framework's Python source, only
this IR, which keeps the specializer honest about what it may assume.
"""

from __future__ import annotations

from typing import List

from repro.core.errors import SpecializationError
from repro.spec import ir


def checkpoint_ir() -> ir.Stmt:
    """IR of ``Checkpoint.checkpoint(o)``: free variables ``o, out, ckpt``.

    Mirrors paper Figure 1::

        info = o._ckpt_info
        if info.modified:
            write_int(info.object_id)
            write_int(serial(o))
            o.record(out)          # virtual
            info.modified = False
        o.fold(ckpt)               # virtual
    """
    o = ir.Var("o")
    info = ir.Var("info")
    return ir.Seq(
        [
            ir.Assign("info", ir.FieldGet(o, "_ckpt_info")),
            ir.If(
                ir.FieldGet(info, "modified"),
                ir.Seq(
                    [
                        ir.Write("int", ir.FieldGet(info, "object_id")),
                        ir.Write("int", ir.ClassSerialOf(o)),
                        ir.ExprStmt(ir.MethodCall(o, "record", [ir.Var("out")])),
                        ir.SetAttr(info, "modified", ir.Const(False)),
                    ]
                ),
            ),
            ir.ExprStmt(ir.MethodCall(o, "fold", [ir.Var("ckpt")])),
        ]
    )


def full_checkpoint_ir() -> ir.Stmt:
    """IR of the *full* checkpointing driver: record unconditionally.

    The flag is still reset so a full checkpoint can base an incremental
    chain (mirrors :class:`repro.core.checkpoint.FullCheckpoint`).
    """
    o = ir.Var("o")
    info = ir.Var("info")
    return ir.Seq(
        [
            ir.Assign("info", ir.FieldGet(o, "_ckpt_info")),
            ir.Write("int", ir.FieldGet(info, "object_id")),
            ir.Write("int", ir.ClassSerialOf(o)),
            ir.ExprStmt(ir.MethodCall(o, "record", [ir.Var("out")])),
            ir.SetAttr(info, "modified", ir.Const(False)),
            ir.ExprStmt(ir.MethodCall(o, "fold", [ir.Var("ckpt")])),
        ]
    )


def record_ir(cls: type) -> ir.Stmt:
    """IR of the generated ``record`` method of ``cls``: free vars ``self, out``."""
    schema = getattr(cls, "_ckpt_schema", None)
    if schema is None:
        raise SpecializationError(f"{cls!r} is not a checkpointable class")
    self_var = ir.Var("self")
    stmts: List[ir.Stmt] = []
    for field in schema:
        value = ir.FieldGet(self_var, field.slot)
        if field.role == "scalar":
            stmts.append(ir.Write(field.kind, value))
        elif field.role == "scalar_list":
            stmts.append(ir.WriteScalarList(field.kind, value))
        elif field.role == "child":
            # _c = self._f_x
            # if _c is None: write_int(-1)
            # else:          write_int(_c._ckpt_info.object_id)
            local = "_c_" + field.name
            stmts.append(ir.Assign(local, value))
            child = ir.Var(local)
            stmts.append(
                ir.If(
                    ir.IsNone(child),
                    ir.Write("int", ir.Const(-1)),
                    ir.Write(
                        "int",
                        ir.FieldGet(ir.FieldGet(child, "_ckpt_info"), "object_id"),
                    ),
                )
            )
        else:  # child_list
            stmts.append(ir.RecordChildIds(value))
    return ir.Seq(stmts)


def fold_ir(cls: type) -> ir.Stmt:
    """IR of the generated ``fold`` method of ``cls``: free vars ``self, ckpt``."""
    schema = getattr(cls, "_ckpt_schema", None)
    if schema is None:
        raise SpecializationError(f"{cls!r} is not a checkpointable class")
    self_var = ir.Var("self")
    stmts: List[ir.Stmt] = []
    for field in schema:
        value = ir.FieldGet(self_var, field.slot)
        if field.role == "child":
            local = "_c_" + field.name
            stmts.append(ir.Assign(local, value))
            child = ir.Var(local)
            stmts.append(
                ir.If(
                    ir.Not(ir.IsNone(child)),
                    ir.ExprStmt(ir.MethodCall(ir.Var("ckpt"), "checkpoint", [child])),
                )
            )
        elif field.role == "child_list":
            stmts.append(ir.FoldChildren(value))
    return ir.Seq(stmts)
