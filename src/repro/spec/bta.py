"""Binding-time analysis over the checkpointing IR.

An offline partial evaluator (Tempo-style, paper section 3) first runs a
*binding-time analysis* that classifies every expression of the source
program as static (S — computable from the specialization-time facts) or
dynamic (D — must remain in the residual program), and every statement
with the action the specializer must take. Only then does the specializer
(:mod:`repro.spec.pe`) transform the program, following the annotations.

Binding-time values of this domain:

``S``
    Fully static: constants, class serials, absent children,
    ``modified`` flags of positions declared quiescent.
``D``
    Fully dynamic: field contents, object identifiers, live flags.
``PS``
    Partially static object: its class and shape are static (so calls on
    it can be unfolded and its field layout is known), but its identity is
    a run-time value.
``PSINFO``
    The ``CheckpointInfo`` of a partially static object.
``PSLIST``
    A child list of a partially static object: members' shapes and the
    length are static, the member identities are dynamic.
``DRIVER`` / ``OUT``
    The checkpoint driver and the output stream — pure residual artifacts.

Statement actions: ``bind`` (Assign), ``reduce`` / ``residual`` (If),
``unfold`` (virtual call with a PS receiver), ``unroll`` (child-list
iteration with static length), ``residual`` (everything that must be
emitted), ``seq``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.errors import SpecializationError
from repro.spec import ir
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import ShapeNode

# Binding-time values: ("S",) | ("D",) | ("PS", node) | ("PSINFO", node)
# | ("PSLIST", node, field) | ("DRIVER",) | ("OUT",)
BTVal = Tuple


S = ("S",)
D = ("D",)
DRIVER = ("DRIVER",)
OUT = ("OUT",)


def ps(node: ShapeNode) -> BTVal:
    return ("PS", node)


def psinfo(node: ShapeNode) -> BTVal:
    return ("PSINFO", node)


def pslist(node: ShapeNode, field: str) -> BTVal:
    return ("PSLIST", node, field)


class BTContext:
    """Environment + facts the analysis classifies against."""

    def __init__(self, env: Dict[str, BTVal], pattern: ModificationPattern) -> None:
        self.env = env
        self.pattern = pattern


def annotate(stmt: ir.Stmt, ctx: BTContext) -> None:
    """Annotate every node under ``stmt`` (sets ``node.bt`` in place)."""
    _annotate_stmt(stmt, ctx)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _annotate_expr(expr: ir.Expr, ctx: BTContext) -> BTVal:
    value = _classify(expr, ctx)
    expr.bt = value[0]
    return value


def _field_spec(node: ShapeNode, slot: str):
    for spec in node.cls._ckpt_schema:
        if spec.slot == slot:
            return spec
    raise SpecializationError(
        f"class {node.cls.__name__} has no checkpointable slot {slot!r}"
    )


def _classify(expr: ir.Expr, ctx: BTContext) -> BTVal:
    if isinstance(expr, ir.Const):
        return S
    if isinstance(expr, ir.Var):
        try:
            return ctx.env[expr.name]
        except KeyError:
            raise SpecializationError(f"unbound variable {expr.name!r} in IR")
    if isinstance(expr, ir.FieldGet):
        base = _annotate_expr(expr.base, ctx)
        return _classify_field(base, expr.field, ctx)
    if isinstance(expr, ir.IndexGet):
        base = _annotate_expr(expr.base, ctx)
        if base[0] == "PSLIST":
            _, node, field = base
            members = node.list_nodes(field)
            if expr.index >= len(members):
                raise SpecializationError(
                    f"index {expr.index} out of range for list {field!r} "
                    f"at {node.path!r}"
                )
            return ps(members[expr.index])
        return D
    if isinstance(expr, ir.ListLen):
        base = _annotate_expr(expr.base, ctx)
        return S if base[0] == "PSLIST" else D
    if isinstance(expr, ir.IsNone):
        base = _annotate_expr(expr.base, ctx)
        # Presence of a child is a structural fact: static for PS values and
        # for statically known None (S); dynamic otherwise.
        return S if base[0] in ("PS", "S") else D
    if isinstance(expr, ir.Not):
        return _annotate_expr(expr.operand, ctx)
    if isinstance(expr, ir.ClassSerialOf):
        base = _annotate_expr(expr.base, ctx)
        return S if base[0] == "PS" else D
    if isinstance(expr, ir.MethodCall):
        base = _annotate_expr(expr.base, ctx)
        for arg in expr.args:
            _annotate_expr(arg, ctx)
        if base[0] == "PS" and expr.method in ("record", "fold"):
            return ("UNFOLD",)
        if base[0] == "DRIVER" and expr.method == "checkpoint":
            return ("UNFOLD",)
        return D
    raise SpecializationError(f"unknown IR expression {expr!r}")


def _classify_field(base: BTVal, field: str, ctx: BTContext) -> BTVal:
    if base[0] == "PS":
        node = base[1]
        if field == "_ckpt_info":
            return psinfo(node)
        if field.startswith("_f_"):
            spec = _field_spec(node, field)
            if spec.role == "child":
                child = node.child_node(spec.name)
                return S if child is None else ps(child)
            if spec.role == "child_list":
                return pslist(node, spec.name)
            return D  # scalar and scalar_list contents are run-time values
        raise SpecializationError(
            f"IR reads unexpected attribute {field!r} of a checkpointable object"
        )
    if base[0] == "PSINFO":
        node = base[1]
        if field == "modified":
            if ctx.pattern.node_may_be_modified(node):
                return D
            return S  # declared quiescent: statically False
        if field == "object_id":
            return D
        raise SpecializationError(f"IR reads unexpected info attribute {field!r}")
    return D


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


def _annotate_stmt(stmt: ir.Stmt, ctx: BTContext) -> None:
    if isinstance(stmt, ir.Seq):
        stmt.bt = "seq"
        for inner in stmt.stmts:
            _annotate_stmt(inner, ctx)
    elif isinstance(stmt, ir.Assign):
        value = _annotate_expr(stmt.expr, ctx)
        ctx.env[stmt.name] = value
        stmt.bt = "bind"
    elif isinstance(stmt, ir.If):
        cond = _annotate_expr(stmt.cond, ctx)
        stmt.bt = "reduce" if cond[0] == "S" else "residual"
        # Both arms are analysed in either case; a reduced If only keeps one.
        _annotate_stmt(stmt.then, ctx)
        if stmt.orelse is not None:
            _annotate_stmt(stmt.orelse, ctx)
    elif isinstance(stmt, ir.ExprStmt):
        value = _annotate_expr(stmt.expr, ctx)
        stmt.bt = "unfold" if value[0] == "UNFOLD" else "residual"
    elif isinstance(stmt, ir.Write):
        _annotate_expr(stmt.expr, ctx)
        stmt.bt = "residual"
    elif isinstance(stmt, ir.SetAttr):
        _annotate_expr(stmt.base, ctx)
        _annotate_expr(stmt.expr, ctx)
        stmt.bt = "residual"
    elif isinstance(stmt, ir.WriteScalarList):
        _annotate_expr(stmt.expr, ctx)
        stmt.bt = "residual"
    elif isinstance(stmt, (ir.RecordChildIds, ir.FoldChildren)):
        value = _annotate_expr(stmt.expr, ctx)
        stmt.bt = "unroll" if value[0] == "PSLIST" else "residual"
    elif isinstance(stmt, ir.Guard):
        _annotate_expr(stmt.cond, ctx)
        stmt.bt = "residual"
    else:
        raise SpecializationError(f"unknown IR statement {stmt!r}")
