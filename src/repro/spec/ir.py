"""A small imperative IR for checkpointing code.

The generic checkpoint algorithm and the per-class generated methods are
expressed in this IR so the specializer can analyse and transform them.
The IR is deliberately tiny: it has exactly the constructs the generated
checkpointing code needs, nothing more.

Expressions
-----------
``Const(value)``
    A literal.
``Var(name)``
    A local variable or parameter.
``FieldGet(base, field)``
    Attribute read ``base.field`` (slots, ``_ckpt_info``, ``modified``, …).
``IndexGet(base, index)``
    ``base._items[index]`` — element of a tracked list.
``ListLen(base)``
    ``len(base._items)``.
``IsNone(base)``
    ``base is None``.
``ClassSerialOf(base)``
    The class serial of the receiver (static once the class is known).
``MethodCall(base, method, args)``
    Virtual call — the dynamic-dispatch points the specializer removes.

Statements
----------
``Seq``, ``Assign``, ``If``, ``ExprStmt``, ``Write(kind, expr)``,
``SetAttr(base, field, expr)``, ``WriteScalarList(kind, expr)``,
``RecordChildIds(expr)``, ``FoldChildren(expr)``, ``Guard(cond, message)``.

Every node carries a ``bt`` slot filled in by the binding-time analysis
(:mod:`repro.spec.bta`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

WRITE_KINDS = ("int", "float", "bool", "str")


class Node:
    """Base class of all IR nodes."""

    __slots__ = ("bt",)

    def __init__(self) -> None:
        #: binding time / action, filled in by :mod:`repro.spec.bta`
        self.bt: Optional[str] = None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name})"


class FieldGet(Expr):
    __slots__ = ("base", "field")

    def __init__(self, base: Expr, field: str) -> None:
        super().__init__()
        self.base = base
        self.field = field

    def __repr__(self) -> str:
        return f"{self.base!r}.{self.field}"


class IndexGet(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: int) -> None:
        super().__init__()
        self.base = base
        self.index = index

    def __repr__(self) -> str:
        return f"{self.base!r}[{self.index}]"


class ListLen(Expr):
    __slots__ = ("base",)

    def __init__(self, base: Expr) -> None:
        super().__init__()
        self.base = base

    def __repr__(self) -> str:
        return f"len({self.base!r})"


class IsNone(Expr):
    __slots__ = ("base",)

    def __init__(self, base: Expr) -> None:
        super().__init__()
        self.base = base

    def __repr__(self) -> str:
        return f"({self.base!r} is None)"


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        super().__init__()
        self.operand = operand

    def __repr__(self) -> str:
        return f"not {self.operand!r}"


class Eq(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        super().__init__()
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} == {self.right!r})"


class ClassIs(Expr):
    """``type(base) is cls`` — emitted only by guarded specialization."""

    __slots__ = ("base", "cls")

    def __init__(self, base: Expr, cls: type) -> None:
        super().__init__()
        self.base = base
        self.cls = cls

    def __repr__(self) -> str:
        return f"(type({self.base!r}) is {self.cls.__name__})"


class ClassSerialOf(Expr):
    __slots__ = ("base",)

    def __init__(self, base: Expr) -> None:
        super().__init__()
        self.base = base

    def __repr__(self) -> str:
        return f"serial({self.base!r})"


class MethodCall(Expr):
    """A virtual call — the dispatch points specialization eliminates."""

    __slots__ = ("base", "method", "args")

    def __init__(self, base: Expr, method: str, args: Sequence[Expr]) -> None:
        super().__init__()
        self.base = base
        self.method = method
        self.args = list(args)

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.base!r}.{self.method}({args})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Seq(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt]) -> None:
        super().__init__()
        self.stmts: List[Stmt] = list(stmts)

    def __repr__(self) -> str:
        return f"Seq({self.stmts!r})"


class Assign(Stmt):
    __slots__ = ("name", "expr")

    def __init__(self, name: str, expr: Expr) -> None:
        super().__init__()
        self.name = name
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.name} = {self.expr!r}"


class If(Stmt):
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Stmt, orelse: Optional[Stmt] = None) -> None:
        super().__init__()
        self.cond = cond
        self.then = then
        self.orelse = orelse

    def __repr__(self) -> str:
        return f"If({self.cond!r}, {self.then!r}, {self.orelse!r})"


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        super().__init__()
        self.expr = expr

    def __repr__(self) -> str:
        return f"ExprStmt({self.expr!r})"


class Write(Stmt):
    """Emit one typed value to the checkpoint output stream."""

    __slots__ = ("kind", "expr")

    def __init__(self, kind: str, expr: Expr) -> None:
        super().__init__()
        assert kind in WRITE_KINDS, kind
        self.kind = kind
        self.expr = expr

    def __repr__(self) -> str:
        return f"Write({self.kind}, {self.expr!r})"


class SetAttr(Stmt):
    """``base.field = expr`` — used for resetting modification flags."""

    __slots__ = ("base", "field", "expr")

    def __init__(self, base: Expr, field: str, expr: Expr) -> None:
        super().__init__()
        self.base = base
        self.field = field
        self.expr = expr

    def __repr__(self) -> str:
        return f"SetAttr({self.base!r}.{self.field} = {self.expr!r})"


class WriteScalarList(Stmt):
    """Emit a length-prefixed list of base-type values (length is dynamic)."""

    __slots__ = ("kind", "expr")

    def __init__(self, kind: str, expr: Expr) -> None:
        super().__init__()
        assert kind in WRITE_KINDS, kind
        self.kind = kind
        self.expr = expr

    def __repr__(self) -> str:
        return f"WriteScalarList({self.kind}, {self.expr!r})"


class RecordChildIds(Stmt):
    """Emit length + identifiers of a child list (unrollable when the shape is known)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        super().__init__()
        self.expr = expr

    def __repr__(self) -> str:
        return f"RecordChildIds({self.expr!r})"


class FoldChildren(Stmt):
    """Apply the checkpoint driver to each member of a child list."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        super().__init__()
        self.expr = expr

    def __repr__(self) -> str:
        return f"FoldChildren({self.expr!r})"


class Guard(Stmt):
    """Runtime assertion emitted only by guarded specialization."""

    __slots__ = ("cond", "message")

    def __init__(self, cond: Expr, message: str) -> None:
        super().__init__()
        self.cond = cond
        self.message = message

    def __repr__(self) -> str:
        return f"Guard({self.cond!r}, {self.message!r})"


# ---------------------------------------------------------------------------
# Pretty printing (debugging and documentation of specialized code)
# ---------------------------------------------------------------------------


def pretty(node: Node, indent: int = 0) -> str:
    """Human-readable rendering of an IR tree."""
    pad = "    " * indent
    if isinstance(node, Seq):
        return "\n".join(pretty(s, indent) for s in node.stmts) or f"{pad}pass"
    if isinstance(node, If):
        lines = [f"{pad}if {node.cond!r}:", pretty(node.then, indent + 1)]
        if node.orelse is not None:
            lines.append(f"{pad}else:")
            lines.append(pretty(node.orelse, indent + 1))
        return "\n".join(lines)
    return f"{pad}{node!r}"
