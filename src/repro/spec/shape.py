"""Structural facts about a recurring compound structure.

The paper's first specialization opportunity (section 3.2) exploits *the
structure of the checkpointed data*: the exact class of every sub-object of
a recurring compound structure, declared by the programmer through
specialization classes. Here the declaration is made by example: the
programmer hands a prototype instance to :meth:`Shape.of`, and the shape —
class of every node, presence of optional children, lengths of child lists
— is read off it.

A shape node is addressed by its *path* from the root: a tuple of edge
labels, where an edge label is a field name for ``child`` fields and a
``(field name, index)`` pair for ``child_list`` members, e.g.::

    ()                              the root
    ("bt_entry",)                   root.bt_entry
    ("bt_entry", "bt")              root.bt_entry.bt
    (("lists", 2), "next")          root.lists[2].next
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.checkpointable import Checkpointable
from repro.core.errors import CycleError, SpecializationError

PathSegment = Union[str, Tuple[str, int]]
Path = Tuple[PathSegment, ...]


class ShapeEdge:
    """One parent→child edge of a shape."""

    __slots__ = ("field", "index", "node")

    def __init__(self, field: str, index: Optional[int], node: "ShapeNode") -> None:
        self.field = field
        #: position within a child_list, or None for a plain child field
        self.index = index
        self.node = node

    @property
    def segment(self) -> PathSegment:
        return self.field if self.index is None else (self.field, self.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShapeEdge({self.segment!r} -> {self.node.cls.__name__})"


class ShapeNode:
    """Class and child layout of one position in the structure."""

    __slots__ = ("cls", "path", "edges", "absent_children", "list_lengths")

    def __init__(self, cls: type, path: Path) -> None:
        self.cls = cls
        self.path = path
        #: outgoing edges, in schema order
        self.edges: List[ShapeEdge] = []
        #: names of child fields that are None in the prototype
        self.absent_children: List[str] = []
        #: child_list field name -> length in the prototype
        self.list_lengths: Dict[str, int] = {}

    def edge(self, segment: PathSegment) -> "ShapeEdge":
        for candidate in self.edges:
            if candidate.segment == segment:
                return candidate
        raise SpecializationError(f"shape node {self.path!r} has no edge {segment!r}")

    def child_node(self, field: str) -> Optional["ShapeNode"]:
        """The shape node behind a plain child field (None when absent)."""
        if field in self.absent_children:
            return None
        return self.edge(field).node

    def list_nodes(self, field: str) -> List["ShapeNode"]:
        """Shape nodes of every member of a child_list field, in order."""
        members = [e for e in self.edges if e.field == field and e.index is not None]
        members.sort(key=lambda e: e.index)
        return [e.node for e in members]

    def walk(self) -> Iterator["ShapeNode"]:
        """Preorder traversal of this subtree."""
        yield self
        for edge in self.edges:
            yield from edge.node.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShapeNode({self.cls.__name__}, path={self.path!r})"


class Shape:
    """The complete structural description of one compound structure."""

    def __init__(self, root: ShapeNode) -> None:
        self.root = root
        self._by_path: Dict[Path, ShapeNode] = {n.path: n for n in root.walk()}

    @classmethod
    def of(cls, prototype: Checkpointable) -> "Shape":
        """Derive a shape from a prototype instance.

        Raises :class:`~repro.core.errors.CycleError` when the prototype
        contains a cycle and :class:`SpecializationError` when the same
        object is shared between two positions (the structure would not be
        a tree, so per-position specialization facts would be ambiguous).
        """
        seen: Dict[int, Path] = {}

        def build(obj: Checkpointable, path: Path, on_path: frozenset) -> ShapeNode:
            oid = obj._ckpt_info.object_id
            if oid in on_path:
                raise CycleError(
                    f"prototype contains a cycle through object id {oid} "
                    f"at path {path!r}"
                )
            if oid in seen:
                raise SpecializationError(
                    f"prototype shares object id {oid} between paths "
                    f"{seen[oid]!r} and {path!r}; shapes must be trees"
                )
            seen[oid] = path
            node = ShapeNode(type(obj), path)
            next_on_path = on_path | {oid}
            for spec in obj._ckpt_schema:
                if spec.role == "child":
                    value = getattr(obj, spec.slot)
                    if value is None:
                        node.absent_children.append(spec.name)
                    else:
                        child_node = build(value, path + (spec.name,), next_on_path)
                        node.edges.append(ShapeEdge(spec.name, None, child_node))
                elif spec.role == "child_list":
                    members = getattr(obj, spec.slot)._items
                    node.list_lengths[spec.name] = len(members)
                    for index, member in enumerate(members):
                        child_node = build(
                            member, path + ((spec.name, index),), next_on_path
                        )
                        node.edges.append(ShapeEdge(spec.name, index, child_node))
            return node

        return cls(build(prototype, (), frozenset()))

    def node_at(self, path: Path) -> ShapeNode:
        """The shape node at ``path`` (raises when the path does not exist)."""
        try:
            return self._by_path[path]
        except KeyError:
            raise SpecializationError(f"shape has no node at path {path!r}")

    def paths(self) -> List[Path]:
        """Every node path, in preorder."""
        return [node.path for node in self.root.walk()]

    def node_count(self) -> int:
        return len(self._by_path)

    def matches(self, obj: Checkpointable) -> bool:
        """Structural conformance check used by guarded specialization."""
        try:
            other = Shape.of(obj)
        except (CycleError, SpecializationError):
            return False
        return self.describes(other)

    def describes(self, other: "Shape") -> bool:
        """True when ``other`` has the same classes and layout everywhere."""
        if set(self._by_path) != set(other._by_path):
            return False
        for path, node in self._by_path.items():
            peer = other._by_path[path]
            if node.cls is not peer.cls:
                return False
            if node.absent_children != peer.absent_children:
                return False
            if node.list_lengths != peer.list_lengths:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shape({self.root.cls.__name__}, {self.node_count()} nodes)"
