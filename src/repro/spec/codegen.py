"""Emission of residual IR as compiled Python.

The final stage of the specializer (the analog of the paper's
Harissa/Assirah round trip): the residual IR produced by
:class:`~repro.spec.pe.Specializer` is rendered as the source of one
monolithic Python function ``def <name>(root, out)`` and compiled. The
emitted code contains no virtual calls and no framework entry points —
only attribute reads, flag tests for positions that may genuinely be
modified, typed writes, and flag resets, exactly like the paper's
Figure 5/6 output.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.core.errors import PatternViolationError, SpecializationError
from repro.spec import ir

_WRITER_LOCALS = {
    "int": ("_w_i", "out.write_int32"),
    "float": ("_w_f", "out.write_float64"),
    "bool": ("_w_b", "out.write_bool"),
    "str": ("_w_s", "out.write_str"),
}


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.used_kinds: set = set()
        self.namespace: Dict[str, object] = {
            "PatternViolationError": PatternViolationError
        }
        self._loop_counter = 0

    # -- expressions -----------------------------------------------------------

    def expr(self, node: ir.Expr) -> str:
        if isinstance(node, ir.Var):
            return node.name
        if isinstance(node, ir.Const):
            return repr(node.value)
        if isinstance(node, ir.FieldGet):
            return f"{self.expr(node.base)}.{node.field}"
        if isinstance(node, ir.IndexGet):
            return f"{self.expr(node.base)}._items[{node.index}]"
        if isinstance(node, ir.ListLen):
            return f"len({self.expr(node.base)}._items)"
        if isinstance(node, ir.IsNone):
            return f"({self.expr(node.base)} is None)"
        if isinstance(node, ir.Not):
            return f"(not {self.expr(node.operand)})"
        if isinstance(node, ir.Eq):
            return f"({self.expr(node.left)} == {self.expr(node.right)})"
        if isinstance(node, ir.ClassIs):
            ref = f"_cls{node.cls._ckpt_serial}"
            self.namespace[ref] = node.cls
            return f"(type({self.expr(node.base)}) is {ref})"
        raise SpecializationError(
            f"expression {node!r} survived specialization but cannot be emitted"
        )

    # -- statements -------------------------------------------------------------

    def stmt(self, node: ir.Stmt, indent: int) -> None:
        pad = "    " * indent
        if isinstance(node, ir.Seq):
            for inner in node.stmts:
                self.stmt(inner, indent)
        elif isinstance(node, ir.Assign):
            self.lines.append(f"{pad}{node.name} = {self.expr(node.expr)}")
        elif isinstance(node, ir.If):
            self.lines.append(f"{pad}if {self.expr(node.cond)}:")
            self._block(node.then, indent + 1)
            if node.orelse is not None:
                self.lines.append(f"{pad}else:")
                self._block(node.orelse, indent + 1)
        elif isinstance(node, ir.Write):
            self.used_kinds.add(node.kind)
            writer = _WRITER_LOCALS[node.kind][0]
            self.lines.append(f"{pad}{writer}({self.expr(node.expr)})")
        elif isinstance(node, ir.SetAttr):
            self.lines.append(
                f"{pad}{self.expr(node.base)}.{node.field} = {self.expr(node.expr)}"
            )
        elif isinstance(node, ir.WriteScalarList):
            self.used_kinds.add(node.kind)
            self.used_kinds.add("int")
            writer = _WRITER_LOCALS[node.kind][0]
            values = self._fresh_loop_var("_v")
            element = self._fresh_loop_var("_e")
            self.lines.append(f"{pad}{values} = {self.expr(node.expr)}._items")
            self.lines.append(f"{pad}_w_i(len({values}))")
            self.lines.append(f"{pad}for {element} in {values}:")
            self.lines.append(f"{pad}    {writer}({element})")
        elif isinstance(node, ir.RecordChildIds):
            self.used_kinds.add("int")
            values = self._fresh_loop_var("_v")
            element = self._fresh_loop_var("_e")
            self.lines.append(f"{pad}{values} = {self.expr(node.expr)}._items")
            self.lines.append(f"{pad}_w_i(len({values}))")
            self.lines.append(f"{pad}for {element} in {values}:")
            self.lines.append(f"{pad}    _w_i({element}._ckpt_info.object_id)")
        elif isinstance(node, ir.Guard):
            self.lines.append(f"{pad}if not {self.expr(node.cond)}:")
            self.lines.append(
                f"{pad}    raise PatternViolationError({node.message!r})"
            )
        else:
            raise SpecializationError(
                f"statement {node!r} survived specialization but cannot be emitted"
            )

    def _block(self, node: ir.Stmt, indent: int) -> None:
        before = len(self.lines)
        self.stmt(node, indent)
        if len(self.lines) == before:
            self.lines.append("    " * indent + "pass")

    def _fresh_loop_var(self, prefix: str) -> str:
        self._loop_counter += 1
        return f"{prefix}{self._loop_counter}"


def emit(
    body: ir.Seq, name: str = "spec_checkpoint"
) -> Tuple[str, Callable]:
    """Render residual IR as Python source and compile it.

    Returns ``(source, function)`` where ``function(root, out)`` performs
    the specialized checkpoint.
    """
    emitter = _Emitter()
    emitter.stmt(body, 1)
    body_lines = emitter.lines or ["    pass"]

    prologue = [f"def {name}(root, out):"]
    for kind in ("int", "float", "bool", "str"):
        if kind in emitter.used_kinds:
            local, source = _WRITER_LOCALS[kind]
            prologue.append(f"    {local} = {source}")
    source = "\n".join(prologue + body_lines) + "\n"

    namespace = dict(emitter.namespace)
    code = compile(source, f"<specialized:{name}>", "exec")
    exec(code, namespace)
    function = namespace[name]
    function.__spec_source__ = source
    return source, function
