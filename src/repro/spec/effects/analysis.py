"""May-modify effect analysis over the Python AST of phase functions.

The analysis answers one question: *given a phase of the program, which
positions of a checkpointed structure may be marked modified before the
next checkpoint?* The answer is a sound over-approximation of the dynamic
behaviour, so a :class:`~repro.spec.modpattern.ModificationPattern` built
from it can be compiled **without run-time guards**.

Abstract domain
---------------

A value is abstracted as the set of shape positions it may alias:

- ``objs`` — the object may be the checkpointable at any of these paths;
- ``lists`` — the value may be the tracked list behind ``(path, field)``;
- ``infos`` — the value may be the ``CheckpointInfo`` of these paths.

The empty abstraction means "no shape alias" (plain ints, strings, helper
objects); writes through it are irrelevant to checkpointing.

Transfer functions mirror the framework's flagging semantics exactly: an
attribute assignment through a field descriptor flags the *owner*, and a
mutating call on a :class:`~repro.core.fields.TrackedList` flags the list's
owner. The analysis is flow-insensitive within a function — statements are
re-interpreted, alias sets only ever grow, until a fixpoint — which soundly
covers loops such as the linked-list walk ``node = node.next``.

Interprocedural propagation follows the *cross-module call graph*: a call
to a name that resolves (through the phase function's globals) to a pure
Python function with available source is analysed with the abstract
arguments bound to its parameters, and methods invoked on checkpointable
objects are resolved through the receiver's class and analysed the same
way. Function sources are loaded through the process-wide code-hash-keyed
:data:`~repro.spec.effects.callgraph.SOURCE_CACHE`, and each (callee,
argument-signature) pair is summarised once in a
:class:`~repro.spec.effects.callgraph.SummaryCache` — subsequent calls
replay the summary's effects instead of re-walking the body. Any call
that cannot be resolved, or that passes a shape alias to unknown code,
triggers the conservative fallback: every position in the escaping
subtree is assumed modifiable, and the report notes the loss of
precision.
"""

from __future__ import annotations

import ast
import builtins
import types
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.errors import EffectAnalysisError
from repro.spec.effects.callgraph import (
    CallGraph,
    CallSummary,
    SummaryCache,
    load_function_ast,
)
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Path, Shape, ShapeNode

#: builtins that neither mutate nor retain their arguments
_PURE_BUILTINS = frozenset(
    {
        "len", "range", "print", "min", "max", "sum", "abs", "isinstance",
        "issubclass", "repr", "str", "int", "float", "bool", "id", "hash",
        "format", "ord", "chr", "round", "divmod", "callable", "type",
        "any", "all",
    }
)

#: builtins that return (an iterator over) their arguments unchanged
_ALIAS_BUILTINS = frozenset(
    {"list", "tuple", "sorted", "reversed", "iter", "next", "enumerate",
     "set", "frozenset", "zip", "filter"}
)

#: the mutating subset of the TrackedList API (flags the list's owner)
_LIST_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort",
     "replace", "__setitem__", "__delitem__"}
)

#: Checkpointable methods known not to modify checkpointed state
_PURE_OBJ_METHODS = frozenset({"get_checkpoint_info", "children"})

#: CheckpointInfo methods that set the modification flag
_INFO_SETTERS = frozenset({"set_modified"})

_MAX_CALL_DEPTH = 12


class Abs:
    """Abstract value: the shape positions a runtime value may alias."""

    __slots__ = ("objs", "lists", "infos")

    def __init__(
        self,
        objs: FrozenSet[Path] = frozenset(),
        lists: FrozenSet[Tuple[Path, str]] = frozenset(),
        infos: FrozenSet[Path] = frozenset(),
    ) -> None:
        self.objs = objs
        self.lists = lists
        self.infos = infos

    def join(self, other: "Abs") -> "Abs":
        if other is EMPTY:
            return self
        if self is EMPTY:
            return other
        return Abs(
            self.objs | other.objs,
            self.lists | other.lists,
            self.infos | other.infos,
        )

    def is_empty(self) -> bool:
        return not (self.objs or self.lists or self.infos)

    def signature(self) -> Tuple:
        """Hashable summary used for memoization and fixpoint detection."""
        return (
            frozenset(self.objs),
            frozenset(self.lists),
            frozenset(self.infos),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Abs(objs={sorted(self.objs, key=repr)!r}, "
            f"lists={sorted(self.lists, key=repr)!r})"
        )


EMPTY = Abs()


def _join_all(values: Iterable[Abs]) -> Abs:
    result = EMPTY
    for value in values:
        result = result.join(value)
    return result


class WriteSite:
    """Provenance of one inferred may-write: where and why."""

    __slots__ = ("path", "filename", "lineno", "reason")

    def __init__(self, path: Optional[Path], filename: str, lineno: int, reason: str) -> None:
        self.path = path
        self.filename = filename
        self.lineno = lineno
        self.reason = reason

    def location(self) -> str:
        return f"{self.filename}:{self.lineno}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteSite({self.path!r} @ {self.location()}: {self.reason})"


class EffectReport:
    """Result of the analysis: may-written positions plus provenance."""

    def __init__(self, shape: Shape, phase_names: List[str]) -> None:
        self.shape = shape
        self.phase_names = phase_names
        #: path -> evidence sites (first site is the earliest discovered)
        self.sites: Dict[Path, List[WriteSite]] = {}
        #: conservative widenings caused by opaque calls
        self.fallbacks: List[WriteSite] = []
        #: suspicious constructs worth surfacing (flag writes, slot writes,
        #: structural child_list mutations) — not themselves unsound
        self.cautions: List[WriteSite] = []

    # -- recording (used by the analyzer) ----------------------------------

    def add(self, path: Path, site: WriteSite) -> bool:
        """Record a may-write; returns True when the site is new."""
        existing = self.sites.setdefault(path, [])
        for seen in existing:
            if seen.filename == site.filename and seen.lineno == site.lineno:
                return False
        existing.append(site)
        return True

    # -- queries -----------------------------------------------------------

    @property
    def may_write(self) -> FrozenSet[Path]:
        """The inferred over-approximation of modifiable positions."""
        return frozenset(self.sites)

    def is_exact(self) -> bool:
        """True when no opaque-call fallback widened the result."""
        return not self.fallbacks

    def proves_quiescent(self, path: Path) -> bool:
        """True when the analysis proves the position is never written."""
        return tuple(path) not in self.sites

    def pattern(self) -> ModificationPattern:
        """The (sound) modification pattern implied by the inferred effects."""
        return ModificationPattern.only(self.shape, self.may_write)

    def evidence(self, path: Path) -> List[WriteSite]:
        return list(self.sites.get(tuple(path), ()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EffectReport({len(self.sites)}/{self.shape.node_count()} "
            f"positions may be written, exact={self.is_exact()})"
        )


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class _Frame:
    """Per-function analysis context."""

    __slots__ = ("env", "filename", "globals", "localfuncs", "ret", "depth",
                 "label")

    def __init__(
        self,
        env: Dict[str, Abs],
        filename: str,
        globs: dict,
        depth: int,
        label: str = "<anonymous>",
    ) -> None:
        self.env = env
        self.filename = filename
        self.globals = globs
        self.localfuncs: Dict[str, ast.FunctionDef] = {}
        self.ret = EMPTY
        self.depth = depth
        #: dotted display name of the analysed function (call-graph node)
        self.label = label

    def bind(self, name: str, value: Abs) -> None:
        old = self.env.get(name, EMPTY)
        self.env[name] = old.join(value)


def _label_of(fn: Callable) -> str:
    module = getattr(fn, "__module__", None) or "<unknown>"
    qualname = getattr(fn, "__qualname__", None) or getattr(
        fn, "__name__", repr(fn)
    )
    return f"{module}.{qualname}"


class EffectAnalyzer:
    """Analyses phase functions against one shape.

    ``summaries`` optionally shares a
    :class:`~repro.spec.effects.callgraph.SummaryCache` across analyzers
    (it must be bound to the same shape); ``callgraph`` optionally
    collects the call edges the run discovers.
    """

    def __init__(
        self,
        shape: Shape,
        roots: Optional[Iterable[str]] = None,
        summaries: Optional[SummaryCache] = None,
        callgraph: Optional[CallGraph] = None,
    ) -> None:
        self.shape = shape
        self.roots = frozenset(roots or ())
        self.report: EffectReport = EffectReport(shape, [])
        if summaries is not None and summaries.shape is not shape:
            raise EffectAnalysisError(
                "the summary cache is bound to a different shape: its "
                "recorded paths would be unsound here"
            )
        self.summaries = summaries if summaries is not None else SummaryCache(shape)
        self.callgraph = callgraph
        self._in_progress: set = set()

    # -- entry points ------------------------------------------------------

    def analyze(self, phases: Iterable[Callable]) -> EffectReport:
        phases = list(phases)
        self.report = EffectReport(
            self.shape, [getattr(fn, "__name__", repr(fn)) for fn in phases]
        )
        for fn in phases:
            self._analyze_phase(fn)
        return self.report

    def _analyze_phase(self, fn: Callable) -> None:
        loaded = self._function_ast(fn)
        if loaded is None:
            raise EffectAnalysisError(
                f"cannot analyse phase {fn!r}: source is unavailable"
            )
        fdef, filename, globs = loaded
        env = self._bind_parameters(fn, fdef)
        label = _label_of(fn)
        if self.callgraph is not None:
            self.callgraph.add_root(label)
        frame = _Frame(env, filename, globs, depth=0, label=label)
        self._run_body(fdef.body, frame)

    # -- source loading ----------------------------------------------------

    def _function_ast(
        self, fn: Callable
    ) -> Optional[Tuple[ast.FunctionDef, str, dict]]:
        if not isinstance(fn, types.FunctionType):
            return None
        loaded = load_function_ast(fn)
        if loaded is None:
            return None
        fdef, filename = loaded
        return (fdef, filename, fn.__globals__)

    def _bind_parameters(self, fn: Callable, fdef: ast.FunctionDef) -> Dict[str, Abs]:
        """Bind the phase's root parameter(s) to the shape root."""
        root_abs = Abs(objs=frozenset({()}))
        env: Dict[str, Abs] = {}
        params = [a.arg for a in fdef.args.args]
        annotations = getattr(fn, "__annotations__", {})
        root_cls = self.shape.root.cls
        bound = False
        for name in params:
            if name in self.roots:
                env[name] = root_abs
                bound = True
                continue
            annotation = annotations.get(name)
            matches = annotation is root_cls or (
                isinstance(annotation, str) and annotation == root_cls.__name__
            )
            if matches:
                env[name] = root_abs
                bound = True
        if not bound:
            if "root" in params:
                env["root"] = root_abs
            elif len(params) == 1:
                env[params[0]] = root_abs
            else:
                raise EffectAnalysisError(
                    f"cannot bind the shape root ({root_cls.__name__}) to a "
                    f"parameter of {fn.__qualname__}; annotate the root "
                    "parameter with the root class or pass roots=[name]"
                )
        return env

    # -- fixpoint driver ---------------------------------------------------

    def _run_body(self, body: List[ast.stmt], frame: _Frame) -> Abs:
        limit = self.shape.node_count() + 3
        for _ in range(limit):
            snapshot = self._state_signature(frame)
            for stmt in body:
                self._stmt(stmt, frame)
            if self._state_signature(frame) == snapshot:
                break
        return frame.ret

    def _state_signature(self, frame: _Frame) -> Tuple:
        env_sig = tuple(
            sorted((name, value.signature()) for name, value in frame.env.items())
        )
        report_sig = (
            sum(len(sites) for sites in self.report.sites.values()),
            len(self.report.fallbacks),
            len(self.report.cautions),
        )
        return (env_sig, frame.ret.signature(), report_sig)

    # -- shape helpers -----------------------------------------------------

    def _node(self, path: Path) -> ShapeNode:
        return self.shape.node_at(path)

    def _field_by_name(self, node: ShapeNode, name: str):
        for spec in node.cls._ckpt_schema:
            if spec.name == name:
                return spec
        return None

    def _attr_value(self, base: Abs, attr: str) -> Abs:
        """Abstract result of reading ``base.attr``."""
        objs: set = set()
        lists: set = set()
        infos: set = set()
        for path in base.objs:
            node = self._node(path)
            if attr == "_ckpt_info":
                infos.add(path)
                continue
            name = attr[3:] if attr.startswith("_f_") else attr
            spec = self._field_by_name(node, name)
            if spec is None:
                continue
            if spec.role == "child":
                child = node.child_node(spec.name)
                if child is not None:
                    objs.add(child.path)
            elif spec.role in ("child_list", "scalar_list"):
                lists.add((path, spec.name))
            # scalar reads carry no alias
        for path, field in base.lists:
            if attr == "_items":
                objs.update(self._list_members(path, field))
        if not (objs or lists or infos):
            return EMPTY
        return Abs(frozenset(objs), frozenset(lists), frozenset(infos))

    def _list_members(self, path: Path, field: str) -> FrozenSet[Path]:
        node = self._node(path)
        spec = self._field_by_name(node, field)
        if spec is not None and spec.role == "child_list":
            return frozenset(n.path for n in node.list_nodes(field))
        return frozenset()

    def _elements(self, value: Abs) -> Abs:
        """Abstract elements obtained by iterating/indexing ``value``."""
        objs = set(value.objs)  # container literals keep members in .objs
        for path, field in value.lists:
            objs.update(self._list_members(path, field))
        if not objs:
            return EMPTY
        return Abs(objs=frozenset(objs))

    def _subtree_paths(self, prefix: Path) -> List[Path]:
        return [p for p in self.shape.paths() if p[: len(prefix)] == prefix]

    # -- effect recording --------------------------------------------------

    def _site(self, node: ast.AST, frame: _Frame, reason: str, path: Optional[Path] = None) -> WriteSite:
        return WriteSite(path, frame.filename, getattr(node, "lineno", 0), reason)

    def _effect(self, path: Path, node: ast.AST, frame: _Frame, reason: str) -> None:
        self.report.add(path, self._site(node, frame, reason, path))

    def _taint(self, value: Abs, node: ast.AST, frame: _Frame, reason: str) -> None:
        """Conservative fallback: every reachable position may be written."""
        prefixes: set = set(value.objs)
        prefixes.update(path for path, _field in value.lists)
        prefixes.update(value.infos)
        if not prefixes:
            return
        site = self._site(node, frame, reason)
        if not any(
            f.filename == site.filename and f.lineno == site.lineno
            for f in self.report.fallbacks
        ):
            self.report.fallbacks.append(site)
        for prefix in prefixes:
            for path in self._subtree_paths(prefix):
                self._effect(path, node, frame, f"escapes to opaque code: {reason}")

    def _edge(
        self,
        frame: _Frame,
        callee: str,
        node: ast.AST,
        resolved: bool,
        reason: str = "",
    ) -> None:
        """Record one call edge in the attached call graph (if any)."""
        if self.callgraph is not None:
            self.callgraph.record(
                frame.label, callee, frame.filename,
                getattr(node, "lineno", 0), resolved, reason,
            )

    def _caution(self, node: ast.AST, frame: _Frame, reason: str) -> None:
        site = self._site(node, frame, reason)
        if not any(
            c.filename == site.filename and c.lineno == site.lineno
            and c.reason == reason
            for c in self.report.cautions
        ):
            self.report.cautions.append(site)

    # -- statements --------------------------------------------------------

    def _stmt(self, node: ast.stmt, frame: _Frame) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            frame.localfuncs[node.name] = node
            return
        if isinstance(node, ast.ClassDef):
            return  # class bodies do not run against the live structure
        if isinstance(node, (ast.Import, ast.ImportFrom, ast.Global,
                             ast.Nonlocal, ast.Pass, ast.Break, ast.Continue)):
            return
        if isinstance(node, ast.Assign):
            value = self._eval(node.value, frame)
            for target in node.targets:
                self._assign_target(target, value, frame)
            return
        if isinstance(node, ast.AnnAssign):
            value = self._eval(node.value, frame) if node.value else EMPTY
            self._assign_target(node.target, value, frame)
            return
        if isinstance(node, ast.AugAssign):
            value = self._eval(node.value, frame)
            # the target is read and re-written
            self._eval_target_read(node.target, frame)
            self._assign_target(node.target, value, frame)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._assign_target(target, EMPTY, frame)
            return
        if isinstance(node, ast.Expr):
            self._eval(node.value, frame)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                frame.ret = frame.ret.join(self._eval(node.value, frame))
            return
        if isinstance(node, ast.If):
            self._eval(node.test, frame)
            self._run_stmts(node.body, frame)
            self._run_stmts(node.orelse, frame)
            return
        if isinstance(node, ast.While):
            self._eval(node.test, frame)
            self._run_stmts(node.body, frame)
            self._run_stmts(node.orelse, frame)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterable = self._eval(node.iter, frame)
            self._assign_target(node.target, self._elements(iterable), frame)
            self._run_stmts(node.body, frame)
            self._run_stmts(node.orelse, frame)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr, frame)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, value, frame)
            self._run_stmts(node.body, frame)
            return
        if isinstance(node, ast.Try):
            self._run_stmts(node.body, frame)
            for handler in node.handlers:
                self._run_stmts(handler.body, frame)
            self._run_stmts(node.orelse, frame)
            self._run_stmts(node.finalbody, frame)
            return
        if isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, frame)
            return
        # Unknown statement kinds (e.g. Match): walk children conservatively.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child, frame)
            elif isinstance(child, ast.expr):
                self._eval(child, frame)

    def _run_stmts(self, body: List[ast.stmt], frame: _Frame) -> None:
        for stmt in body:
            self._stmt(stmt, frame)

    def _eval_target_read(self, target: ast.expr, frame: _Frame) -> None:
        """AugAssign reads its target before writing it."""
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval(target, frame)

    # -- write targets -----------------------------------------------------

    def _assign_target(self, target: ast.expr, value: Abs, frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            frame.bind(target.id, value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            element = self._elements(value).join(value)
            for item in target.elts:
                self._assign_target(item, element, frame)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, value, frame)
            return
        if isinstance(target, ast.Attribute):
            self._attribute_write(target, value, frame)
            return
        if isinstance(target, ast.Subscript):
            base = self._eval(target.value, frame)
            if isinstance(target.slice, ast.expr):
                self._eval(target.slice, frame)
            for path, field in base.lists:
                self._effect(
                    path, target, frame,
                    f"item assignment on tracked list field {field!r}",
                )
            return
        # exotic targets: evaluate for completeness
        self._eval(target, frame)

    def _attribute_write(self, target: ast.Attribute, value: Abs, frame: _Frame) -> None:
        base = self._eval(target.value, frame)
        attr = target.attr
        for path in base.objs:
            node = self._node(path)
            if attr == "_ckpt_info":
                self._caution(
                    target, frame,
                    "replacing _ckpt_info defeats modification tracking",
                )
                self._effect(path, target, frame, "assignment to _ckpt_info")
                continue
            name = attr[3:] if attr.startswith("_f_") else attr
            spec = self._field_by_name(node, name)
            if spec is None:
                continue  # non-schema attribute: not checkpointed state
            if attr.startswith("_f_"):
                self._caution(
                    target, frame,
                    f"write to slot {attr!r} bypasses the field descriptor "
                    "(no modification flag is set)",
                )
            self._effect(
                path, target, frame, f"assignment to field .{spec.name}"
            )
            if spec.role in ("child", "child_list") and not attr.startswith("_f_"):
                self._caution(
                    target, frame,
                    f"reassigning {spec.role} field .{spec.name} changes the "
                    "structure the Shape was derived from",
                )
        for path, field in base.lists:
            if attr == "_items":
                self._caution(
                    target, frame,
                    "write to TrackedList._items bypasses modification tracking",
                )
                self._effect(path, target, frame, f"raw write to {field!r}._items")
        for path in base.infos:
            if attr == "modified":
                self._caution(
                    target, frame,
                    "direct write to CheckpointInfo.modified",
                )
                self._effect(path, target, frame, "direct modified-flag write")

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr, frame: _Frame) -> Abs:
        if isinstance(node, ast.Name):
            return frame.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Attribute):
            return self._attr_value(self._eval(node.value, frame), node.attr)
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, frame)
            index: Optional[int] = None
            if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, int):
                index = node.slice.value
            elif isinstance(node.slice, ast.expr):
                self._eval(node.slice, frame)
            objs: set = set(base.objs)  # container-literal members
            for path, field in base.lists:
                members = sorted(self._list_members(path, field))
                if index is not None and 0 <= index < len(members):
                    objs.add(members[index])
                else:
                    objs.update(members)
            return Abs(objs=frozenset(objs)) if objs else EMPTY
        if isinstance(node, ast.Call):
            return self._call(node, frame)
        if isinstance(node, ast.BoolOp):
            return _join_all(self._eval(v, frame) for v in node.values)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, frame)
            return self._eval(node.body, frame).join(self._eval(node.orelse, frame))
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, frame)
            self._assign_target(node.target, value, frame)
            return value
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _join_all(self._eval(e, frame) for e in node.elts)
        if isinstance(node, ast.Dict):
            return _join_all(
                self._eval(v, frame) for v in node.values if v is not None
            )
        if isinstance(node, ast.Starred):
            return self._eval(node.value, frame)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in node.generators:
                iterable = self._eval(comp.iter, frame)
                self._assign_target(comp.target, self._elements(iterable), frame)
                for test in comp.ifs:
                    self._eval(test, frame)
            return self._eval(node.elt, frame)
        if isinstance(node, ast.DictComp):
            for comp in node.generators:
                iterable = self._eval(comp.iter, frame)
                self._assign_target(comp.target, self._elements(iterable), frame)
                for test in comp.ifs:
                    self._eval(test, frame)
            self._eval(node.key, frame)
            return self._eval(node.value, frame)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, frame)
        if isinstance(node, ast.Yield):
            return self._eval(node.value, frame) if node.value else EMPTY
        if isinstance(node, ast.Lambda):
            return EMPTY  # opaque if ever called through a variable
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare,
                             ast.JoinedStr, ast.FormattedValue, ast.Slice)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, frame)
            return EMPTY
        # Unknown expression: evaluate children, assume no alias.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, frame)
        return EMPTY

    # -- calls -------------------------------------------------------------

    def _call(self, node: ast.Call, frame: _Frame) -> Abs:
        arg_abs = [self._eval(a, frame) for a in node.args]
        kw_abs = {
            kw.arg: self._eval(kw.value, frame) for kw in node.keywords
        }
        func = node.func

        if isinstance(func, ast.Attribute):
            return self._method_call(func, arg_abs, kw_abs, node, frame)

        if isinstance(func, ast.Name):
            name = func.id
            if name in frame.localfuncs:
                return self._call_ast(
                    frame.localfuncs[name], arg_abs, kw_abs, node, frame,
                    frame.filename, frame.globals, dict(frame.env),
                    label=f"{frame.label}.<locals>.{name}",
                )
            target = frame.globals.get(name, _MISSING)
            if target is _MISSING:
                target = getattr(builtins, name, _MISSING)
            if target is _MISSING:
                self._edge(frame, name, node, resolved=False,
                           reason="unresolved name")
                self._taint_args(arg_abs, kw_abs, node, frame,
                                 f"call to unresolved name {name!r}")
                return EMPTY
            if isinstance(target, types.FunctionType):
                return self._call_function(target, arg_abs, kw_abs, node, frame)
            if isinstance(target, type):
                return self._constructor_call(target, arg_abs, kw_abs, node, frame)
            if name in _PURE_BUILTINS:
                return EMPTY
            if name in _ALIAS_BUILTINS:
                return _join_all(arg_abs + list(kw_abs.values()))
            self._edge(frame, name, node, resolved=False,
                       reason="opaque callable")
            self._taint_args(arg_abs, kw_abs, node, frame,
                             f"call to opaque callable {name!r}")
            return EMPTY

        # calling an arbitrary expression (lambda var, function table, ...)
        self._eval(func, frame)
        self._edge(frame, "<expression>", node, resolved=False,
                   reason="call through a non-name expression")
        self._taint_args(arg_abs, kw_abs, node, frame,
                         "call through a non-name expression")
        return EMPTY

    def _method_call(
        self,
        func: ast.Attribute,
        arg_abs: List[Abs],
        kw_abs: Dict[Optional[str], Abs],
        node: ast.Call,
        frame: _Frame,
    ) -> Abs:
        base = self._eval(func.value, frame)
        method = func.attr
        result = EMPTY
        handled = False

        for path, field in base.lists:
            handled = True
            spec = self._field_by_name(self._node(path), field)
            if method in _LIST_MUTATORS:
                self._effect(
                    path, node, frame,
                    f".{method}() on tracked list field {field!r}",
                )
                if spec is not None and spec.role == "child_list":
                    self._caution(
                        node, frame,
                        f".{method}() on child_list {field!r} changes the "
                        "structure the Shape was derived from",
                    )
            # pop() and friends may hand a member back to the caller
            result = result.join(Abs(objs=self._list_members(path, field)))

        if base.objs:
            handled = True
            if method == "get_checkpoint_info":
                result = result.join(Abs(infos=base.objs))
            elif method == "children":
                children: set = set()
                for path in base.objs:
                    for edge in self._node(path).edges:
                        children.add(edge.node.path)
                result = result.join(Abs(objs=frozenset(children)))
            elif method in _PURE_OBJ_METHODS:
                pass
            else:
                result = result.join(
                    self._checkpointable_method(
                        base.objs, method, arg_abs, kw_abs, node, frame
                    )
                )

        if base.infos:
            handled = True
            if method in _INFO_SETTERS:
                for path in base.infos:
                    self._effect(
                        path, node, frame, f"CheckpointInfo.{method}() call"
                    )
                self._caution(node, frame,
                              f"direct CheckpointInfo.{method}() call")

        if not handled:
            # Unknown receiver: it may retain or mutate any alias passed in.
            self._taint_args(arg_abs, kw_abs, node, frame,
                             f"argument of opaque method .{method}()")
        return result

    def _constructor_call(
        self,
        target: type,
        arg_abs: List[Abs],
        kw_abs: Dict[Optional[str], Abs],
        node: ast.Call,
        frame: _Frame,
    ) -> Abs:
        from repro.core.checkpointable import Checkpointable

        if issubclass(target, Checkpointable):
            # A freshly built object is outside the analysed shape; handing
            # existing children to it re-parents them (structural change).
            if any(not a.is_empty() for a in list(arg_abs) + list(kw_abs.values())):
                self._caution(
                    node, frame,
                    f"constructing {target.__name__} from objects of the "
                    "analysed structure re-parents them",
                )
            return EMPTY
        if any(not a.is_empty() for a in list(arg_abs) + list(kw_abs.values())):
            self._taint_args(arg_abs, kw_abs, node, frame,
                             f"aliased argument to constructor {target.__name__}")
        return EMPTY

    def _taint_args(
        self,
        arg_abs: List[Abs],
        kw_abs: Dict[Optional[str], Abs],
        node: ast.Call,
        frame: _Frame,
        reason: str,
    ) -> None:
        for value in list(arg_abs) + list(kw_abs.values()):
            if not value.is_empty():
                self._taint(value, node, frame, reason)

    # -- interprocedural ---------------------------------------------------

    def _checkpointable_method(
        self,
        obj_paths: FrozenSet[Path],
        method: str,
        arg_abs: List[Abs],
        kw_abs: Dict[Optional[str], Abs],
        node: ast.Call,
        frame: _Frame,
    ) -> Abs:
        """Resolve ``receiver.method(...)`` through the receiver's class.

        The receiver may alias positions of several classes; each class's
        method is analysed separately with ``self`` bound to that class's
        positions. Methods without source (generated ``record``/``fold``,
        C-level callables) fall back conservatively: the receiver's whole
        subtree — and every aliased argument — is widened.
        """
        by_cls: Dict[type, set] = {}
        for path in obj_paths:
            by_cls.setdefault(self._node(path).cls, set()).add(path)
        result = EMPTY
        for cls, paths in sorted(
            by_cls.items(), key=lambda item: item[0].__name__
        ):
            receiver = Abs(objs=frozenset(paths))
            target = getattr(cls, method, None)
            loaded = (
                self._function_ast(target)
                if isinstance(target, types.FunctionType)
                else None
            )
            if loaded is None:
                self._edge(frame, f"{cls.__name__}.{method}", node,
                           resolved=False, reason="opaque method")
                self._taint(
                    receiver, node, frame,
                    f"opaque method .{method}() on a checkpointable object",
                )
                self._taint_args(arg_abs, kw_abs, node, frame,
                                 f"argument of opaque method .{method}()")
                continue
            fdef, filename, globs = loaded
            label = _label_of(target)
            self._edge(frame, label, node, resolved=True)
            result = result.join(
                self._call_ast(
                    fdef, [receiver] + list(arg_abs), kw_abs, node, frame,
                    filename, globs, {}, label=label,
                )
            )
        return result

    def _call_function(
        self,
        target: types.FunctionType,
        arg_abs: List[Abs],
        kw_abs: Dict[Optional[str], Abs],
        node: ast.Call,
        frame: _Frame,
    ) -> Abs:
        loaded = self._function_ast(target)
        if loaded is None:
            self._edge(frame, _label_of(target), node, resolved=False,
                       reason="source unavailable")
            self._taint_args(arg_abs, kw_abs, node, frame,
                             f"call to {target.__name__} (source unavailable)")
            return EMPTY
        fdef, filename, globs = loaded
        label = _label_of(target)
        self._edge(frame, label, node, resolved=True)
        return self._call_ast(fdef, arg_abs, kw_abs, node, frame,
                              filename, globs, {}, label=label)

    def _call_ast(
        self,
        fdef: ast.FunctionDef,
        arg_abs: List[Abs],
        kw_abs: Dict[Optional[str], Abs],
        node: ast.Call,
        frame: _Frame,
        filename: str,
        globs: dict,
        closure_env: Dict[str, Abs],
        label: Optional[str] = None,
    ) -> Abs:
        if frame.depth >= _MAX_CALL_DEPTH:
            self._taint_args(arg_abs, kw_abs, node, frame,
                             f"call depth limit reached at {fdef.name}")
            return EMPTY

        params = [a.arg for a in fdef.args.args]
        env: Dict[str, Abs] = dict(closure_env)
        spill: List[Abs] = []
        for index, value in enumerate(arg_abs):
            if index < len(params):
                env[params[index]] = value
            else:
                spill.append(value)
        for name, value in kw_abs.items():
            if name is not None and name in params:
                env[name] = value
            else:
                spill.append(value)
        for value in spill:
            # lands in *args/**kwargs (or is simply surplus): assume the worst
            if not value.is_empty():
                self._taint(value, node, frame,
                            f"unmapped argument to {fdef.name}")
        for param in params:
            env.setdefault(param, EMPTY)

        # Parameter-polymorphic summary key: the function identity (the
        # parsed body object itself — held strongly, so it can never be
        # confused with a later parse) plus the abstract signature of
        # every non-empty binding.
        key = (
            fdef,
            tuple(sorted((n, v.signature()) for n, v in env.items()
                         if not v.is_empty())),
        )
        if key in self._in_progress:
            # recursion: assume the worst for the arguments, stop unfolding
            self._taint_args(arg_abs, kw_abs, node, frame,
                             f"recursive call to {fdef.name}")
            return EMPTY
        summary = self.summaries.get(key)
        if summary is not None:
            return self._replay(summary)

        self._in_progress.add(key)
        mark = self._report_mark()
        try:
            callee = _Frame(env, filename, globs, depth=frame.depth + 1,
                            label=label or f"{frame.label}.<locals>.{fdef.name}")
            result = self._run_body(fdef.body, callee)
        finally:
            self._in_progress.discard(key)
        self.summaries.store(key, self._summarize(result, mark))
        return result

    # -- summary capture/replay --------------------------------------------

    def _report_mark(self) -> Tuple:
        """Snapshot of the report's extents, taken before a callee runs."""
        return (
            {path: len(sites) for path, sites in self.report.sites.items()},
            len(self.report.fallbacks),
            len(self.report.cautions),
        )

    def _summarize(self, ret: Abs, mark: Tuple) -> CallSummary:
        """Package everything the callee added to the report since ``mark``."""
        site_counts, n_fallbacks, n_cautions = mark
        writes = []
        for path, sites in self.report.sites.items():
            for site in sites[site_counts.get(path, 0):]:
                writes.append((path, site))
        return CallSummary(
            ret,
            tuple(writes),
            tuple(self.report.fallbacks[n_fallbacks:]),
            tuple(self.report.cautions[n_cautions:]),
        )

    def _replay(self, summary: CallSummary) -> Abs:
        """Apply a cached callee summary to the current report."""
        for path, site in summary.writes:
            self.report.add(path, site)
        for site in summary.fallbacks:
            if not any(
                f.filename == site.filename and f.lineno == site.lineno
                for f in self.report.fallbacks
            ):
                self.report.fallbacks.append(site)
        for site in summary.cautions:
            if not any(
                c.filename == site.filename and c.lineno == site.lineno
                and c.reason == site.reason
                for c in self.report.cautions
            ):
                self.report.cautions.append(site)
        return summary.ret


_MISSING = object()


def analyze_effects(
    shape: Shape,
    phases: Iterable[Callable],
    roots: Optional[Iterable[str]] = None,
    summaries: Optional[SummaryCache] = None,
    callgraph: Optional[CallGraph] = None,
) -> EffectReport:
    """Infer the positions of ``shape`` the given phases may modify.

    Parameters
    ----------
    shape:
        Structural facts of the checkpointed structure.
    phases:
        The phase functions to analyse. Each must be a pure-Python function
        whose source is available. The root of the structure is bound to
        the parameter annotated with the root class, to a parameter named
        in ``roots``, to a parameter literally named ``root``, or — for
        single-parameter functions — to that parameter.
    roots:
        Optional parameter names to bind to the shape root, for phases
        whose root parameter cannot be recognised by annotation or name.
    summaries:
        Optional :class:`~repro.spec.effects.callgraph.SummaryCache` to
        reuse across analyses of the same shape (effect summaries are
        replayed instead of re-analysing shared helpers).
    callgraph:
        Optional :class:`~repro.spec.effects.callgraph.CallGraph` that
        collects every discovered call edge, resolved or not.

    Returns
    -------
    EffectReport
        Sound over-approximation of may-written positions with `file:line`
        provenance, opaque-call fallback notes, and suspicious-construct
        cautions.
    """
    return EffectAnalyzer(
        shape, roots, summaries=summaries, callgraph=callgraph
    ).analyze(phases)
