"""Shared comment-based suppression machinery for the effects passes.

Every static pass in :mod:`repro.spec.effects` that reports findings
supports a per-site escape hatch: a comment marker such as ``# race-ok``
(concurrency) or ``# alias-ok`` (aliasing), optionally followed by
``: reason``. A suppressed site is excluded from rule evaluation but
recorded as a :class:`SuppressedSite` so provenance survives into the
human and JSON reports — a silenced finding is still a finding someone
decided about.

Scanning uses real tokenization, not substring search, so a marker
inside a string literal never suppresses anything. A marker on a ``def``
line suppresses the whole function; a marker on the line above a
statement suppresses that statement (for when the line itself has no
room).
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path
from typing import Dict, List, Optional

#: marker recognized by the concurrency (lockset/race) pass
RACE_OK = "race-ok"
#: marker recognized by the escape/alias pass
ALIAS_OK = "alias-ok"


class SuppressedSite:
    """One finding-worthy site silenced by a suppression comment."""

    __slots__ = ("filename", "lineno", "reason", "what")

    def __init__(
        self, filename: str, lineno: int, reason: str, what: str
    ) -> None:
        self.filename = filename
        self.lineno = lineno
        self.reason = reason
        self.what = what

    def to_dict(self) -> Dict:
        return {
            "file": self.filename,
            "line": self.lineno,
            "reason": self.reason,
            "what": self.what,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SuppressedSite({self.filename}:{self.lineno}, {self.what})"


def suppression_lines(source: str, marker: str) -> Dict[int, str]:
    """Map line numbers carrying a ``# <marker>`` comment to their reason.

    Recognizes both the bare marker and ``<marker>: reason``; a bare
    marker records the reason ``"unspecified"``.
    """
    found: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if text == marker or text.startswith(marker + ":"):
                reason = text[len(marker) :].lstrip(":").strip()
                found[token.start[0]] = reason or "unspecified"
    except tokenize.TokenError:
        pass
    return found


class Suppressions:
    """The suppression decisions of one file, plus what they silenced.

    Passes ask :meth:`check` at each would-be finding site; a hit records
    a :class:`SuppressedSite` and returns ``True`` (meaning: do not
    report). ``def``-line suppression is handled by passing the
    enclosing function's line as ``scope_lineno``.
    """

    __slots__ = ("filename", "lines", "sites")

    def __init__(self, filename: str, source: str, marker: str) -> None:
        self.filename = filename
        self.lines = suppression_lines(source, marker)
        self.sites: List[SuppressedSite] = []

    def reason_at(
        self, lineno: int, scope_lineno: Optional[int] = None
    ) -> Optional[str]:
        """The suppression reason covering ``lineno``, if any.

        The annotation may trail the statement, sit on the line above,
        or sit on the enclosing ``def`` line (``scope_lineno``).
        """
        reason = self.lines.get(lineno)
        if reason is None:
            reason = self.lines.get(lineno - 1)
        if reason is None and scope_lineno is not None:
            reason = self.lines.get(scope_lineno)
        return reason

    def check(
        self, lineno: int, what: str, scope_lineno: Optional[int] = None
    ) -> bool:
        """Record and report whether the site at ``lineno`` is suppressed."""
        reason = self.reason_at(lineno, scope_lineno)
        if reason is None:
            return False
        self.sites.append(
            SuppressedSite(self.filename, lineno, reason, what)
        )
        return True


def relativize_sites(
    sites: List[SuppressedSite], base: Optional[str] = None
) -> List[SuppressedSite]:
    """Rewrite suppressed-site paths under ``base`` (default: cwd) as relative.

    The same path policy as
    :func:`repro.lint.findings.relativize_findings`: files outside the
    base keep their absolute paths.
    """
    root = (Path(base) if base is not None else Path.cwd()).resolve()
    for site in sites:
        if not site.filename:
            continue
        try:
            relative = Path(site.filename).resolve().relative_to(root)
        except (ValueError, OSError):
            continue
        site.filename = str(relative)
    return sites
