"""Dynamic counterexample harness for statically-inferred patterns.

The whole-program analysis (:mod:`repro.spec.effects.wholeprogram`) emits
patterns that are *sound by construction* — every write the phases can
perform is covered. This module is the second, independent line of
defense: it runs real workloads — the analysis engine of
:mod:`repro.analysis` and the synthetic populations of
:mod:`repro.synthetic` — under the inferred patterns in checking mode,
and fails with a **minimized write-site repro** if a statically-quiescent
position is ever dirtied at run time. A counterexample here means the
analysis itself has a bug, so the harness is wired into CI next to the
linter.

Three scenario families:

- :func:`crosscheck_phases` — run explicit phase functions against the
  patterns inferred for them, validating dirty flags before each commit
  and cross-validating checkpoint bytes against the ``checking`` driver.
- :func:`crosscheck_driver` — run a whole driver function under a
  validating session: every ``commit(phase=...)`` first checks the live
  dirty state against that phase's inferred pattern.
- :func:`crosscheck_engine` / :func:`crosscheck_synthetic` — the two
  built-in workloads: the three-phase analysis engine and the paper's
  synthetic populations (uniform, restricted-lists, last-element).

Run the whole battery with ``python -m repro.spec.effects.crosscheck``.

The runtime, engine, and synthetic packages import :mod:`repro.spec`, so
everything outside the spec layer is imported lazily inside functions —
this module must stay out of :mod:`repro.spec.effects`'s eager imports.
"""

from __future__ import annotations

import importlib.util
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path as FsPath
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.checkpoint import (
    CheckingCheckpoint,
    collect_objects,
    reset_flags,
)
from repro.core.streams import DataOutputStream
from repro.spec.effects.analysis import EffectReport, analyze_effects
from repro.spec.effects.soundness import check_pattern
from repro.spec.effects.wholeprogram import infer_phases
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Path, Shape
from repro.spec.specclass import SpecClass, SpecCompiler


@dataclass
class Counterexample:
    """One run-time violation of a statically-inferred pattern."""

    scenario: str
    phase: str
    #: the statically-quiescent shape position that got dirty
    path: Path
    #: the minimized repro: the single phase function (or region) whose
    #: run alone dirties the position
    repro: str

    def describe(self) -> str:
        return (
            f"[{self.scenario}] phase {self.phase!r}: position {self.path!r} "
            f"was dirtied at run time but inferred quiescent — {self.repro}"
        )


@dataclass
class CrosscheckResult:
    """What one scenario verified, and every violation it found."""

    scenario: str
    #: individual validations performed (flag checks + byte comparisons)
    checks: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def describe(self) -> List[str]:
        status = "ok" if self.ok else "FAILED"
        lines = [f"{self.scenario}: {status} ({self.checks} check(s))"]
        lines.extend(f"  {note}" for note in self.notes)
        lines.extend(f"  {ce.describe()}" for ce in self.counterexamples)
        return lines


# -- helpers -----------------------------------------------------------------


def _snapshot_flags(roots) -> List[Tuple[object, bool]]:
    return [
        (obj._ckpt_info, obj._ckpt_info.modified)
        for root in roots
        for obj in collect_objects(root)
    ]


def _restore_flags(snapshot) -> None:
    for info, modified in snapshot:
        if modified:
            info.set_modified()
        else:
            info.reset_modified()


def _checking_bytes(roots) -> bytes:
    """One ``checking``-driver checkpoint of ``roots`` (flags preserved)."""
    saved = _snapshot_flags(roots)
    out = DataOutputStream()
    driver = CheckingCheckpoint(out)
    for root in roots:
        driver.checkpoint(root)
    _restore_flags(saved)
    return out.getvalue()


def _inferred_bytes(report: EffectReport, name: str, roots) -> bytes:
    """One checkpoint through the unguarded inferred specialization."""
    compiled = SpecCompiler().compile(SpecClass.from_report(report, name=name))
    saved = _snapshot_flags(roots)
    out = DataOutputStream()
    compiled.checkpoint_all(roots, out)
    _restore_flags(saved)
    return out.getvalue()


def _minimize(
    shape: Shape,
    fns: Sequence[Callable],
    path: Path,
    root_factory: Callable,
    roots: Optional[Sequence[str]],
) -> str:
    """Find the single phase function whose run alone dirties ``path``."""
    for fn in fns:
        probe = root_factory()
        reset_flags(probe)
        fn(probe)
        if path in _dirty_paths(shape, probe):
            report = analyze_effects(shape, [fn], roots=roots)
            missing = "not in its inferred may-write set" if (
                path not in report.may_write
            ) else "in its inferred may-write set (merge bug)"
            return (
                f"minimized: {fn.__name__} alone dirties {path!r} "
                f"({missing})"
            )
    return "no single phase function reproduces the violation (interaction)"


def _dirty_paths(shape: Shape, root) -> List[Path]:
    """Shape positions whose live object is currently flagged modified."""
    dirty: List[Path] = []

    def visit(obj, node) -> None:
        if obj._ckpt_info.modified:
            dirty.append(node.path)
        for edge in node.edges:
            child = ModificationPattern._follow(obj, edge)
            if child is not None:
                visit(child, edge.node)

    visit(root, shape.root)
    return dirty


# -- scenario: explicit phase functions --------------------------------------


def crosscheck_phases(
    shape: Shape,
    phases: Dict[str, Sequence[Callable]],
    root_factory: Callable,
    roots: Optional[Sequence[str]] = None,
    rounds: int = 2,
    scenario: str = "phases",
) -> CrosscheckResult:
    """Validate inferred per-phase patterns against live runs.

    For every round and phase: run the phase's functions on a fresh
    structure, assert every dirtied position is inside the inferred
    pattern, and assert the unguarded inferred specialization produces
    exactly the ``checking`` driver's bytes for the resulting state.
    """
    result = CrosscheckResult(scenario=scenario)
    reports = {
        label: analyze_effects(shape, list(fns), roots=roots)
        for label, fns in phases.items()
    }
    for label, report in sorted(reports.items()):
        result.notes.append(
            f"phase {label!r}: {len(report.may_write)}/{shape.node_count()} "
            f"position(s) dynamic, exact={report.is_exact()}"
        )
    for round_index in range(rounds):
        root = root_factory()
        reset_flags(root)
        for label, fns in sorted(phases.items()):
            report = reports[label]
            pattern = report.pattern()
            for fn in fns:
                fn(root)
            violations = pattern.validate_against(root)
            result.checks += 1
            for path in violations:
                result.counterexamples.append(
                    Counterexample(
                        scenario=scenario,
                        phase=label,
                        path=path,
                        repro=_minimize(
                            shape, fns, path, root_factory, roots
                        ),
                    )
                )
            if not violations:
                expected = _checking_bytes([root])
                actual = _inferred_bytes(
                    report, f"crosscheck_{label}", [root]
                )
                result.checks += 1
                if expected != actual:
                    result.counterexamples.append(
                        Counterexample(
                            scenario=scenario,
                            phase=label,
                            path=(),
                            repro=(
                                "inferred specialization produced "
                                f"{len(actual)} byte(s) but the checking "
                                f"driver produced {len(expected)} — the "
                                "compiled routine drops or reorders data"
                            ),
                        )
                    )
            reset_flags(root)
    return result


# -- scenario: a whole driver under a validating session ---------------------


def crosscheck_driver(
    shape: Shape,
    driver: Callable,
    root_factory: Callable,
    roots: Optional[Sequence[str]] = None,
    session_params: Sequence[str] = ("session",),
    scenario: str = "driver",
) -> CrosscheckResult:
    """Run ``driver`` under a session that validates every labeled commit.

    Before each ``commit(phase=...)`` the live dirty state is checked
    against the phase's inferred pattern; afterwards a second run with
    the inferred strategies bound must produce the same per-commit bytes
    as the first (checking-strategy) run.
    """
    from repro.runtime.session import CheckpointSession

    result = CrosscheckResult(scenario=scenario)
    report = infer_phases(
        shape, driver, roots=roots, session_params=session_params
    )
    bindable = report.bindable()
    result.notes.append(
        f"driver {report.driver_name}: {len(report.commit_sites)} commit "
        f"site(s), {len(bindable)} bindable phase(s)"
    )
    patterns = {label: phase.pattern for label, phase in bindable.items()}

    harness = result  # close over the result from the session subclass

    class _ValidatingSession(CheckpointSession):
        def commit(self, phase=None, roots=None, kind=None):
            if phase in patterns:
                use = self._resolve_roots(roots)
                harness.checks += 1
                for root in use:
                    for path in patterns[phase].validate_against(root):
                        harness.counterexamples.append(
                            Counterexample(
                                scenario=scenario,
                                phase=phase,
                                path=path,
                                repro=(
                                    "region "
                                    f"{bindable[phase].region.name!r} "
                                    "(lines "
                                    f"{bindable[phase].region.start_line}-"
                                    f"{bindable[phase].region.end_line}) "
                                    "dirties the position at run time"
                                ),
                            )
                        )
            return super().commit(phase=phase, roots=roots, kind=kind)

    first_root = root_factory()
    reset_flags(first_root)
    checking = _ValidatingSession(roots=[first_root], strategy="checking")
    driver(first_root, checking)
    result.checks += 1

    second_root = root_factory()
    reset_flags(second_root)
    inferred = CheckpointSession(roots=[second_root])
    inferred.bind_program(shape, driver, roots=roots, session_params=session_params)
    driver(second_root, inferred)

    # Same driver, same fresh structure: the per-commit byte sequences
    # must agree except for the object ids (fresh allocations), so we
    # compare sizes and kinds commit by commit.
    if len(checking.history) != len(inferred.history):
        result.counterexamples.append(
            Counterexample(
                scenario=scenario,
                phase="<all>",
                path=(),
                repro=(
                    f"checking run committed {len(checking.history)} "
                    f"epoch(s) but the inferred run {len(inferred.history)}"
                ),
            )
        )
    else:
        for a, b in zip(checking.history, inferred.history):
            result.checks += 1
            if (a.kind, a.size) != (b.kind, b.size):
                result.counterexamples.append(
                    Counterexample(
                        scenario=scenario,
                        phase=a.phase or "<base>",
                        path=(),
                        repro=(
                            f"commit sizes diverge: checking wrote "
                            f"{a.size} byte(s), inferred wrote {b.size}"
                        ),
                    )
                )
    return result


# -- scenario: the analysis engine -------------------------------------------

_ENGINE_SOURCE = """
int g;
int h;

int helper(int x) {
    g = g + x;
    return x * 2;
}

int main() {
    int i;
    i = 0;
    while (i < 10) {
        h = helper(i);
        i = i + 1;
    }
    return h;
}
"""


def _se_probe(attrs) -> None:
    attrs.set_side_effects([1], [2])


def _bta_probe(attrs) -> None:
    attrs.set_bt(1)


def _eta_probe(attrs) -> None:
    attrs.set_et(1)


#: the engine phase -> the Attributes update helper that phase calls
ENGINE_PROBES = {
    "SE": [_se_probe],
    "BTA": [_bta_probe],
    "ETA": [_eta_probe],
}


def crosscheck_engine(source: str = _ENGINE_SOURCE) -> CrosscheckResult:
    """Run the real three-phase analysis engine under inferred patterns.

    The patterns are inferred from the :class:`~repro.analysis.attributes.Attributes`
    update helpers each phase calls (``set_side_effects`` / ``set_bt`` /
    ``set_et``) — resolved interprocedurally through the checkpointable
    receiver. Every fixpoint iteration's dirty state is validated against
    the phase's pattern before the commit clears the flags.
    """
    from repro.analysis.engine import AnalysisEngine

    result = CrosscheckResult(scenario="engine")
    engine = AnalysisEngine(source, strategy="incremental")
    shape = engine.attributes_shape()
    reports = {
        label: analyze_effects(shape, fns, roots=["attrs"])
        for label, fns in ENGINE_PROBES.items()
    }
    for label, report in sorted(reports.items()):
        result.notes.append(
            f"phase {label!r}: inferred "
            f"{sorted(report.may_write, key=repr)!r}, "
            f"exact={report.is_exact()}"
        )
        if not report.is_exact():
            result.counterexamples.append(
                Counterexample(
                    scenario="engine",
                    phase=label,
                    path=(),
                    repro=(
                        "analysis lost precision on the engine's own "
                        "update helpers — they must be fully resolvable"
                    ),
                )
            )

    engine.session.base(roots=[engine.attributes])

    def validate(label: str):
        pattern = reports[label].pattern()

        def on_iteration(_iteration: int) -> None:
            result.checks += 1
            for attrs in engine.attributes.entries._items:
                for path in pattern.validate_against(attrs):
                    result.counterexamples.append(
                        Counterexample(
                            scenario="engine",
                            phase=label,
                            path=path,
                            repro=(
                                f"{label} iteration dirtied the position; "
                                "inferred from "
                                f"{ENGINE_PROBES[label][0].__name__}"
                            ),
                        )
                    )
            # the commit clears flags so the next iteration is validated
            # against its own writes only
            engine.session.commit(phase=label)

        return on_iteration

    engine.side_effects.run(validate("SE"))
    engine.bta.run(validate("BTA"))
    engine.eta.run(validate("ETA"))
    return result


# -- scenario: the synthetic populations -------------------------------------


def _synthetic_phase_source(config, eligible) -> str:
    """Source of a phase function performing the workload's writes.

    Written to a real file so ``inspect.getsource`` (and therefore the
    effect analysis) can see it — the analysis works on program text,
    exactly like it would for user code.
    """
    from repro.synthetic.structures import list_field_name

    lines = ["def mutate(root):"]
    if not eligible:
        lines.append("    pass")
    for list_index, element_index in eligible:
        access = "root." + list_field_name(list_index) + ".next" * element_index
        lines.append(f"    {access}.v0 = {access}.v0 + 1")
    return "\n".join(lines) + "\n"


def _load_phase_module(source: str, tag: str):
    directory = FsPath(tempfile.mkdtemp(prefix="repro_crosscheck_"))
    file = directory / f"workload_{tag}.py"
    file.write_text(source, encoding="utf-8")
    spec = importlib.util.spec_from_file_location(
        f"_repro_crosscheck_{tag}", file
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


#: the three pattern families of the paper's synthetic evaluation
SYNTHETIC_PRESETS: Dict[str, dict] = {
    "uniform": dict(num_structures=24, num_lists=3, list_length=3),
    "restricted-lists": dict(
        num_structures=24, num_lists=3, list_length=3, modified_lists=1
    ),
    "last-element": dict(
        num_structures=24, num_lists=3, list_length=3, last_only=True
    ),
}


def crosscheck_synthetic(
    presets: Optional[Dict[str, dict]] = None,
    sample: int = 8,
) -> List[CrosscheckResult]:
    """Cross-validate inferred patterns on the synthetic populations.

    For each preset: generate the workload's writes as a real phase
    function, infer its pattern, diff it against the hand-declared one
    (zero unsound positions required), validate the live dirty state, and
    compare the inferred specialization's bytes against the ``checking``
    driver's on ``sample`` structures. Restricted presets must show at
    least one whole skipped subtree — the paper's headline optimization.
    """
    from repro.synthetic.runner import SyntheticConfig, SyntheticWorkload

    results: List[CrosscheckResult] = []
    for name, kwargs in (presets or SYNTHETIC_PRESETS).items():
        scenario = f"synthetic:{name}"
        result = CrosscheckResult(scenario=scenario)
        workload = SyntheticWorkload(SyntheticConfig(**kwargs))
        module = _load_phase_module(
            _synthetic_phase_source(workload.config, workload.eligible),
            name.replace("-", "_"),
        )
        report = analyze_effects(
            workload.shape, [module.mutate], roots=["root"]
        )

        verdict = check_pattern(workload.pattern, report)
        result.checks += 1
        for path, site in verdict.unsound:
            result.counterexamples.append(
                Counterexample(
                    scenario=scenario,
                    phase="mutate",
                    path=path,
                    repro=(
                        "inferred may-write exceeds the declared pattern"
                        + (f" (written at {site.location()})" if site else "")
                    ),
                )
            )
        inferred_pattern = report.pattern()
        skipped = inferred_pattern.skipped_subtrees()
        result.notes.append(
            f"{len(report.may_write)}/{workload.shape.node_count()} "
            f"position(s) dynamic, {len(skipped)} skipped subtree(s), "
            f"exact={report.is_exact()}"
        )
        # last-element presets keep a dynamic position at the bottom of
        # every list, so no whole subtree collapses (their win is folded
        # record tests); only list-restricted presets must skip subtrees
        restricted = workload.config.modified_lists != workload.config.num_lists
        if restricted and not skipped:
            result.counterexamples.append(
                Counterexample(
                    scenario=scenario,
                    phase="mutate",
                    path=(),
                    repro=(
                        "a restricted preset must yield at least one "
                        "skipped subtree, but the inferred pattern "
                        "collapses nothing"
                    ),
                )
            )

        workload.snapshot.restore()
        for root in workload.structures:
            result.checks += 1
            for path in inferred_pattern.validate_against(root):
                result.counterexamples.append(
                    Counterexample(
                        scenario=scenario,
                        phase="mutate",
                        path=path,
                        repro=(
                            "the applied workload dirtied a position the "
                            "generated phase function cannot write"
                        ),
                    )
                )

        workload.snapshot.restore()
        roots = workload.structures[:sample]
        expected = _checking_bytes(roots)
        actual = _inferred_bytes(report, f"crosscheck_{name.replace('-', '_')}", roots)
        result.checks += 1
        if expected != actual:
            result.counterexamples.append(
                Counterexample(
                    scenario=scenario,
                    phase="mutate",
                    path=(),
                    repro=(
                        f"inferred specialization wrote {len(actual)} "
                        f"byte(s), the checking driver {len(expected)}"
                    ),
                )
            )
        results.append(result)
    return results


# -- entry point -------------------------------------------------------------


def run_all() -> List[CrosscheckResult]:
    """The full battery: runtime probe driver, engine, synthetic presets."""
    from repro.runtime.selfcheck import (
        PROBE_SHAPE,
        probe_driver,
        probe_prototype,
    )

    results = [
        crosscheck_driver(
            PROBE_SHAPE,
            probe_driver,
            probe_prototype,
            roots=["root"],
            scenario="runtime-probe-driver",
        ),
        crosscheck_engine(),
    ]
    results.extend(crosscheck_synthetic())
    return results


def main(argv: Optional[List[str]] = None) -> int:
    results = run_all()
    failed = 0
    for result in results:
        for line in result.describe():
            print(line)
        if not result.ok:
            failed += 1
    total_checks = sum(r.checks for r in results)
    total_counter = sum(len(r.counterexamples) for r in results)
    print(
        f"crosscheck: {len(results)} scenario(s), {total_checks} check(s), "
        f"{total_counter} counterexample(s)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
