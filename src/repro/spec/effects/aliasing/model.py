"""Module fact extraction for the escape/alias analysis.

The alias rules (:mod:`repro.spec.effects.aliasing.escape`) interpret
function bodies over an abstract heap; to do that they need, per file:

- which classes are **checkpointable** (subclass of ``Checkpointable``,
  directly or through another in-module checkpointable class, or any
  class whose body declares ``scalar``/``child``-style field
  descriptors), and each class's **field table** — name, role
  (``scalar`` / ``scalar_list`` / ``child`` / ``child_list``), and the
  declared child class when the declaration names one (``child(Leaf)``),
- the **module functions** (top-level ``def``) so in-module calls can be
  followed interprocedurally,
- **module-level containers** (``CACHE = []`` and friends) — storing a
  recorded reference into one makes it outlive the commit discipline,
- names the module declares ``global`` somewhere, and
- the ``# alias-ok`` suppression table (shared machinery from
  :mod:`repro.spec.effects.suppress`).

Extraction is purely syntactic, like the concurrency model: fixture
programs and unimportable modules analyze fine.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.spec.effects.suppress import ALIAS_OK, Suppressions

#: the descriptor factories that declare recorded fields
FIELD_FACTORIES = {"scalar", "scalar_list", "child", "child_list"}
#: constructor names / literals producing a module-level plain container
CONTAINER_CTORS = {"list", "dict", "set", "deque", "defaultdict", "OrderedDict"}


class FieldDecl:
    """One declared field of a checkpointable class."""

    __slots__ = ("name", "role", "child_cls", "lineno")

    def __init__(
        self, name: str, role: str, child_cls: Optional[str], lineno: int
    ) -> None:
        self.name = name
        #: ``scalar`` / ``scalar_list`` / ``child`` / ``child_list``
        self.role = role
        #: declared class name for ``child(Leaf)`` / ``child_list(Leaf)``
        self.child_cls = child_cls
        self.lineno = lineno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FieldDecl({self.name}, {self.role})"


class RecordedClass:
    """The alias-relevant shape of one checkpointable class."""

    def __init__(self, name: str, filename: str, lineno: int) -> None:
        self.name = name
        self.filename = filename
        self.lineno = lineno
        self.fields: Dict[str, FieldDecl] = {}
        self.bases: List[str] = []
        #: methods, for ``self``-rooted interpretation
        self.methods: Dict[str, ast.FunctionDef] = {}

    def child_fields(self) -> Dict[str, FieldDecl]:
        return {
            name: decl
            for name, decl in self.fields.items()
            if decl.role in ("child", "child_list")
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordedClass({self.name}, {len(self.fields)} field(s))"


class AliasModule:
    """The extracted alias model of one file."""

    def __init__(self, filename: str, source: str) -> None:
        self.filename = filename
        self.classes: Dict[str, RecordedClass] = {}
        #: every class defined in the module (recorded or not), by name
        self.all_class_names: Set[str] = set()
        self.functions: Dict[str, ast.FunctionDef] = {}
        #: module-level plain containers: name -> lineno
        self.module_containers: Dict[str, int] = {}
        #: names assigned at module level (escape targets for ``global``)
        self.module_names: Set[str] = set()
        self.suppressions = Suppressions(filename, source, ALIAS_OK)
        #: module-level statements, interpreted as an entry body
        self.toplevel: List[ast.stmt] = []

    def field_of(self, cls_name: Optional[str], field: str) -> Optional[FieldDecl]:
        """Resolve a field on ``cls_name``, walking in-module bases."""
        seen: Set[str] = set()
        current = cls_name
        while current is not None and current not in seen:
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                return None
            decl = cls.fields.get(field)
            if decl is not None:
                return decl
            current = next(
                (base for base in cls.bases if base in self.classes), None
            )
        return None


def _base_names(node: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _field_decl(stmt: ast.stmt) -> Optional[FieldDecl]:
    """``name = child(Leaf)``-style class-body declarations."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
    elif isinstance(stmt, ast.AnnAssign):
        target = stmt.target
    else:
        return None
    if not isinstance(target, ast.Name):
        return None
    value = getattr(stmt, "value", None)
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    role = None
    if isinstance(func, ast.Name) and func.id in FIELD_FACTORIES:
        role = func.id
    elif isinstance(func, ast.Attribute) and func.attr in FIELD_FACTORIES:
        role = func.attr
    if role is None:
        return None
    child_cls = None
    if role in ("child", "child_list") and value.args:
        first = value.args[0]
        if isinstance(first, ast.Name):
            child_cls = first.id
        elif isinstance(first, ast.Attribute):
            child_cls = first.attr
    return FieldDecl(target.id, role, child_cls, stmt.lineno)


def _container_ctor(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in CONTAINER_CTORS
    return False


def extract_module(filename: str, source: str) -> Optional[AliasModule]:
    """Extract the alias model of one file (``None`` on syntax error)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return None
    module = AliasModule(filename, source)

    classes: List[ast.ClassDef] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            classes.append(stmt)
            module.all_class_names.add(stmt.name)
        elif isinstance(stmt, ast.FunctionDef):
            module.functions[stmt.name] = stmt
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    module.module_names.add(target.id)
                    if _container_ctor(getattr(stmt, "value", None)):
                        module.module_containers[target.id] = stmt.lineno
            module.toplevel.append(stmt)
        elif not isinstance(
            stmt, (ast.Import, ast.ImportFrom, ast.AsyncFunctionDef)
        ):
            module.toplevel.append(stmt)

    # checkpointable classes: seeded by a Checkpointable base or by
    # declaring descriptor fields, closed over in-module inheritance
    recorded: Dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for node in classes:
            if node.name in recorded:
                continue
            bases = _base_names(node)
            is_recorded = "Checkpointable" in bases or any(
                base in recorded for base in bases
            )
            if not is_recorded:
                is_recorded = any(
                    _field_decl(stmt) is not None for stmt in node.body
                )
            if is_recorded:
                recorded[node.name] = node
                changed = True

    for name, node in recorded.items():
        cls = RecordedClass(name, filename, node.lineno)
        cls.bases = _base_names(node)
        for stmt in node.body:
            decl = _field_decl(stmt)
            if decl is not None:
                cls.fields[decl.name] = decl
            elif isinstance(stmt, ast.FunctionDef):
                cls.methods[stmt.name] = stmt
        module.classes[name] = cls
    return module
