"""CLI for the escape/alias analysis and its dynamic crosscheck.

Static mode (the default)::

    python -m repro.spec.effects.aliasing src/repro [--format json]

analyzes the given files/directories and prints the alias findings
(writes that bypass the modified flag, subtrees attached under two
recorded roots, references escaping the recorded graph, thread
captures) plus the escape sites. Exit status 1 when any error-severity
finding is present, 2 on usage errors — the same contract as
``python -m repro.lint``.

Crosscheck mode::

    python -m repro.spec.effects.aliasing --crosscheck

validates **static ⊇ dynamic**: it generates the seeded aliasing-bug
fixture programs (``tools/make_alias_fixture.py``), runs each runnable
fixture's workload with a shadow-heap dirtiness oracle
(:class:`~repro.sanitize.oracle.ShadowHeapOracle`) attached to the
session, and also drives the real runtime — the analysis engine, the
synthetic benchmark population, and a commit/restore session cycle —
woven (``weave_runtime``) and oracle-checked.  Every unflagged
mutation the oracle observes must correspond to a rule the static pass
already reported for that fixture; a dynamic-only violation means the
analysis has a false negative and the command exits 1.  (The reverse
direction — static findings the workload never trips — is expected:
static analysis over-approximates reachable aliasing.)
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.lint.findings import (
    count_by_severity,
    exit_code,
    relativize_findings,
    sort_findings,
)
from repro.spec.effects.aliasing import analyze_paths
from repro.spec.effects.aliasing.escape import AliasReport
from repro.spec.effects.suppress import relativize_sites


def _render_human(report: AliasReport, show_escapes: bool) -> str:
    lines: List[str] = [
        finding.format_human() for finding in sort_findings(report.findings)
    ]
    counts = count_by_severity(report.findings)
    summary = ", ".join(
        f"{n} {sev}(s)" for sev, n in sorted(counts.items()) if n
    )
    lines.append(
        f"aliasing: {summary or 'no findings'} "
        f"({report.modules} module(s), "
        f"{report.cache_hits} summary cache hit(s))"
    )
    if report.suppressed:
        lines.append(f"{len(report.suppressed)} suppressed site(s):")
        for site in report.suppressed:
            lines.append(
                f"  {site.filename}:{site.lineno}: {site.what}"
                f" (alias-ok: {site.reason})"
            )
    if show_escapes and report.escapes:
        lines.append("escape sites:")
        for site in report.escapes:
            lines.append(
                f"  {site.filename}:{site.lineno}: {site.kind} ({site.what})"
            )
    return "\n".join(lines)


def _render_json(report: AliasReport) -> str:
    # one schema across every lint pass: Finding.to_dict() records plus
    # the shared severity counts (repro.lint renders the same shape)
    payload = {
        "findings": [f.to_dict() for f in sort_findings(report.findings)],
        "escapes": [site.to_dict() for site in report.escapes],
        "suppressed": [site.to_dict() for site in report.suppressed],
        "counts": count_by_severity(report.findings),
        "modules": report.modules,
        "summary_cache": {
            "hits": report.cache_hits,
            "misses": report.cache_misses,
        },
    }
    return json.dumps(payload, indent=2, default=list)


# -- crosscheck -----------------------------------------------------------


def _repo_root() -> Optional[Path]:
    """The repository root, when running from a source checkout."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "tools" / "make_alias_fixture.py").is_file():
            return parent
    return None


def _load_module(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _static_codes(report: AliasReport) -> Set[str]:
    """Rule codes the static pass reported (info excluded: not verdicts)."""
    return {
        f.code for f in report.findings if f.severity in ("error", "warning")
    }


def _run_fixture_crosscheck(out, seed: int) -> List[dict]:
    """Generate + run the seeded alias fixtures; one row per fixture.

    The comparison key is the fixture's seeded rule: the static pass
    must report that rule for the fixture file, and any unflagged
    mutation the oracle observes at runtime counts as escaped unless
    the rule was statically predicted.
    """
    from repro.sanitize import Sanitizer, unweave_all, weave_runtime

    root = _repo_root()
    if root is None:
        out("crosscheck: tools/make_alias_fixture.py not found "
            "(not a source checkout); skipping fixture workloads")
        return []
    make_alias_fixture = _load_module(
        root / "tools" / "make_alias_fixture.py", "make_alias_fixture"
    )
    rows: List[dict] = []
    with tempfile.TemporaryDirectory(prefix="alias-fixtures-") as tmp:
        manifest = make_alias_fixture.generate(tmp, seed=seed)
        for entry in manifest:
            path = Path(tmp) / entry["file"]
            static = _static_codes(analyze_paths([str(path)]))
            dynamic: Set[Tuple[str, str]] = set()
            if entry["runnable"]:
                module = _load_module(path, f"alias_fixture_{path.stem}")
                sanitizer = Sanitizer()
                try:
                    weave_runtime(sanitizer)
                    oracle = module.run()
                finally:
                    unweave_all()
                dynamic = oracle.violation_keys()
            predicted = entry["rule"] in static
            rows.append(
                {
                    "workload": f"fixture:{path.stem}",
                    "static": static,
                    "dynamic": dynamic,
                    "escaped": set() if predicted else dynamic,
                    "static_miss": None if predicted else entry["rule"],
                }
            )
    return rows


def _runtime_workloads() -> List[Tuple[str, "callable"]]:
    """Honest runtime workloads — the oracle must observe zero
    unflagged mutations on any of them."""

    def engine():
        from repro.analysis.engine import AnalysisEngine
        from repro.sanitize.oracle import ShadowHeapOracle
        from repro.spec.effects.crosscheck import _ENGINE_SOURCE

        machine = AnalysisEngine(_ENGINE_SOURCE, strategy="incremental")
        oracle = ShadowHeapOracle()
        machine.session.attach_oracle(oracle)
        machine.run()
        machine.session.close()
        return oracle

    def synthetic():
        from repro.runtime.session import CheckpointSession
        from repro.runtime.sink import BufferSink
        from repro.sanitize.oracle import ShadowHeapOracle
        from repro.synthetic.runner import (
            SyntheticConfig,
            SyntheticWorkload,
            variant_strategy,
        )
        from repro.synthetic.structures import element_at, value_field_name

        workload = SyntheticWorkload(
            SyntheticConfig(
                num_structures=8,
                num_lists=2,
                list_length=3,
                percent_modified=0.5,
                seed=11,
            )
        )
        oracle = ShadowHeapOracle()
        session = CheckpointSession(
            roots=workload.structures,
            strategy=variant_strategy(workload, "incremental"),
            sink=BufferSink(),
        )
        session.attach_oracle(oracle)
        session.base()
        field = value_field_name(0)
        for compound in workload.structures:
            element = element_at(compound, 0, 0)
            setattr(element, field, getattr(element, field) + 1)
        session.commit(phase="mutate")
        session.close()
        return oracle

    def session_cycle():
        from repro.runtime.session import CheckpointSession
        from repro.runtime.sink import BufferSink
        from repro.sanitize.oracle import ShadowHeapOracle
        from repro.synthetic.structures import (
            build_structures,
            element_at,
            value_field_name,
        )

        roots = build_structures(4, 2, 3, 1)
        oracle = ShadowHeapOracle()
        session = CheckpointSession(roots=roots, sink=BufferSink())
        session.attach_oracle(oracle)
        session.base()
        field = value_field_name(0)
        for compound in roots:
            element = element_at(compound, 0, 1)
            setattr(element, field, getattr(element, field) + 5)
        session.measure(phase="mutate")
        session.commit(phase="mutate")
        # restore rebinds the session's roots to the restored objects;
        # follow the table so later mutations hit the live graph
        table = session.restore(0)
        roots = [table.get(r._ckpt_info.object_id) for r in roots]
        for compound in roots:
            element = element_at(compound, 1, 0)
            setattr(element, field, getattr(element, field) + 7)
        session.commit(phase="after-restore")
        session.close()
        return oracle

    return [
        ("runtime:engine", engine),
        ("runtime:synthetic", synthetic),
        ("runtime:session-cycle", session_cycle),
    ]


def _run_runtime_crosscheck(out, src_static: Set[str]) -> List[dict]:
    from repro.sanitize import Sanitizer, unweave_all, weave_runtime

    rows: List[dict] = []
    for name, workload in _runtime_workloads():
        sanitizer = Sanitizer()
        try:
            weave_runtime(sanitizer)
            oracle = workload()
        finally:
            unweave_all()
        dynamic = oracle.violation_keys()
        rows.append(
            {
                "workload": name,
                "static": src_static,
                "dynamic": dynamic,
                # the runtime discipline is supposed to be airtight: any
                # unflagged mutation here is a soundness escape outright
                "escaped": dynamic,
                "static_miss": None,
            }
        )
    return rows


def _crosscheck(out, seed: int, src_paths: List[str]) -> int:
    rows = _run_fixture_crosscheck(out, seed)
    src_static = _static_codes(analyze_paths(src_paths))
    rows.extend(_run_runtime_crosscheck(out, src_static))
    failures = 0
    for row in rows:
        escaped = row["escaped"]
        if row["static_miss"]:
            verdict = "STATIC-MISS"
        elif escaped:
            verdict = "DYNAMIC-ONLY"
        else:
            verdict = "ok"
        out(
            f"{row['workload']}: static={len(row['static'])} "
            f"dynamic={len(row['dynamic'])} -> {verdict}"
        )
        if row["static_miss"]:
            failures += 1
            out(
                f"  seeded rule never reported: {row['static_miss']} "
                "(the analysis missed the planted bug)"
            )
        for cls, field in sorted(escaped):
            failures += 1
            out(
                f"  escaped the static analysis: {cls}.{field} "
                "(unflagged mutation observed, never flagged statically)"
            )
    out(
        f"crosscheck: {len(rows)} workload(s), "
        f"{failures} soundness hole(s) "
        f"({'static ⊇ dynamic holds' if not failures else 'SOUNDNESS HOLE'})"
    )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.spec.effects.aliasing",
        description="static escape/alias analysis (and its dynamic crosscheck)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human"
    )
    parser.add_argument(
        "--no-escapes",
        action="store_true",
        help="omit the escape-site list from human output",
    )
    parser.add_argument(
        "--crosscheck",
        action="store_true",
        help="run oracle-checked workloads and require static ⊇ dynamic",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fixture-generation seed for --crosscheck",
    )
    args = parser.parse_args(argv)

    paths = args.paths or ["src/repro"]
    if args.crosscheck:
        return _crosscheck(print, args.seed, paths)

    try:
        report = analyze_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    relativize_findings(report.findings)
    relativize_sites(report.suppressed)
    relativize_sites(report.escapes)
    if args.format == "json":
        print(_render_json(report))
    else:
        print(_render_human(report, show_escapes=not args.no_escapes))
    return exit_code(report.findings)


if __name__ == "__main__":
    raise SystemExit(main())
