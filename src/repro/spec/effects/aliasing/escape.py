"""Escape/alias interpretation over recorded object graphs.

The dirty-flag discipline is sound only when every write to recorded
state flows through a flag-setting site — a field descriptor
(``_FieldDescriptor.__set__``) or a :class:`~repro.core.fields.
TrackedList` mutator. This module interprets function bodies over an
abstract heap that tracks *where recorded references flow*, and reports
the ways a reference can leave the discipline:

``alias-write-bypasses-flag`` (error)
    A write reachable through an alias whose flag-set site cannot be
    proven: raw ``_f_<field>`` slot stores, mutation of the
    ``TrackedList._items`` backing list, ``__dict__``/``vars()`` stores,
    ``setattr(obj, "_f_...", v)``.
``shared-subtree-alias`` (error / warning)
    One mutable object attached under two distinct recorded parents —
    its flag clears when either root commits, silently staling the
    other's delta. Attaching a *fresh* object twice is an error;
    re-attaching a reference loaded out of the recorded graph is a
    warning (the load site may have detached it first).
``reference-escapes-recorded-graph`` (warning / info)
    A recorded reference stored where the commit discipline cannot see
    it: ``global`` stores, class-attribute stores, module-level
    container mutation (warnings); arguments handed to callees the
    analysis cannot resolve (info).
``alias-captured-by-thread`` (warning)
    A recorded reference captured by ``threading.Thread`` arguments or a
    closure handed to ``target=`` — concurrent mutation feeds the
    lockset pass. When the thread target resolves in-module, its body is
    interpreted with the captured references bound, so bypass writes
    inside the worker surface as errors.

Abstract values form a small lattice: ``RECORDED`` (a checkpointable
instance, with class and freshness), ``TRACKED`` (a flag-preserving
``TrackedList`` view), ``RAW`` (a flag-bypassing view — ``._items`` or
``__dict__``), plus references to module containers, classes, and
functions. Everything else is ``OTHER``.

Interprocedural flow reuses the :mod:`~repro.spec.effects.callgraph`
idiom: in-module calls are summarized per ``(file, qualname, body
digest, recorded-argument signature)`` in a process-wide
:class:`AliasSummaryCache`; a hit replays the call's finding deltas
instead of re-walking the body.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.spec.effects.aliasing.model import AliasModule, RecordedClass
from repro.spec.effects.concurrency.model import MUTATOR_METHODS
from repro.spec.effects.suppress import SuppressedSite

#: abstract value kinds
RECORDED = "recorded"
TRACKED = "tracked"
RAW = "raw"
MCONT = "module-container"
CLASSREF = "classref"
FUNCREF = "funcref"
NESTED = "nestedfunc"
OTHER = "other"

#: mutator names that attach their first argument into the receiver
ATTACHING_MUTATORS = {"append", "insert", "add"}

#: builtin callees a recorded reference may flow into without escaping
SAFE_BUILTINS = {
    "len", "print", "repr", "str", "id", "isinstance", "issubclass",
    "type", "sorted", "reversed", "list", "tuple", "set", "dict",
    "enumerate", "zip", "range", "sum", "min", "max", "any", "all",
    "iter", "next", "hash", "hasattr", "getattr", "setattr", "vars",
    "format", "bool", "int", "float", "abs", "round", "map", "filter",
    "frozenset", "super", "object", "Exception", "ValueError",
    "TypeError", "RuntimeError", "AssertionError", "KeyError",
    "IndexError", "AttributeError",
}

#: recursion depth bound for interprocedural interpretation
MAX_DEPTH = 8


class AV:
    """One abstract value."""

    __slots__ = ("kind", "cls", "fresh", "elem_role", "elem_cls", "ref")

    def __init__(
        self,
        kind: str,
        cls: Optional[str] = None,
        fresh: bool = False,
        elem_role: Optional[str] = None,
        elem_cls: Optional[str] = None,
        ref=None,
    ) -> None:
        self.kind = kind
        #: class name for RECORDED / the owner class for a ``__dict__`` RAW
        self.cls = cls
        #: RECORDED only: freshly constructed (never attached anywhere)
        self.fresh = fresh
        #: for list-like views: ``child_list`` / ``scalar_list``
        self.elem_role = elem_role
        self.elem_cls = elem_cls
        #: payload for CLASSREF/FUNCREF/NESTED/MCONT (name or AST node)
        self.ref = ref

    def sig(self) -> Tuple:
        """The summary-cache identity of this value as an argument."""
        return (self.kind, self.cls or "", self.fresh, self.elem_role or "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f":{self.cls}" if self.cls else ""
        return f"AV({self.kind}{extra}{'+fresh' if self.fresh else ''})"


_OTHER = AV(OTHER)


class EscapeSite:
    """Provenance of one point where a recorded reference leaves the graph."""

    __slots__ = ("kind", "what", "filename", "lineno")

    def __init__(self, kind: str, what: str, filename: str, lineno: int) -> None:
        self.kind = kind
        self.what = what
        self.filename = filename
        self.lineno = lineno

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "what": self.what,
            "file": self.filename,
            "line": self.lineno,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EscapeSite({self.kind}, {self.filename}:{self.lineno})"


class AliasReport:
    """Everything one analysis run produced."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.escapes: List[EscapeSite] = []
        self.suppressed: List[SuppressedSite] = []
        self.modules = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._seen: Set[Tuple] = set()
        self._seen_escapes: Set[Tuple] = set()
        self._seen_suppressed: Set[Tuple] = set()

    def emit(
        self,
        module: AliasModule,
        severity: str,
        code: str,
        message: str,
        lineno: int,
        scope_lineno: Optional[int] = None,
        what: Optional[str] = None,
    ) -> Optional[Finding]:
        """Report one finding, honoring ``# alias-ok`` and deduplicating."""
        if module.suppressions.check(lineno, what or message, scope_lineno):
            return None
        return self.emit_raw(severity, code, message, module.filename, lineno)

    def emit_raw(
        self, severity: str, code: str, message: str, filename: str, lineno: int
    ) -> Optional[Finding]:
        key = (code, filename, lineno, message)
        if key in self._seen:
            return None
        self._seen.add(key)
        finding = Finding(severity, code, message, filename, lineno)
        self.findings.append(finding)
        return finding

    def escape(
        self, module: AliasModule, kind: str, what: str, lineno: int
    ) -> None:
        self.escape_raw(kind, what, module.filename, lineno)

    def escape_raw(
        self, kind: str, what: str, filename: str, lineno: int
    ) -> None:
        # summaries replay from every call site; record each site once
        key = (kind, what, filename, lineno)
        if key in self._seen_escapes:
            return
        self._seen_escapes.add(key)
        self.escapes.append(EscapeSite(kind, what, filename, lineno))

    def suppressed_site(self, site: SuppressedSite) -> None:
        key = (site.filename, site.lineno, site.what)
        if key in self._seen_suppressed:
            return
        self._seen_suppressed.add(key)
        self.suppressed.append(site)


class _Summary:
    """Cached result of interpreting one callee with one arg signature."""

    __slots__ = ("return_av", "findings", "escapes", "suppressed")

    def __init__(self, return_av: AV) -> None:
        self.return_av = return_av
        #: (severity, code, message, filename, lineno) tuples
        self.findings: List[Tuple[str, str, str, str, int]] = []
        #: (kind, what, filename, lineno)
        self.escapes: List[Tuple[str, str, str, int]] = []
        #: (filename, lineno, reason, what)
        self.suppressed: List[Tuple[str, int, str, str]] = []


class AliasSummaryCache:
    """Process-wide per-callee summaries, keyed by body digest + arg sig.

    The same idiom as :class:`repro.spec.effects.callgraph.SummaryCache`:
    a hit replays the stored deltas into the current report, so repeated
    analyses (and repeated call sites) skip the body walk without losing
    findings.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple, _Summary] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[_Summary]:
        summary = self._entries.get(key)
        if summary is not None:
            self.hits += 1
        else:
            self.misses += 1
        return summary

    def store(self, key: Tuple, summary: _Summary) -> None:
        self._entries[key] = summary

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: process-wide cache (summaries are pure data; sharing is always safe)
SUMMARY_CACHE = AliasSummaryCache()


def body_digest(fdef: ast.FunctionDef) -> str:
    """A stable hash of a function body's AST (no code object needed)."""
    dump = ast.dump(fdef, include_attributes=False)
    return hashlib.sha1(dump.encode("utf-8")).hexdigest()[:16]


def _src(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"


class _Interp:
    """Interpret one function (or module) body over the abstract heap."""

    def __init__(
        self,
        module: AliasModule,
        report: AliasReport,
        cache: AliasSummaryCache,
        depth: int = 0,
        stack: FrozenSet[Tuple] = frozenset(),
        scope_lineno: Optional[int] = None,
        scope_name: str = "<module>",
    ) -> None:
        self.module = module
        self.report = report
        self.cache = cache
        self.depth = depth
        self.stack = stack
        self.scope_lineno = scope_lineno
        self.scope_name = scope_name
        self.env: Dict[str, AV] = {}
        #: var -> attach sites: (parent description, lineno)
        self.attached: Dict[str, List[Tuple[str, int]]] = {}
        self.globals_declared: Set[str] = set()
        self.nested: Dict[str, ast.FunctionDef] = {}
        self.return_avs: List[AV] = []

    # -- reporting ---------------------------------------------------------

    def _emit(
        self, severity: str, code: str, message: str, lineno: int
    ) -> None:
        self.report.emit(
            self.module, severity, code, message, lineno, self.scope_lineno
        )

    # -- statements --------------------------------------------------------

    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_av = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value_av, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value_av = self.eval(stmt.value)
                self._assign(stmt.target, value_av, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            self._aug_or_del_target(stmt.target, "augmented write")
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._aug_or_del_target(target, "delete")
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                av = self.eval(stmt.value)
                self.return_avs.append(av)
                if av.kind in (RECORDED, TRACKED, RAW):
                    self.report.escape(
                        self.module,
                        "return",
                        f"{self.scope_name} returns {av.kind} reference",
                        stmt.lineno,
                    )
            return
        if isinstance(stmt, ast.Global):
            self.globals_declared.update(stmt.names)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested[stmt.name] = stmt
            return
        if isinstance(stmt, ast.For):
            iter_av = self.eval(stmt.iter)
            self._bind_loop_target(stmt.target, self._element_of(iter_av))
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_loop_target(item.optional_vars, _OTHER)
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return
        # Pass / Break / Continue / Import / Nonlocal / ClassDef: nothing
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child)
            elif isinstance(child, ast.stmt):
                self._stmt(child)

    # -- targets -----------------------------------------------------------

    def _bind(self, name: str, av: AV) -> None:
        self.env[name] = av
        # a rebound variable is a new object: its attach history restarts
        self.attached.pop(name, None)

    def _bind_loop_target(self, target: ast.expr, av: AV) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, av)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_loop_target(element, _OTHER)

    def _assign(
        self, target: ast.expr, value_av: AV, value_expr: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            if (
                target.id in self.globals_declared
                and value_av.kind in (RECORDED, TRACKED, RAW)
            ):
                self._emit(
                    "warning",
                    "reference-escapes-recorded-graph",
                    f"recorded reference stored to global {target.id!r}: "
                    "writes through it outlive the commit discipline",
                    target.lineno,
                )
                self.report.escape(
                    self.module, "global-store", target.id, target.lineno
                )
            self._bind(target.id, value_av)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = None
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                elements = value_expr.elts
            for index, element in enumerate(target.elts):
                if elements is not None:
                    self._assign(
                        element, self.eval(elements[index]), elements[index]
                    )
                else:
                    self._bind_loop_target(element, _OTHER)
            return
        if isinstance(target, ast.Attribute):
            base_av = self.eval(target.value)
            field = target.attr
            if base_av.kind == RECORDED and field.startswith("_f_"):
                self._emit(
                    "error",
                    "alias-write-bypasses-flag",
                    f"raw slot store {_src(target)} skips the field "
                    "descriptor: the modified flag is never set",
                    target.lineno,
                )
                return
            if base_av.kind == CLASSREF and value_av.kind in (
                RECORDED, TRACKED, RAW
            ):
                self._emit(
                    "warning",
                    "reference-escapes-recorded-graph",
                    f"recorded reference stored on class "
                    f"{base_av.ref}.{field}: shared across instances, "
                    "invisible to per-root commits",
                    target.lineno,
                )
                self.report.escape(
                    self.module,
                    "class-attr-store",
                    f"{base_av.ref}.{field}",
                    target.lineno,
                )
                return
            if base_av.kind == RECORDED:
                decl = self.module.field_of(base_av.cls, field)
                if decl is not None and decl.role == "child":
                    self._attach(
                        value_expr,
                        value_av,
                        f"{_src(target.value)}.{field}",
                        target.lineno,
                    )
            return
        if isinstance(target, ast.Subscript):
            base_av = self.eval(target.value)
            self.eval(target.slice)
            if base_av.kind == RAW:
                self._emit(
                    "error",
                    "alias-write-bypasses-flag",
                    f"store into raw view {_src(target.value)}: the "
                    "backing list/dict is mutated without touching the "
                    "modified flag",
                    target.lineno,
                )
                return
            if base_av.kind == MCONT:
                if value_av.kind in (RECORDED, TRACKED, RAW):
                    self._emit(
                        "warning",
                        "reference-escapes-recorded-graph",
                        f"recorded reference stored into module-level "
                        f"container {base_av.ref!r}",
                        target.lineno,
                    )
                    self.report.escape(
                        self.module,
                        "module-container",
                        str(base_av.ref),
                        target.lineno,
                    )
                return
            if (
                base_av.kind == TRACKED
                and base_av.elem_role == "child_list"
            ):
                self._attach(
                    value_expr,
                    value_av,
                    f"{_src(target.value)}[...]",
                    target.lineno,
                )
            return

    def _aug_or_del_target(self, target: ast.expr, how: str) -> None:
        if isinstance(target, ast.Attribute):
            base_av = self.eval(target.value)
            if base_av.kind == RECORDED and target.attr.startswith("_f_"):
                self._emit(
                    "error",
                    "alias-write-bypasses-flag",
                    f"{how} of raw slot {_src(target)} skips the field "
                    "descriptor: the modified flag is never set",
                    target.lineno,
                )
            return
        if isinstance(target, ast.Subscript):
            base_av = self.eval(target.value)
            self.eval(target.slice)
            if base_av.kind == RAW:
                self._emit(
                    "error",
                    "alias-write-bypasses-flag",
                    f"{how} through raw view {_src(target.value)} mutates "
                    "the backing container without touching the modified "
                    "flag",
                    target.lineno,
                )
            return
        if isinstance(target, ast.Name):
            self.eval(target)

    # -- sharing -----------------------------------------------------------

    def _attach(
        self,
        value_expr: ast.expr,
        value_av: AV,
        parent_desc: str,
        lineno: int,
    ) -> None:
        """Record ``parent.field = value`` / ``parent.kids.append(value)``."""
        if value_av.kind != RECORDED:
            return
        if not value_av.fresh:
            self._emit(
                "warning",
                "shared-subtree-alias",
                f"reference loaded from the recorded graph re-attached "
                f"under {parent_desc}: the subtree may now be reachable "
                "from two parents, and one commit clears the other's "
                "dirty flags",
                lineno,
            )
            return
        if not isinstance(value_expr, ast.Name):
            return
        history = self.attached.setdefault(value_expr.id, [])
        previous = [p for p, _ in history if p != parent_desc]
        if previous:
            self._emit(
                "error",
                "shared-subtree-alias",
                f"{value_expr.id!r} attached under {parent_desc} is "
                f"already attached under {previous[0]}: one object "
                "reachable from two recorded parents, so either commit "
                "clears the other's dirty flags",
                lineno,
            )
        history.append((parent_desc, lineno))

    # -- expressions -------------------------------------------------------

    def _element_of(self, av: AV) -> AV:
        if av.elem_role == "child_list":
            return AV(RECORDED, cls=av.elem_cls, fresh=False)
        return _OTHER

    def eval(self, expr: ast.expr) -> AV:
        if isinstance(expr, ast.Name):
            return self._eval_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Subscript):
            base = self.eval(expr.value)
            self.eval(expr.slice)
            if isinstance(expr.slice, ast.Slice):
                # a slice of a child list is a plain copy with the same
                # recorded elements
                return AV(
                    OTHER, elem_role=base.elem_role, elem_cls=base.elem_cls
                )
            return self._element_of(base)
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            left = self.eval(expr.body)
            right = self.eval(expr.orelse)
            return left if left.kind != OTHER else right
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self.eval(element)
            return _OTHER
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self.eval(key)
            for value in expr.values:
                self.eval(value)
            return _OTHER
        if isinstance(expr, ast.Lambda):
            return _OTHER
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr)
        # everything else: walk children for side effects
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval(child)
        return _OTHER

    def _eval_comprehension(self, expr) -> AV:
        elem = _OTHER
        for generator in expr.generators:
            iter_av = self.eval(generator.iter)
            self._bind_loop_target(generator.target, self._element_of(iter_av))
            for condition in generator.ifs:
                self.eval(condition)
        result = self.eval(expr.elt)
        if result.kind == RECORDED:
            elem = AV(OTHER, elem_role="child_list", elem_cls=result.cls)
        return elem

    def _eval_name(self, name: str) -> AV:
        av = self.env.get(name)
        if av is not None:
            return av
        if name in self.nested:
            return AV(NESTED, ref=self.nested[name])
        if name in self.module.module_containers:
            return AV(MCONT, ref=name)
        if name in self.module.classes or name in self.module.all_class_names:
            return AV(CLASSREF, ref=name)
        if name in self.module.functions:
            return AV(FUNCREF, ref=name)
        return _OTHER

    def _eval_attribute(self, expr: ast.Attribute) -> AV:
        base = self.eval(expr.value)
        attr = expr.attr
        if base.kind == RECORDED:
            if attr == "__dict__":
                return AV(RAW, cls=base.cls, elem_role="dict")
            field = attr[3:] if attr.startswith("_f_") else attr
            decl = self.module.field_of(base.cls, field)
            if decl is None:
                return _OTHER
            if decl.role == "child":
                return AV(RECORDED, cls=decl.child_cls, fresh=False)
            if decl.role == "child_list":
                return AV(
                    TRACKED, elem_role="child_list", elem_cls=decl.child_cls
                )
            if decl.role == "scalar_list":
                return AV(TRACKED, elem_role="scalar_list")
            return _OTHER
        if base.kind == TRACKED and attr == "_items":
            return AV(RAW, elem_role=base.elem_role, elem_cls=base.elem_cls)
        return _OTHER

    # -- calls -------------------------------------------------------------

    def _eval_call(self, call: ast.Call) -> AV:
        func = call.func
        if isinstance(func, ast.Name):
            return self._call_name(call, func.id)
        if isinstance(func, ast.Attribute):
            return self._call_method(call, func)
        self.eval(func)
        self._eval_args(call)
        return _OTHER

    def _eval_args(self, call: ast.Call) -> List[Tuple[ast.expr, AV]]:
        pairs: List[Tuple[ast.expr, AV]] = []
        for arg in call.args:
            node = arg.value if isinstance(arg, ast.Starred) else arg
            pairs.append((node, self.eval(node)))
        for keyword in call.keywords:
            pairs.append((keyword.value, self.eval(keyword.value)))
        return pairs

    def _call_name(self, call: ast.Call, name: str) -> AV:
        if name == "Thread":
            return self._thread_call(call)
        if name in self.module.classes:
            return self._constructor(call, name)
        if name == "vars" and len(call.args) == 1:
            target = self.eval(call.args[0])
            if target.kind == RECORDED:
                return AV(RAW, cls=target.cls, elem_role="dict")
            return _OTHER
        if name == "getattr" and len(call.args) >= 2:
            attr = call.args[1]
            if isinstance(attr, ast.Constant) and isinstance(attr.value, str):
                fake = ast.Attribute(
                    value=call.args[0], attr=attr.value, ctx=ast.Load()
                )
                ast.copy_location(fake, call)
                return self._eval_attribute(fake)
            self._eval_args(call)
            return _OTHER
        if name == "setattr" and len(call.args) >= 3:
            target = self.eval(call.args[0])
            attr = call.args[1]
            self.eval(call.args[2])
            if (
                target.kind == RECORDED
                and isinstance(attr, ast.Constant)
                and isinstance(attr.value, str)
                and attr.value.startswith("_f_")
            ):
                self._emit(
                    "error",
                    "alias-write-bypasses-flag",
                    f"setattr(..., {attr.value!r}, ...) stores into the "
                    "raw slot: the modified flag is never set",
                    call.lineno,
                )
            return _OTHER
        if name in ("list", "tuple", "sorted", "reversed") and call.args:
            source = self.eval(call.args[0])
            for extra in call.args[1:]:
                self.eval(extra)
            for keyword in call.keywords:
                self.eval(keyword.value)
            # a copy: plain container, recorded elements
            return AV(
                OTHER, elem_role=source.elem_role, elem_cls=source.elem_cls
            )
        if name in self.module.functions:
            pairs = self._eval_args(call)
            return self._summarized_call(
                self.module.functions[name], name, call, pairs
            )
        if name in self.nested:
            pairs = self._eval_args(call)
            return self._summarized_call(
                self.nested[name],
                f"{self.scope_name}.{name}",
                call,
                pairs,
            )
        pairs = self._eval_args(call)
        if name not in SAFE_BUILTINS:
            recorded = [
                _src(node) for node, av in pairs if av.kind == RECORDED
            ]
            if recorded:
                self._emit(
                    "info",
                    "reference-escapes-recorded-graph",
                    f"recorded reference {recorded[0]!r} passed to "
                    f"unresolved callee {name!r}: its writes are not "
                    "analyzed",
                    call.lineno,
                )
                self.report.escape(
                    self.module, "unresolved-call", name, call.lineno
                )
        return _OTHER

    def _constructor(self, call: ast.Call, cls_name: str) -> AV:
        cls = self.module.classes[cls_name]
        for arg in call.args:
            self.eval(arg)
        for keyword in call.keywords:
            av = self.eval(keyword.value)
            if keyword.arg is None:
                continue
            decl = self.module.field_of(cls_name, keyword.arg)
            if decl is not None and decl.role == "child":
                self._attach(
                    keyword.value,
                    av,
                    f"{cls_name}(...).{keyword.arg}",
                    call.lineno,
                )
        return AV(RECORDED, cls=cls_name, fresh=True)

    def _call_method(self, call: ast.Call, func: ast.Attribute) -> AV:
        receiver = self.eval(func.value)
        method = func.attr
        if method == "Thread":
            # threading.Thread(...)
            return self._thread_call(call)
        pairs = self._eval_args(call)
        if receiver.kind == RAW and method in MUTATOR_METHODS:
            self._emit(
                "error",
                "alias-write-bypasses-flag",
                f"{method}() on raw view {_src(func.value)} mutates the "
                "backing container without touching the modified flag",
                call.lineno,
            )
            return _OTHER
        if receiver.kind == MCONT and method in MUTATOR_METHODS:
            recorded = [
                _src(node) for node, av in pairs
                if av.kind in (RECORDED, TRACKED, RAW)
            ]
            if recorded:
                self._emit(
                    "warning",
                    "reference-escapes-recorded-graph",
                    f"recorded reference {recorded[0]!r} stored into "
                    f"module-level container {receiver.ref!r}: it "
                    "outlives the commit discipline",
                    call.lineno,
                )
                self.report.escape(
                    self.module,
                    "module-container",
                    str(receiver.ref),
                    call.lineno,
                )
            return _OTHER
        if receiver.kind == TRACKED:
            if (
                method in ATTACHING_MUTATORS
                and receiver.elem_role == "child_list"
                and pairs
            ):
                node, av = pairs[-1] if method == "insert" else pairs[0]
                self._attach(
                    node, av, f"{_src(func.value)}.{method}", call.lineno
                )
            if method == "as_list":
                return AV(
                    OTHER,
                    elem_role=receiver.elem_role,
                    elem_cls=receiver.elem_cls,
                )
            return _OTHER
        if receiver.kind == RECORDED:
            if method == "children":
                return AV(OTHER, elem_role="child_list")
            cls = self.module.classes.get(receiver.cls or "")
            target = cls.methods.get(method) if cls is not None else None
            if target is not None:
                return self._summarized_call(
                    target,
                    f"{receiver.cls}.{method}",
                    call,
                    pairs,
                    self_av=receiver,
                )
        return _OTHER

    # -- threads -----------------------------------------------------------

    def _thread_call(self, call: ast.Call) -> AV:
        target_av: Optional[AV] = None
        target_node: Optional[ast.expr] = None
        arg_pairs: List[Tuple[ast.expr, AV]] = []
        for keyword in call.keywords:
            if keyword.arg == "target":
                target_node = keyword.value
                target_av = self.eval(keyword.value)
            elif keyword.arg in ("args", "kwargs"):
                value = keyword.value
                if isinstance(value, (ast.Tuple, ast.List)):
                    for element in value.elts:
                        arg_pairs.append((element, self.eval(element)))
                elif isinstance(value, ast.Dict):
                    for dict_value in value.values:
                        arg_pairs.append((dict_value, self.eval(dict_value)))
                else:
                    arg_pairs.append((value, self.eval(value)))
            else:
                self.eval(keyword.value)
        for arg in call.args:
            self.eval(arg)

        captured = [
            (node, av)
            for node, av in arg_pairs
            if av.kind in (RECORDED, TRACKED, RAW)
        ]
        closure_captures: List[str] = []
        fdef: Optional[ast.FunctionDef] = None
        qualname = "<thread-target>"
        if target_av is not None and target_av.kind == NESTED:
            fdef = target_av.ref
            qualname = f"{self.scope_name}.{fdef.name}"
            bound = {
                arg.arg for arg in fdef.args.args + fdef.args.kwonlyargs
            }
            for node in ast.walk(fdef):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id not in bound
                    and self.env.get(node.id) is not None
                    and self.env[node.id].kind in (RECORDED, TRACKED, RAW)
                ):
                    closure_captures.append(node.id)
        elif target_av is not None and target_av.kind == FUNCREF:
            fdef = self.module.functions[target_av.ref]
            qualname = str(target_av.ref)

        if captured or closure_captures:
            what = (
                _src(captured[0][0]) if captured else closure_captures[0]
            )
            self._emit(
                "warning",
                "alias-captured-by-thread",
                f"recorded reference {what!r} captured by a thread: "
                "mutation races the commit path (see the lockset pass)",
                call.lineno,
            )
            self.report.escape(
                self.module, "thread-capture", what, call.lineno
            )

        if fdef is not None and (captured or closure_captures):
            # interpret the worker with the captured references bound, so
            # bypass writes inside the thread body surface as errors
            extra_env = {
                name: self.env[name] for name in closure_captures
            }
            self._summarized_call(
                fdef, qualname, call, arg_pairs, extra_env=extra_env
            )
        return _OTHER

    # -- interprocedural ---------------------------------------------------

    def _summarized_call(
        self,
        fdef: ast.FunctionDef,
        qualname: str,
        call: ast.Call,
        pairs: List[Tuple[ast.expr, AV]],
        self_av: Optional[AV] = None,
        extra_env: Optional[Dict[str, AV]] = None,
    ) -> AV:
        params = [arg.arg for arg in fdef.args.args]
        bound: Dict[str, AV] = dict(extra_env or {})
        offset = 0
        if self_av is not None and params:
            bound[params[0]] = self_av
            offset = 1
        keyword_values = {keyword.value for keyword in call.keywords}
        positional = [
            (node, av) for node, av in pairs if node not in keyword_values
        ]
        for index, param in enumerate(params[offset:]):
            if index < len(positional):
                bound[param] = positional[index][1]
        # keyword args: match by the call's keyword names
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in params:
                for node, av in pairs:
                    if node is keyword.value:
                        bound[keyword.arg] = av
                        break

        sig = tuple(sorted((p, av.sig()) for p, av in bound.items()))
        key = (self.module.filename, qualname, body_digest(fdef), sig)
        cached = self.cache.get(key)
        self.report.cache_hits = self.cache.hits
        self.report.cache_misses = self.cache.misses
        if cached is not None:
            for severity, code, message, filename, lineno in cached.findings:
                self.report.emit_raw(severity, code, message, filename, lineno)
            for kind, what, filename, lineno in cached.escapes:
                self.report.escape_raw(kind, what, filename, lineno)
            for filename, lineno, reason, what in cached.suppressed:
                self.module.suppressions.sites.append(
                    SuppressedSite(filename, lineno, reason, what)
                )
            return cached.return_av
        if key in self.stack or self.depth >= MAX_DEPTH:
            return _OTHER

        findings_before = len(self.report.findings)
        escapes_before = len(self.report.escapes)
        suppressed_before = len(self.module.suppressions.sites)
        sub = _Interp(
            self.module,
            self.report,
            self.cache,
            depth=self.depth + 1,
            stack=self.stack | {key},
            scope_lineno=fdef.lineno,
            scope_name=qualname,
        )
        sub.env.update(bound)
        for param in params:
            sub.env.setdefault(param, _OTHER)
        sub.run(fdef.body)
        return_av = next(
            (av for av in sub.return_avs if av.kind == RECORDED),
            next(
                (av for av in sub.return_avs if av.kind != OTHER), _OTHER
            ),
        )

        summary = _Summary(return_av)
        for finding in self.report.findings[findings_before:]:
            summary.findings.append(
                (
                    finding.severity,
                    finding.code,
                    finding.message,
                    finding.filename or self.module.filename,
                    finding.lineno or 0,
                )
            )
        for site in self.report.escapes[escapes_before:]:
            summary.escapes.append(
                (site.kind, site.what, site.filename, site.lineno)
            )
        for site in self.module.suppressions.sites[suppressed_before:]:
            summary.suppressed.append(
                (site.filename, site.lineno, site.reason, site.what)
            )
        self.cache.store(key, summary)
        return return_av


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _annotation_class(
    module: AliasModule, annotation: Optional[ast.expr]
) -> Optional[str]:
    if isinstance(annotation, ast.Name) and annotation.id in module.classes:
        return annotation.id
    if (
        isinstance(annotation, ast.Attribute)
        and annotation.attr in module.classes
    ):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name = annotation.value.split(".")[-1]
        if name in module.classes:
            return name
    return None


def _entry_env(module: AliasModule, fdef: ast.FunctionDef) -> Dict[str, AV]:
    """Parameter bindings for analyzing ``fdef`` as an entry point.

    Parameters annotated with an in-module checkpointable class are bound
    recorded (non-fresh: the caller may have attached them anywhere);
    everything else is unknown.
    """
    env: Dict[str, AV] = {}
    for arg in fdef.args.args + fdef.args.kwonlyargs:
        cls = _annotation_class(module, arg.annotation)
        if cls is not None:
            env[arg.arg] = AV(RECORDED, cls=cls, fresh=False)
    return env


def interpret_module(
    module: AliasModule,
    report: AliasReport,
    cache: Optional[AliasSummaryCache] = None,
) -> None:
    """Run the alias rules over one extracted module.

    Entry points: the module's top-level statements, every module
    function (recorded parameters inferred from annotations), and every
    method of a checkpointable class (``self`` bound recorded).
    """
    cache = cache if cache is not None else SUMMARY_CACHE
    top = _Interp(module, report, cache, scope_name="<module>")
    top.run(module.toplevel)

    for name, fdef in module.functions.items():
        interp = _Interp(
            module,
            report,
            cache,
            scope_lineno=fdef.lineno,
            scope_name=name,
        )
        interp.env.update(_entry_env(module, fdef))
        interp.run(fdef.body)

    for cls_name, cls in module.classes.items():
        for method_name, fdef in cls.methods.items():
            params = [arg.arg for arg in fdef.args.args]
            if not params:
                continue
            interp = _Interp(
                module,
                report,
                cache,
                scope_lineno=fdef.lineno,
                scope_name=f"{cls_name}.{method_name}",
            )
            interp.env[params[0]] = AV(RECORDED, cls=cls_name, fresh=False)
            interp.env.update(_entry_env(module, fdef))
            interp.run(fdef.body)

    for site in module.suppressions.sites:
        report.suppressed_site(site)
    report.modules += 1
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
