"""Residual-program verifier: well-formedness + "no dropped subtree".

The specializer (:mod:`repro.spec.pe`) removes tests, record blocks and
whole traversals from the generic checkpoint algorithm. Each removal is
justified by a pattern fact, but a specializer bug could remove too much —
and an over-eager removal silently *drops data from every checkpoint*.
This module re-checks the residual IR independently, after every compile:

Well-formedness
    Every variable is bound before use and bound exactly once; no
    unspecialized construct (virtual call, un-unrolled traversal, symbolic
    class serial) survives; scalar writes use the wire kind the field
    schema declares; class guards name the class the shape declares;
    guards appear only in guarded compiles.

Record blocks
    A residual ``if info.modified:`` block must be exactly an entry:
    object id write, class-serial constant matching the shape node's
    class, the payload, and a final flag reset. The set of positions with
    such a block is the set of positions the routine can record.

No dropped subtree
    Every path of the shape is either *recorded* by the residual program
    or *justified quiescent* by the modification pattern. Equivalently:
    the recorded set equals the pattern's may-modify set exactly — one
    direction catches dropped data, the other catches useless residual
    code (a binding-time bug).

The verifier is cheap (one pass over the residual IR, which is linear in
the live part of the shape) and runs on every
:class:`~repro.spec.specclass.SpecializedCheckpointer` construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.errors import ResidualVerificationError
from repro.spec import ir
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Path, Shape


# -- abstract values of the verifier's symbolic walk ------------------------


class _Val:
    __slots__ = ()


class _Obj(_Val):
    __slots__ = ("path",)

    def __init__(self, path: Path) -> None:
        self.path = path


class _Info(_Val):
    __slots__ = ("path",)

    def __init__(self, path: Path) -> None:
        self.path = path


class _List(_Val):
    __slots__ = ("path", "field")

    def __init__(self, path: Path, field: str) -> None:
        self.path = path
        self.field = field


class _Scalar(_Val):
    """A scalar or scalar_list field value of the object at ``path``."""

    __slots__ = ("path", "spec")

    def __init__(self, path: Path, spec) -> None:
        self.path = path
        self.spec = spec


class _Flag(_Val):
    __slots__ = ("path",)

    def __init__(self, path: Path) -> None:
        self.path = path


class _Id(_Val):
    __slots__ = ("path",)

    def __init__(self, path: Path) -> None:
        self.path = path


class _Const(_Val):
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value


class _Bool(_Val):
    __slots__ = ()


_BOOL = _Bool()


class _Verifier:
    def __init__(
        self, shape: Shape, pattern: ModificationPattern, guards: bool, name: str
    ) -> None:
        self.shape = shape
        self.pattern = pattern
        self.guards = guards
        self.name = name
        self.may_modify = pattern.may_modify_paths()
        self.env: Dict[str, _Val] = {"root": _Obj(())}
        self.recorded: Set[Path] = set()

    def fail(self, message: str) -> None:
        raise ResidualVerificationError(
            f"residual program {self.name!r}: {message}"
        )

    # -- expression evaluation ---------------------------------------------

    def eval(self, expr: ir.Expr) -> _Val:
        if isinstance(expr, ir.Var):
            value = self.env.get(expr.name)
            if value is None:
                self.fail(f"variable {expr.name!r} is used before assignment")
            return value
        if isinstance(expr, ir.Const):
            return _Const(expr.value)
        if isinstance(expr, ir.FieldGet):
            return self._field(self.eval(expr.base), expr.field, expr)
        if isinstance(expr, ir.IndexGet):
            base = self.eval(expr.base)
            if not isinstance(base, _List):
                self.fail(f"indexing a non-list value in {expr!r}")
            members = self.shape.node_at(base.path).list_nodes(base.field)
            if not 0 <= expr.index < len(members):
                self.fail(
                    f"index {expr.index} out of range for list "
                    f"{base.field!r} at {base.path!r}"
                )
            return _Obj(members[expr.index].path)
        if isinstance(expr, ir.ListLen):
            base = self.eval(expr.base)
            if not isinstance(base, _List):
                self.fail(f"len() of a non-list value in {expr!r}")
            return _Const(len(self.shape.node_at(base.path).list_nodes(base.field)))
        if isinstance(expr, ir.IsNone):
            self.eval(expr.base)
            return _BOOL
        if isinstance(expr, ir.Not):
            self.eval(expr.operand)
            return _BOOL
        if isinstance(expr, ir.Eq):
            self.eval(expr.left)
            self.eval(expr.right)
            return _BOOL
        if isinstance(expr, ir.ClassIs):
            base = self.eval(expr.base)
            if not isinstance(base, _Obj):
                self.fail(f"class guard on a non-object value in {expr!r}")
            return _BOOL
        if isinstance(expr, (ir.ClassSerialOf, ir.MethodCall)):
            self.fail(f"unspecialized construct survived: {expr!r}")
        self.fail(f"unknown residual expression {expr!r}")

    def _field(self, base: _Val, field: str, expr: ir.Expr) -> _Val:
        if isinstance(base, _Obj):
            node = self.shape.node_at(base.path)
            if field == "_ckpt_info":
                return _Info(base.path)
            spec = None
            for candidate in node.cls._ckpt_schema:
                if candidate.slot == field:
                    spec = candidate
                    break
            if spec is None:
                self.fail(
                    f"read of unknown attribute {field!r} of "
                    f"{node.cls.__name__} at {base.path!r}"
                )
            if spec.role == "child":
                child = node.child_node(spec.name)
                if child is None:
                    self.fail(
                        f"residual reads absent child {spec.name!r} at "
                        f"{base.path!r} (should have been folded to None)"
                    )
                return _Obj(child.path)
            if spec.role == "child_list":
                return _List(base.path, spec.name)
            return _Scalar(base.path, spec)
        if isinstance(base, _Info):
            if field == "modified":
                return _Flag(base.path)
            if field == "object_id":
                return _Id(base.path)
            self.fail(f"read of unknown info attribute {field!r}")
        self.fail(f"attribute read {field!r} on a non-object value in {expr!r}")

    # -- statement walk ----------------------------------------------------

    def walk(self, stmt: ir.Stmt, in_record: Optional[Path] = None) -> None:
        if isinstance(stmt, ir.Seq):
            for inner in stmt.stmts:
                self.walk(inner, in_record)
            return
        if isinstance(stmt, ir.Assign):
            if stmt.name in self.env:
                self.fail(f"variable {stmt.name!r} is bound twice")
            self.env[stmt.name] = self.eval(stmt.expr)
            return
        if isinstance(stmt, ir.If):
            cond = self.eval(stmt.cond)
            if isinstance(cond, _Flag):
                if in_record is not None:
                    self.fail(
                        f"nested record block for {cond.path!r} inside the "
                        f"record block of {in_record!r}"
                    )
                self._record_block(cond.path, stmt)
                return
            self.walk(stmt.then, in_record)
            if stmt.orelse is not None:
                self.walk(stmt.orelse, in_record)
            return
        if isinstance(stmt, ir.Write):
            self._check_write(stmt)
            return
        if isinstance(stmt, ir.WriteScalarList):
            value = self.eval(stmt.expr)
            if not isinstance(value, _Scalar) or value.spec.role != "scalar_list":
                self.fail(f"WriteScalarList of a non-scalar_list value: {stmt!r}")
            if value.spec.kind != stmt.kind:
                self.fail(
                    f"scalar_list field {value.spec.name!r} at {value.path!r} "
                    f"has kind {value.spec.kind!r} but is written as {stmt.kind!r}"
                )
            return
        if isinstance(stmt, ir.RecordChildIds):
            value = self.eval(stmt.expr)
            if not isinstance(value, _List):
                self.fail(f"RecordChildIds of a non-child_list value: {stmt!r}")
            return
        if isinstance(stmt, ir.SetAttr):
            # the only legal SetAttr is the validated flag reset closing a
            # record block, which _record_block consumes before walking
            self.fail(f"stray attribute write outside a record block: {stmt!r}")
        if isinstance(stmt, ir.Guard):
            self._check_guard(stmt)
            return
        if isinstance(stmt, (ir.ExprStmt, ir.FoldChildren)):
            self.fail(f"unspecialized construct survived: {stmt!r}")
        self.fail(f"unknown residual statement {stmt!r}")

    # -- record blocks -----------------------------------------------------

    def _record_block(self, path: Path, stmt: ir.If) -> None:
        if path not in self.may_modify:
            self.fail(
                f"modified-flag test on {path!r}, which the pattern declares "
                "quiescent (the test should have been folded away)"
            )
        if path in self.recorded:
            self.fail(f"position {path!r} is recorded twice")
        if stmt.orelse is not None:
            self.fail(f"record block for {path!r} has an else branch")
        body = stmt.then.stmts if isinstance(stmt.then, ir.Seq) else [stmt.then]
        if len(body) < 3:
            self.fail(f"record block for {path!r} is truncated: {body!r}")

        node = self.shape.node_at(path)
        header_id, header_serial, footer = body[0], body[1], body[-1]
        if not (
            isinstance(header_id, ir.Write)
            and header_id.kind == "int"
            and isinstance(self.eval(header_id.expr), _Id)
            and self.eval(header_id.expr).path == path
        ):
            self.fail(f"record block for {path!r} does not start with its id write")
        if not (
            isinstance(header_serial, ir.Write)
            and header_serial.kind == "int"
            and isinstance(header_serial.expr, ir.Const)
            and header_serial.expr.value == node.cls._ckpt_serial
        ):
            self.fail(
                f"record block for {path!r} does not write the class serial "
                f"of {node.cls.__name__} ({node.cls._ckpt_serial})"
            )
        if not (
            isinstance(footer, ir.SetAttr)
            and footer.field == "modified"
            and isinstance(footer.expr, ir.Const)
            and footer.expr.value is False
        ):
            self.fail(f"record block for {path!r} does not end by resetting the flag")
        footer_base = self.eval(footer.base)
        if not (isinstance(footer_base, _Info) and footer_base.path == path):
            self.fail(f"record block for {path!r} resets the flag of another object")

        self.recorded.add(path)
        for inner in body[2:-1]:
            self.walk(inner, in_record=path)

    # -- leaf statement checks ---------------------------------------------

    def _check_write(self, stmt: ir.Write) -> None:
        value = self.eval(stmt.expr)
        if isinstance(value, _Scalar):
            if value.spec.role != "scalar":
                self.fail(
                    f"field {value.spec.name!r} at {value.path!r} has role "
                    f"{value.spec.role!r} but is written as a plain scalar"
                )
            if value.spec.kind != stmt.kind:
                self.fail(
                    f"scalar field {value.spec.name!r} at {value.path!r} has "
                    f"kind {value.spec.kind!r} but is written as {stmt.kind!r}"
                )
            return
        if isinstance(value, _Id):
            if stmt.kind != "int":
                self.fail(f"object id written with kind {stmt.kind!r}")
            return
        if isinstance(value, _Const):
            if stmt.kind != "int":
                self.fail(f"constant {value.value!r} written with kind {stmt.kind!r}")
            return
        self.fail(f"write of an unexpected value: {stmt!r}")

    def _check_guard(self, stmt: ir.Guard) -> None:
        if not self.guards:
            self.fail(f"guard emitted in an unguarded compile: {stmt!r}")
        cond = stmt.cond
        if isinstance(cond, ir.ClassIs):
            base = self.eval(cond.base)
            if not isinstance(base, _Obj):
                self.fail(f"class guard on a non-object value: {stmt!r}")
            declared = self.shape.node_at(base.path).cls
            if cond.cls is not declared:
                self.fail(
                    f"class guard at {base.path!r} checks {cond.cls.__name__} "
                    f"but the shape declares {declared.__name__}"
                )
            return
        if isinstance(cond, ir.Not):
            flag = self.eval(cond.operand)
            if not isinstance(flag, _Flag):
                self.fail(f"negated guard on a non-flag value: {stmt!r}")
            if flag.path in self.may_modify:
                self.fail(
                    f"quiescence guard at {flag.path!r}, but the pattern "
                    "declares the position modifiable"
                )
            return
        if isinstance(cond, ir.Eq):
            left, right = cond.left, cond.right
            if isinstance(left, ir.ListLen) and isinstance(right, ir.Const):
                length = self.eval(left)
                if not (isinstance(length, _Const) and length.value == right.value):
                    self.fail(
                        f"list-length guard disagrees with the shape: {stmt!r}"
                    )
                return
        self.fail(f"guard condition of unknown form: {stmt!r}")

    # -- the global property -----------------------------------------------

    def check_coverage(self) -> None:
        # paths mix str and tuple elements; repr is the stable total order
        dropped = sorted(self.may_modify - self.recorded, key=repr)
        if dropped:
            self.fail(
                "dropped subtree: positions declared modifiable are never "
                f"recorded by the residual program: {dropped!r}"
            )
        spurious = sorted(self.recorded - self.may_modify, key=repr)
        if spurious:  # pragma: no cover - caught earlier per block
            self.fail(
                f"residual program records quiescent positions: {spurious!r}"
            )


def verify_residual(
    residual: ir.Seq,
    shape: Shape,
    pattern: Optional[ModificationPattern],
    guards: bool,
    name: str = "<specialized>",
) -> List[Path]:
    """Verify a residual program against its shape and pattern.

    Raises :class:`~repro.core.errors.ResidualVerificationError` on any
    well-formedness defect or on a violation of the "no dropped subtree"
    property. Returns the list of recorded paths (preorder) on success.
    """
    pattern = pattern or ModificationPattern.all_dynamic(shape)
    verifier = _Verifier(shape, pattern, guards, name)
    verifier.walk(residual)
    verifier.check_coverage()
    order = {path: index for index, path in enumerate(shape.paths())}
    return sorted(verifier.recorded, key=lambda p: order[p])
