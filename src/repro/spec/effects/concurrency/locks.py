"""Interprocedural lockset rules over the extracted concurrency model.

This is the static half of the Eraser discipline. For every *concurrent
class* — one that declares a lock or hands a method to a thread — the
analysis propagates syntactically-held locksets through the class's
self-call graph, collects every post-construction field write with the
locks effectively held at it, and evaluates the rule family:

``unguarded-shared-write`` (error)
    A field of a concurrent class is written with **no** lock held at any
    site. In a class that guards *anything*, an entirely-bare field is
    either dead state or a race.
``inconsistent-guard`` (error)
    The field is guarded at some write sites and bare at others, or its
    guarded sites share no common lock — the guard exists but does not
    actually establish mutual exclusion.
``lock-order-inversion`` (error)
    The global lock-order graph (an edge ``A -> B`` whenever ``B`` is
    acquired while ``A`` is held) contains a cycle: two threads taking
    the locks in opposite orders can deadlock.
``lock-held-across-blocking-call`` (warning)
    ``os.fsync``, ``Queue.get/put``, ``Thread.join``, ``Event.wait`` or
    ``time.sleep`` runs while a lock is held: every other thread needing
    that lock stalls behind I/O or a wait.
``flag-mutation-outside-commit`` (warning)
    A dirty-flag mutation (``.modified`` assignment, ``set_modified()``,
    ``_f_*`` slot write) is reachable from a thread entry point. The
    paper's incremental-checkpoint correctness argument assumes the
    write-barrier flags are mutated only by the committing thread;
    flag traffic from a background thread can dirty (or clean) state
    concurrently with a commit traversal.

Construction is exempt (Eraser's *virgin* state): writes in ``__init__``
and in methods reachable only from it happen before the instance escapes.
A ``# race-ok[: reason]`` comment suppresses the sites on its line (on a
``def`` line: the whole method) — suppressions are reported with their
provenance, never silently dropped.

The analysis is deliberately write-centric: bare *reads* of a guarded
field are not reported (in CPython they are torn-free for references;
flagging them would bury the real races). The dynamic sanitizer
(:mod:`repro.sanitize`) has the same write bias, so the crosscheck's
``static ⊇ dynamic`` comparison is apples to apples.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.spec.effects.concurrency.model import (
    Access,
    ClassModel,
    ModuleModel,
    SuppressedSite,
)


class WriteRecord:
    """One effective write: the access plus interprocedurally-held locks."""

    __slots__ = ("access", "held", "root")

    def __init__(self, access: Access, held: FrozenSet[str], root: str) -> None:
        self.access = access
        #: global lock names (``Cls.attr``) effectively held at the write
        self.held = held
        #: the entry method this write was reached from
        self.root = root


class OrderEdge:
    """``held -> acquired`` with the first site that produced it."""

    __slots__ = ("held", "acquired", "filename", "lineno", "method")

    def __init__(
        self, held: str, acquired: str, filename: str, lineno: int, method: str
    ) -> None:
        self.held = held
        self.acquired = acquired
        self.filename = filename
        self.lineno = lineno
        self.method = method


class FieldGuard:
    """The proven verdict for one field of a concurrent class."""

    __slots__ = ("owner", "field", "locks", "writes", "status")

    def __init__(
        self,
        owner: str,
        field: str,
        locks: Tuple[str, ...],
        writes: int,
        status: str,
    ) -> None:
        self.owner = owner
        self.field = field
        #: the common guard set (empty unless ``status == "guarded"``)
        self.locks = locks
        self.writes = writes
        #: ``guarded`` / ``unguarded`` / ``inconsistent`` / ``construction``
        self.status = status

    @property
    def name(self) -> str:
        return f"{self.owner}.{self.field}"


class ConcurrencyReport:
    """Everything one analysis run over a file set produced."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.modules: List[ModuleModel] = []
        #: per-field verdicts for every concurrent class
        self.guards: List[FieldGuard] = []
        self.order_edges: List[OrderEdge] = []
        self.cycles: List[List[str]] = []
        self.suppressed: List[SuppressedSite] = []

    def concurrent_classes(self) -> List[ClassModel]:
        return [
            cls
            for module in self.modules
            for cls in module.classes
            if cls.concurrent
        ]

    def guard_table(self) -> Dict[str, FieldGuard]:
        """``Cls.field`` -> verdict, for reporting and the crosscheck."""
        return {guard.name: guard for guard in self.guards}

    def unguarded_fields(self) -> Set[Tuple[str, str]]:
        """``(class, field)`` pairs with an unguarded/inconsistent verdict.

        This is the key set the dynamic crosscheck compares sanitizer
        violations against: every dynamic violation must map into it.
        """
        return {
            (guard.owner, guard.field)
            for guard in self.guards
            if guard.status in ("unguarded", "inconsistent")
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConcurrencyReport({len(self.findings)} finding(s), "
            f"{len(self.guards)} field verdict(s))"
        )


# ---------------------------------------------------------------------------
# Lockset propagation
# ---------------------------------------------------------------------------


def _roots_of(cls: ClassModel, construction: Set[str]) -> List[Tuple[str, str]]:
    """(method, kind) entry points: thread entries plus every other
    externally-callable method.

    Excluded: ``__init__`` and construction-only helpers (the Eraser
    initialization exemption), and underscore-private helpers that have
    an in-class caller — those are internal by convention, so their
    locking context is their callers' held sets, which the propagation
    already supplies.  A private helper *nobody* in the class calls is
    kept as a root (it is dead or externally driven; either way its
    accesses should be judged bare).  Thread entries are always roots.
    """
    called_in_class: Set[str] = set()
    for model in cls.methods.values():
        for callee, _lineno, _held in model.calls:
            called_in_class.add(callee)
    roots: List[Tuple[str, str]] = []
    for name in sorted(cls.methods):
        if name == "__init__" or name in construction:
            continue
        if name in cls.thread_entries:
            roots.append((name, "thread"))
            continue
        if name.startswith("_") and name in called_in_class:
            continue
        roots.append((name, "caller"))
    return roots


def _globalize(cls: ClassModel, held: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(f"{cls.name}.{attr}" for attr in held)


class _ClassAnalysis:
    """Propagate held locksets through one class's self-call graph."""

    def __init__(self, cls: ClassModel) -> None:
        self.cls = cls
        self.construction = cls.construction_only()
        #: field -> write records with effective locksets
        self.writes: Dict[str, List[WriteRecord]] = {}
        self.order_edges: List[OrderEdge] = []
        self.blocking: List[Tuple] = []  # (BlockingCall, effective held)
        self._visited: Set[Tuple[str, FrozenSet[str]]] = set()

    def run(self) -> None:
        for root, _kind in _roots_of(self.cls, self.construction):
            self._visit(root, frozenset(), root)

    def thread_reachable(self) -> Set[str]:
        """Methods reachable (in-class) from any thread entry point."""
        frontier = list(self.cls.thread_entries)
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            method = self.cls.methods.get(current)
            if method is None:
                continue
            for callee, _lineno, _held in method.calls:
                if callee in self.cls.methods and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def _visit(self, name: str, held: FrozenSet[str], root: str) -> None:
        method = self.cls.methods.get(name)
        if method is None:
            return
        key = (name, held)
        if key in self._visited:
            return
        self._visited.add(key)
        for access in method.accesses:
            if access.kind != "write":
                continue
            effective = _globalize(self.cls, access.held | held)
            self.writes.setdefault(access.field, []).append(
                WriteRecord(access, effective, root)
            )
        for acquisition in method.acquisitions:
            before = _globalize(self.cls, acquisition.held_before | held)
            acquired = f"{self.cls.name}.{acquisition.lock}"
            for already in before:
                if already != acquired:
                    self.order_edges.append(
                        OrderEdge(
                            already,
                            acquired,
                            self.cls.filename,
                            acquisition.lineno,
                            acquisition.method,
                        )
                    )
        for call in method.blocking:
            effective = _globalize(self.cls, call.held | held)
            if effective:
                self.blocking.append((call, effective))
        for callee, _lineno, call_held in method.calls:
            if callee in self.cls.methods:
                self._visit(callee, held | call_held, root)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _site_list(records: List[WriteRecord], limit: int = 4) -> str:
    sites = sorted(
        {(r.access.method, r.access.lineno) for r in records},
        key=lambda pair: (pair[1], pair[0]),
    )
    shown = [f"{method}:{lineno}" for method, lineno in sites[:limit]]
    extra = len(sites) - len(shown)
    if extra > 0:
        shown.append(f"+{extra} more")
    return ", ".join(shown)


def _anchor(records: List[WriteRecord]) -> WriteRecord:
    return min(records, key=lambda r: (r.access.lineno, r.access.method))


def _evaluate_fields(
    cls: ClassModel, analysis: _ClassAnalysis, report: ConcurrencyReport
) -> None:
    lock_names = ", ".join(sorted(d.name for d in cls.locks.values()))
    spawn_names = ", ".join(sorted(cls.thread_entries))
    context = []
    if lock_names:
        context.append(f"declares lock(s) {lock_names}")
    if spawn_names:
        context.append(f"runs thread entry point(s) {spawn_names}")
    why_concurrent = " and ".join(context)

    for field in sorted(analysis.writes):
        records = analysis.writes[field]
        bare = [r for r in records if not r.held]
        guarded = [r for r in records if r.held]
        if not guarded:
            anchor = _anchor(bare)
            report.guards.append(
                FieldGuard(cls.name, field, (), len(records), "unguarded")
            )
            report.findings.append(
                Finding(
                    "error",
                    "unguarded-shared-write",
                    f"{cls.name}.{field} is written with no lock held at "
                    f"{_site_list(bare)} — the class {why_concurrent}, so "
                    "concurrent access is expected and every write must "
                    "hold a declared lock (or carry a '# race-ok: reason' "
                    "annotation)",
                    filename=cls.filename,
                    lineno=anchor.access.lineno,
                    target=cls.name,
                )
            )
            continue
        if bare:
            anchor = _anchor(bare)
            held_names = ", ".join(
                sorted(set().union(*(r.held for r in guarded)))
            )
            report.guards.append(
                FieldGuard(cls.name, field, (), len(records), "inconsistent")
            )
            report.findings.append(
                Finding(
                    "error",
                    "inconsistent-guard",
                    f"{cls.name}.{field} is guarded by {held_names} at "
                    f"{_site_list(guarded)} but written bare at "
                    f"{_site_list(bare)}: the bare site races every "
                    "guarded one",
                    filename=cls.filename,
                    lineno=anchor.access.lineno,
                    target=cls.name,
                )
            )
            continue
        common = frozenset.intersection(*(r.held for r in guarded))
        if not common:
            anchor = _anchor(guarded)
            per_site = "; ".join(
                f"{r.access.method}:{r.access.lineno} holds "
                f"{{{', '.join(sorted(r.held))}}}"
                for r in sorted(
                    guarded, key=lambda r: (r.access.lineno, r.access.method)
                )[:4]
            )
            report.guards.append(
                FieldGuard(cls.name, field, (), len(records), "inconsistent")
            )
            report.findings.append(
                Finding(
                    "error",
                    "inconsistent-guard",
                    f"no single lock guards every write of "
                    f"{cls.name}.{field}: {per_site} — mutual exclusion "
                    "needs one common lock across all write sites",
                    filename=cls.filename,
                    lineno=anchor.access.lineno,
                    target=cls.name,
                )
            )
            continue
        report.guards.append(
            FieldGuard(
                cls.name, field, tuple(sorted(common)), len(records), "guarded"
            )
        )


def _evaluate_blocking(
    cls: ClassModel, analysis: _ClassAnalysis, report: ConcurrencyReport
) -> None:
    seen: Set[Tuple[int, str]] = set()
    for call, held in analysis.blocking:
        key = (call.lineno, call.what)
        if key in seen:
            continue
        seen.add(key)
        report.findings.append(
            Finding(
                "warning",
                "lock-held-across-blocking-call",
                f"{call.what} can block while holding "
                f"{{{', '.join(sorted(held))}}} (in "
                f"{cls.name}.{call.method}): every thread contending for "
                "the lock stalls behind this call — move the blocking "
                "operation outside the critical section or annotate the "
                "line with '# race-ok: reason' if the ordering is "
                "intentional",
                filename=cls.filename,
                lineno=call.lineno,
                target=cls.name,
            )
        )


def _evaluate_flags(
    cls: ClassModel,
    analysis: _ClassAnalysis,
    report: ConcurrencyReport,
    exempt: bool,
) -> None:
    if exempt or not cls.thread_entries:
        return
    reachable = analysis.thread_reachable()
    for name in sorted(reachable):
        method = cls.methods.get(name)
        if method is None:
            continue
        for mutation in method.flag_mutations:
            report.findings.append(
                Finding(
                    "warning",
                    "flag-mutation-outside-commit",
                    f"dirty-flag mutation ({mutation.desc}) in "
                    f"{cls.name}.{name}, which runs on a background "
                    "thread (reachable from thread entry "
                    f"{', '.join(sorted(cls.thread_entries))}): the "
                    "incremental-checkpoint write-barrier discipline "
                    "assumes modification flags are mutated only by the "
                    "committing thread",
                    filename=cls.filename,
                    lineno=mutation.lineno,
                    target=cls.name,
                )
            )


def _find_cycles(edges: List[OrderEdge]) -> List[List[str]]:
    """Elementary cycles in the lock-order graph (deduplicated by rotation)."""
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
    cycles: List[List[str]] = []
    seen_keys: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for successor in sorted(graph.get(node, ())):
            if successor == start:
                cycle = path[:]
                # canonicalize: rotate so the lexicographically-least
                # lock comes first
                pivot = cycle.index(min(cycle))
                canonical = tuple(cycle[pivot:] + cycle[:pivot])
                if canonical not in seen_keys:
                    seen_keys.add(canonical)
                    cycles.append(list(canonical))
            elif successor not in visited and successor > start:
                # only explore nodes >= start: each cycle is found from
                # its least node exactly once
                visited.add(successor)
                dfs(start, successor, path + [successor], visited)
                visited.discard(successor)

    for node in sorted(graph):
        dfs(node, node, [node], {node})
    return cycles


def _evaluate_lock_order(report: ConcurrencyReport) -> None:
    report.cycles = _find_cycles(report.order_edges)
    sites: Dict[Tuple[str, str], OrderEdge] = {}
    for edge in report.order_edges:
        sites.setdefault((edge.held, edge.acquired), edge)
    for cycle in report.cycles:
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        description = "; ".join(
            f"{held} -> {acquired} at "
            f"{sites[(held, acquired)].method}:{sites[(held, acquired)].lineno}"
            for held, acquired in pairs
            if (held, acquired) in sites
        )
        first = sites.get(pairs[0])
        report.findings.append(
            Finding(
                "error",
                "lock-order-inversion",
                f"lock-order cycle {' -> '.join(cycle + [cycle[0]])}: "
                f"{description} — two threads taking these locks in "
                "opposite orders can deadlock; pick one global order",
                filename=first.filename if first else None,
                lineno=first.lineno if first else None,
                target=cycle[0].rsplit(".", 1)[0],
            )
        )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_rules(
    modules: List[ModuleModel],
    flag_exempt: Optional[callable] = None,
) -> ConcurrencyReport:
    """Evaluate every rule over the extracted models.

    ``flag_exempt`` is a ``filename -> bool`` predicate exempting files
    from the dirty-flag rule (the framework core implements the flag
    protocol itself); the lockset rules are never exempted.
    """
    report = ConcurrencyReport()
    report.modules = list(modules)
    for module in modules:
        report.suppressed.extend(module.suppressed)
        for cls in module.classes:
            if not cls.concurrent:
                continue
            analysis = _ClassAnalysis(cls)
            analysis.run()
            report.order_edges.extend(analysis.order_edges)
            _evaluate_fields(cls, analysis, report)
            _evaluate_blocking(cls, analysis, report)
            exempt = bool(flag_exempt and flag_exempt(module.filename))
            _evaluate_flags(cls, analysis, report, exempt)
    _evaluate_lock_order(report)
    return report
