"""CLI for the static lockset analysis and its dynamic crosscheck.

Static mode (the default)::

    python -m repro.spec.effects.concurrency src/repro [--format json]

analyzes the given files/directories as one program and prints the
findings plus the proven guard table (which lock protects which field).
Exit status 1 when any error-severity finding is present, 2 on usage
errors — the same contract as ``python -m repro.lint``.

Crosscheck mode::

    python -m repro.spec.effects.concurrency --crosscheck

validates **static ⊇ dynamic**: it generates the seeded racy fixture
programs (``tools/make_race_fixture.py``), runs each runnable fixture's
threaded workload under the dynamic lockset sanitizer
(:mod:`repro.sanitize`), and also drives the real runtime — store
drain, ``flush()``/``close()`` racing ``append()``, concurrent session
commits, id allocation — with the runtime classes woven.  Every
violation the sanitizer observes must correspond to a field the static
pass already flagged; a dynamic-only violation means the analysis has a
false negative and the command exits 1.  (The reverse direction —
static findings the workload never trips — is expected: static analysis
over-approximates reachable interleavings.)
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import tempfile
import threading
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.lint.findings import (
    count_by_severity,
    exit_code,
    relativize_findings,
    sort_findings,
)
from repro.spec.effects.concurrency import analyze_paths
from repro.spec.effects.concurrency.locks import ConcurrencyReport
from repro.spec.effects.suppress import relativize_sites


def _render_human(report: ConcurrencyReport, show_guards: bool) -> str:
    lines: List[str] = [
        finding.format_human() for finding in sort_findings(report.findings)
    ]
    counts = count_by_severity(report.findings)
    summary = ", ".join(
        f"{n} {sev}(s)" for sev, n in sorted(counts.items()) if n
    )
    lines.append(f"concurrency: {summary or 'no findings'}")
    if report.suppressed:
        lines.append(f"{len(report.suppressed)} suppressed site(s):")
        for site in report.suppressed:
            lines.append(
                f"  {site.filename}:{site.lineno}: {site.what}"
                f" (race-ok: {site.reason})"
            )
    if show_guards:
        lines.append("guard table:")
        for guard in report.guards:
            locks = ", ".join(sorted(guard.locks)) or "-"
            lines.append(
                f"  {guard.owner}.{guard.field}: {guard.status} [{locks}]"
            )
        if report.order_edges:
            lines.append("lock order (held -> acquired):")
            for edge in sorted(
                {(e.held, e.acquired) for e in report.order_edges}
            ):
                lines.append(f"  {edge[0]} -> {edge[1]}")
    return "\n".join(lines)


def _render_json(report: ConcurrencyReport) -> str:
    # one schema across every lint pass: Finding.to_dict() records plus
    # the shared severity counts (repro.lint renders the same shape)
    payload = {
        "findings": [f.to_dict() for f in sort_findings(report.findings)],
        "guards": [
            {
                "class": g.owner,
                "field": g.field,
                "status": g.status,
                "locks": sorted(g.locks),
            }
            for g in report.guards
        ],
        "order_edges": sorted(
            {(e.held, e.acquired) for e in report.order_edges}
        ),
        "cycles": report.cycles,
        "suppressed": [
            {
                "filename": s.filename,
                "lineno": s.lineno,
                "reason": s.reason,
                "what": s.what,
            }
            for s in report.suppressed
        ],
        "counts": count_by_severity(report.findings),
    }
    return json.dumps(payload, indent=2, default=list)


# -- crosscheck -----------------------------------------------------------


def _repo_root() -> Optional[Path]:
    """The repository root, when running from a source checkout."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "tools" / "make_race_fixture.py").is_file():
            return parent
    return None


def _load_module(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _static_keys(report: ConcurrencyReport) -> Set[Tuple[str, str]]:
    """Static verdict keys comparable with sanitizer violations."""
    keys = set(report.unguarded_fields())
    for finding in report.findings:
        if finding.code == "lock-order-inversion" and finding.target:
            keys.add((finding.target, "<lock-order>"))
    return keys


def _dynamic_keys(sanitizer) -> Set[Tuple[str, str]]:
    keys: Set[Tuple[str, str]] = set()
    for violation in sanitizer.violations:
        if violation.rule == "lock-order-inversion":
            keys.add((violation.cls, "<lock-order>"))
        else:
            keys.add((violation.cls, violation.field))
    return keys


def _run_fixture_crosscheck(out, seed: int) -> List[dict]:
    """Generate + run the racy fixtures; return one row per runnable."""
    from repro.sanitize import Sanitizer, unweave_all, weave

    root = _repo_root()
    if root is None:
        out("crosscheck: tools/make_race_fixture.py not found "
            "(not a source checkout); skipping fixture workloads")
        return []
    make_race_fixture = _load_module(
        root / "tools" / "make_race_fixture.py", "make_race_fixture"
    )
    rows: List[dict] = []
    with tempfile.TemporaryDirectory(prefix="race-fixtures-") as tmp:
        manifest = make_race_fixture.generate(tmp, seed=seed)
        for entry in manifest:
            path = Path(tmp) / entry["file"]
            static = _static_keys(analyze_paths([str(path)]))
            dynamic: Set[Tuple[str, str]] = set()
            if entry["runnable"]:
                module = _load_module(path, f"race_fixture_{path.stem}")
                sanitizer = Sanitizer()
                woven = [
                    obj
                    for obj in vars(module).values()
                    if isinstance(obj, type)
                    and obj.__module__ == module.__name__
                ]
                try:
                    for cls in woven:
                        weave(cls, sanitizer)
                    module.run()
                finally:
                    unweave_all()
                dynamic = _dynamic_keys(sanitizer)
            rows.append(
                {
                    "workload": f"fixture:{path.stem}",
                    "static": static,
                    "dynamic": dynamic,
                    "escaped": dynamic - static,
                }
            )
    return rows


def _runtime_workloads() -> List[Tuple[str, "callable"]]:
    """Named threaded workloads over the real runtime classes."""

    def store_drain_flush_close():
        from repro.core.storage import FULL, INCREMENTAL, BackgroundWriter, MemoryStore

        writer = BackgroundWriter(MemoryStore())
        barrier = threading.Barrier(4)

        def committer(payload: bytes):
            barrier.wait()
            for _ in range(50):
                try:
                    writer.append(INCREMENTAL, payload)
                except Exception:
                    return  # closed under us: the race being probed

        threads = [
            threading.Thread(target=committer, args=(bytes([i]) * 8,))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        writer.append(FULL, b"base")
        writer.flush()
        for t in threads:
            t.join()
        writer.close()

    def concurrent_session_commits():
        from repro.core.storage import INCREMENTAL, MemoryStore
        from repro.runtime.session import CheckpointSession

        session = CheckpointSession(sink=MemoryStore())
        barrier = threading.Barrier(4)

        def committer(tag: int):
            barrier.wait()
            for i in range(25):
                session.commit_bytes(INCREMENTAL, bytes([tag, i % 251]))

        threads = [
            threading.Thread(target=committer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        session.close()

    def id_allocation():
        from repro.core.ids import IdAllocator

        allocator = IdAllocator()
        barrier = threading.Barrier(4)

        def allocate():
            barrier.wait()
            for _ in range(200):
                allocator.allocate()
                allocator.last_allocated

        threads = [threading.Thread(target=allocate) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    return [
        ("runtime:store-drain-flush-close", store_drain_flush_close),
        ("runtime:concurrent-session-commits", concurrent_session_commits),
        ("runtime:id-allocation", id_allocation),
    ]


def _run_runtime_crosscheck(out, src_static: Set[Tuple[str, str]]) -> List[dict]:
    from repro.sanitize import Sanitizer, unweave_all, weave_runtime

    rows: List[dict] = []
    for name, workload in _runtime_workloads():
        sanitizer = Sanitizer()
        try:
            weave_runtime(sanitizer)
            workload()
        finally:
            unweave_all()
        dynamic = _dynamic_keys(sanitizer)
        rows.append(
            {
                "workload": name,
                "static": src_static,
                "dynamic": dynamic,
                "escaped": dynamic - src_static,
            }
        )
    return rows


def _crosscheck(out, seed: int, src_paths: List[str]) -> int:
    rows = _run_fixture_crosscheck(out, seed)
    src_report = analyze_paths(src_paths)
    src_static = _static_keys(src_report)
    rows.extend(_run_runtime_crosscheck(out, src_static))
    failures = 0
    for row in rows:
        escaped = row["escaped"]
        verdict = "ok" if not escaped else "DYNAMIC-ONLY"
        out(
            f"{row['workload']}: static={len(row['static'])} "
            f"dynamic={len(row['dynamic'])} -> {verdict}"
        )
        for cls, field in sorted(escaped):
            failures += 1
            out(
                f"  escaped the static analysis: {cls}.{field} "
                "(observed at runtime, never flagged statically)"
            )
    out(
        f"crosscheck: {len(rows)} workload(s), "
        f"{failures} dynamic-only violation(s) "
        f"({'static ⊇ dynamic holds' if not failures else 'SOUNDNESS HOLE'})"
    )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.spec.effects.concurrency",
        description="static lockset/race analysis (and its dynamic crosscheck)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human"
    )
    parser.add_argument(
        "--no-guards",
        action="store_true",
        help="omit the guard table from human output",
    )
    parser.add_argument(
        "--crosscheck",
        action="store_true",
        help="run threaded workloads under the sanitizer and require "
        "static ⊇ dynamic",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fixture-generation seed for --crosscheck",
    )
    args = parser.parse_args(argv)

    paths = args.paths or ["src/repro"]
    if args.crosscheck:
        return _crosscheck(print, args.seed, paths)

    try:
        report = analyze_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    relativize_findings(report.findings)
    relativize_sites(report.suppressed)
    if args.format == "json":
        print(_render_json(report))
    else:
        print(_render_human(report, show_guards=not args.no_guards))
    return exit_code(report.findings)


if __name__ == "__main__":
    raise SystemExit(main())
