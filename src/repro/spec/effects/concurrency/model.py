"""Concurrency model extraction: locks, accesses, and thread entries.

The lockset analysis (:mod:`repro.spec.effects.concurrency.locks`) needs,
for every class in the analyzed files, the facts Eraser's runtime
instrumentation observes dynamically — here recovered statically from the
AST:

- which attributes are **locks** (``self._lock = threading.Lock()`` and
  friends, including locks passed into ``__init__`` as a ``lock``
  parameter, the :mod:`repro.obs.metrics` idiom),
- which attributes are **fields** and where each is read or written, with
  the set of locks *syntactically held* at the access (``with self._lock:``
  blocks and explicit ``acquire()``/``release()`` pairs),
- which methods are **thread entry points** (``threading.Thread(target=
  self._drain)``),
- which in-class **calls** each method makes (so held locksets propagate
  interprocedurally),
- **blocking operations** (``os.fsync``, ``Queue.get/put``, ``Thread.join``,
  ``Event.wait``, ``time.sleep``) and where they happen,
- **dirty-flag mutations** (``.modified`` / ``set_modified`` / ``_f_*``
  writes) for the paper's write-barrier discipline.

Extraction is purely syntactic — no import is required, so even modules
that cannot be imported (or that would start threads at import time) are
analyzable, and the same extractor runs over the seeded race fixtures
``tools/make_race_fixture.py`` generates.

Suppression: an access or acquisition on a line carrying a ``# race-ok``
comment (optionally ``# race-ok: reason``) is excluded from rule
evaluation and recorded with its provenance instead; a ``# race-ok`` on a
``def`` line suppresses the whole method.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.spec.effects.suppress import (
    RACE_OK,
    SuppressedSite,
    suppression_lines,
)

#: constructor names that create a mutual-exclusion guard
LOCK_FACTORIES = {"Lock", "RLock"}
#: constructors whose objects are internally synchronized: method-call
#: mutations on attributes of these types need no external guard
THREADSAFE_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Queue",
    "SimpleQueue",
    "LifoQueue",
    "PriorityQueue",
    "local",
}
#: constructor notes marking an attribute as a plain in-process container:
#: only for these receivers does a mutator-method call count as a write
#: (``self.backing.append(...)`` on an unknown-typed collaborator is a
#: *method call*, not a container mutation)
CONTAINER_CTORS = {"list", "dict", "set", "deque", "defaultdict", "OrderedDict"}
#: method names that mutate the receiver container in place
MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "sort",
    "reverse",
}
#: attribute methods that block while waiting on another thread, by the
#: receiving attribute's constructor
BLOCKING_BY_CTOR = {
    "Thread": {"join"},
    "Event": {"wait"},
    "Condition": {"wait", "wait_for"},
    "Barrier": {"wait"},
    "Queue": {"get", "put", "join"},
    "LifoQueue": {"get", "put", "join"},
    "PriorityQueue": {"get", "put", "join"},
}
#: dotted calls that block regardless of receiver
BLOCKING_CALLS = {
    ("os", "fsync"),
    ("time", "sleep"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
}


class LockDecl:
    """One discovered lock attribute of a class."""

    __slots__ = ("owner", "attr", "lineno", "ctor")

    def __init__(self, owner: str, attr: str, lineno: int, ctor: str) -> None:
        self.owner = owner
        self.attr = attr
        self.lineno = lineno
        #: ``Lock`` / ``RLock`` / ``param`` (passed into ``__init__``)
        self.ctor = ctor

    @property
    def name(self) -> str:
        """The global identity of this lock: ``Owner.attr``."""
        return f"{self.owner}.{self.attr}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LockDecl({self.name}, {self.ctor})"


class Access:
    """One read or write of ``self.<field>`` inside a method body."""

    __slots__ = ("field", "kind", "method", "lineno", "held", "via")

    def __init__(
        self,
        field: str,
        kind: str,
        method: str,
        lineno: int,
        held: frozenset,
        via: str = "assign",
    ) -> None:
        self.field = field
        #: ``"write"`` or ``"read"``
        self.kind = kind
        self.method = method
        self.lineno = lineno
        #: lock attr names syntactically held at the access (own class)
        self.held = held
        #: how the write happens: ``assign`` / ``augassign`` / ``subscript``
        #: / ``delete`` / ``mutator:<name>``
        self.via = via

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        guard = ",".join(sorted(self.held)) or "-"
        return f"Access({self.kind} {self.field} @{self.lineno} held={guard})"


class Acquisition:
    """One lock acquisition site (``with self.L`` or ``self.L.acquire()``)."""

    __slots__ = ("lock", "method", "lineno", "held_before")

    def __init__(
        self, lock: str, method: str, lineno: int, held_before: frozenset
    ) -> None:
        self.lock = lock
        self.method = method
        self.lineno = lineno
        #: locks already held (syntactically) when this one is taken
        self.held_before = held_before


class BlockingCall:
    """A call that can block, with the locks held when it is made."""

    __slots__ = ("what", "method", "lineno", "held")

    def __init__(
        self, what: str, method: str, lineno: int, held: frozenset
    ) -> None:
        self.what = what
        self.method = method
        self.lineno = lineno
        self.held = held


class FlagMutation:
    """A dirty-flag mutation site (``.modified`` / ``set_modified`` / ``_f_*``)."""

    __slots__ = ("desc", "method", "lineno")

    def __init__(self, desc: str, method: str, lineno: int) -> None:
        self.desc = desc
        self.method = method
        self.lineno = lineno


class MethodModel:
    """Everything one method contributes to the class model."""

    __slots__ = (
        "name",
        "lineno",
        "accesses",
        "calls",
        "acquisitions",
        "blocking",
        "flag_mutations",
        "spawns",
        "suppressed",
    )

    def __init__(self, name: str, lineno: int) -> None:
        self.name = name
        self.lineno = lineno
        self.accesses: List[Access] = []
        #: (callee method name, lineno, locks held at the call)
        self.calls: List[Tuple[str, int, frozenset]] = []
        self.acquisitions: List[Acquisition] = []
        self.blocking: List[BlockingCall] = []
        self.flag_mutations: List[FlagMutation] = []
        #: self-methods handed to ``threading.Thread(target=...)``
        self.spawns: List[str] = []
        #: whole method suppressed by ``# race-ok`` on its ``def`` line
        self.suppressed = False


class ClassModel:
    """The concurrency-relevant facts of one class."""

    def __init__(self, name: str, filename: str, lineno: int) -> None:
        self.name = name
        self.filename = filename
        self.lineno = lineno
        self.locks: Dict[str, LockDecl] = {}
        self.methods: Dict[str, MethodModel] = {}
        #: attr -> constructor name seen in ``self.attr = Ctor(...)``
        self.ctors: Dict[str, str] = {}
        #: methods handed to ``threading.Thread(target=self.<m>)`` anywhere
        self.thread_entries: Set[str] = set()
        #: every attribute the class assigns somewhere
        self.fields: Set[str] = set()

    @property
    def concurrent(self) -> bool:
        """Whether the lockset rules apply to this class.

        A class participates in the concurrency discipline when it either
        declares a lock (it expects concurrent callers) or hands one of
        its methods to a thread (it *creates* concurrency).
        """
        return bool(self.locks) or bool(self.thread_entries)

    def construction_only(self) -> Set[str]:
        """Methods reachable (in-class) only from ``__init__``.

        Their accesses happen before the instance escapes to other
        threads, so they are exempt from the guard rules — Eraser's
        *virgin* state, recovered statically. A method with no in-class
        callers is **not** construction-only (it may be called from
        anywhere), and thread entries never are.
        """
        callers: Dict[str, Set[str]] = {}
        for method in self.methods.values():
            for callee, _lineno, _held in method.calls:
                callers.setdefault(callee, set()).add(method.name)
        result: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in self.methods:
                if name in result or name == "__init__":
                    continue
                if name in self.thread_entries:
                    continue
                calling = callers.get(name)
                if not calling:
                    continue
                if all(c == "__init__" or c in result for c in calling):
                    result.add(name)
                    changed = True
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClassModel({self.name}, {len(self.locks)} lock(s), "
            f"{len(self.methods)} method(s))"
        )


class ModuleModel:
    """The extracted model of one file."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.classes: List[ClassModel] = []
        #: lineno -> reason for every ``# race-ok`` comment in the file
        self.race_ok: Dict[int, str] = {}
        self.suppressed: List[SuppressedSite] = []


def race_ok_lines(source: str) -> Dict[int, str]:
    """Map line numbers carrying a ``# race-ok`` comment to their reason.

    Thin wrapper over the shared tokenize-based scanner in
    :mod:`repro.spec.effects.suppress`, kept for the pass's public API.
    """
    return suppression_lines(source, RACE_OK)


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _call_name(func: ast.expr) -> Optional[str]:
    """The trailing name of a call target (``threading.Lock`` -> ``Lock``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted(func: ast.expr) -> Optional[Tuple[str, str]]:
    """``("os", "fsync")`` for ``os.fsync`` — module-level dotted calls."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return None


def _self_attr(node: ast.expr, self_name: str) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _self_attr_root(node: ast.expr, self_name: str) -> Optional[str]:
    """The field a write-through expression ultimately mutates.

    ``self.X[i] = v``, ``del self.X[k]`` and ``self.X[i].y = v`` all
    mutate the object held in field ``X``; peel subscripts and attribute
    hops down to the ``self.X`` root.
    """
    current = node
    while True:
        if isinstance(current, ast.Subscript):
            current = current.value
            continue
        if isinstance(current, ast.Attribute):
            inner = _self_attr(current, self_name)
            if inner is not None:
                return inner
            current = current.value
            continue
        return None


class _MethodExtractor:
    """Walk one method body tracking syntactically held locks."""

    def __init__(
        self,
        cls: ClassModel,
        method: MethodModel,
        self_name: str,
        race_ok: Dict[int, str],
        module: ModuleModel,
    ) -> None:
        self.cls = cls
        self.method = method
        self.self_name = self_name
        self.race_ok = race_ok
        self.module = module

    # -- suppression -------------------------------------------------------

    def _suppressed(self, lineno: int, what: str) -> bool:
        # the annotation may trail the statement or sit on the line above
        reason = self.race_ok.get(lineno)
        if reason is None:
            reason = self.race_ok.get(lineno - 1)
        if reason is None and self.method.suppressed:
            reason = self.race_ok.get(self.method.lineno, "method-level")
        if reason is None:
            return False
        self.module.suppressed.append(
            SuppressedSite(self.module.filename, lineno, reason, what)
        )
        return True

    # -- recording ---------------------------------------------------------

    def _record_write(
        self, field: str, lineno: int, held: Set[str], via: str
    ) -> None:
        if field in self.cls.locks:
            return
        self.cls.fields.add(field)
        if self._suppressed(lineno, f"write {self.cls.name}.{field}"):
            return
        self.method.accesses.append(
            Access(field, "write", self.method.name, lineno, frozenset(held), via)
        )

    def _record_read(self, field: str, lineno: int, held: Set[str]) -> None:
        if field in self.cls.locks:
            return
        self.method.accesses.append(
            Access(field, "read", self.method.name, lineno, frozenset(held), "load")
        )

    # -- statement walking -------------------------------------------------

    def walk(self, body: List[ast.stmt]) -> None:
        self._walk_block(body, set())

    def _walk_block(self, stmts: List[ast.stmt], held: Set[str]) -> None:
        held = set(held)
        for stmt in stmts:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: Set[str]) -> None:
        if isinstance(stmt, ast.With):
            added: List[str] = []
            for item in stmt.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self._note_acquire(lock, item.context_expr.lineno, held)
                    added.append(lock)
                self._scan_expr(item.context_expr, held)
            inner = set(held) | set(added)
            self._walk_block(stmt.body, inner)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, held)
            self._scan_target(stmt.target, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_block(handler.body, held)
            self._walk_block(stmt.orelse, held)
            self._walk_block(stmt.finalbody, held)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested function runs in an unknown context: its accesses
            # are recorded with no held locks (conservative)
            self._walk_block(stmt.body, set())
            return
        if isinstance(stmt, ast.Expr):
            call = stmt.value
            if isinstance(call, ast.Call):
                lock = self._acquire_release(call)
                if lock is not None:
                    kind, name = lock
                    if kind == "acquire":
                        self._note_acquire(name, stmt.lineno, held)
                        held.add(name)
                    else:
                        held.discard(name)
                    return
            self._scan_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, held)
            for target in stmt.targets:
                self._scan_target(target, held)
            self._maybe_lock_decl(stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, held)
            self._scan_target(stmt.target, held, via="augassign")
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value, held)
            self._scan_target(stmt.target, held)
            self._maybe_lock_decl(stmt)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                root = _self_attr_root(target, self.self_name)
                if root is not None:
                    self._record_write(root, stmt.lineno, held, "delete")
            return
        if isinstance(stmt, (ast.Return, ast.Raise)):
            value = stmt.value if isinstance(stmt, ast.Return) else stmt.exc
            if value is not None:
                self._scan_expr(value, held)
            return
        if isinstance(stmt, ast.Assert):
            self._scan_expr(stmt.test, held)
            return
        # Pass/Break/Continue/Import/Global/Nonlocal: nothing to record
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child, held)

    # -- pieces ------------------------------------------------------------

    def _lock_of(self, expr: ast.expr) -> Optional[str]:
        attr = _self_attr(expr, self.self_name)
        if attr is not None and attr in self.cls.locks:
            return attr
        return None

    def _acquire_release(self, call: ast.Call):
        """``("acquire"|"release", lockattr)`` for explicit lock calls."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire",
            "release",
        ):
            attr = _self_attr(func.value, self.self_name)
            if attr is not None and attr in self.cls.locks:
                return (func.attr, attr)
        return None

    def _note_acquire(
        self, lock: str, lineno: int, held: Set[str]
    ) -> None:
        if self._suppressed(lineno, f"acquire {self.cls.name}.{lock}"):
            return
        self.method.acquisitions.append(
            Acquisition(lock, self.method.name, lineno, frozenset(held))
        )

    def _maybe_lock_decl(self, stmt) -> None:
        """Record ``self.X = Lock()``-style declarations (any method).

        Also notes constructor identities (``Event``, ``Queue``, container
        literals) so later passes can tell synchronized and plain-container
        attributes apart.
        """
        if isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            targets = stmt.targets
        else:
            return
        attr = _self_attr(targets[0], self.self_name)
        if attr is None:
            return
        value = stmt.value
        if isinstance(value, (ast.List, ast.ListComp)):
            self.cls.ctors.setdefault(attr, "list")
            return
        if isinstance(value, (ast.Dict, ast.DictComp)):
            self.cls.ctors.setdefault(attr, "dict")
            return
        if isinstance(value, (ast.Set, ast.SetComp)):
            self.cls.ctors.setdefault(attr, "set")
            return
        if isinstance(value, ast.Call):
            ctor = _call_name(value.func)
            if ctor is not None:
                self.cls.ctors.setdefault(attr, ctor)
                if ctor in LOCK_FACTORIES:
                    self.cls.locks.setdefault(
                        attr,
                        LockDecl(self.cls.name, attr, stmt.lineno, ctor),
                    )
        elif (
            isinstance(value, ast.Name)
            and self.method.name == "__init__"
            and (value.id == "lock" or value.id.endswith("_lock"))
        ):
            # the metrics idiom: a guard passed into the constructor
            self.cls.ctors.setdefault(attr, "param")
            self.cls.locks.setdefault(
                attr, LockDecl(self.cls.name, attr, stmt.lineno, "param")
            )

    def _scan_target(
        self, target: ast.expr, held: Set[str], via: str = "assign"
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(element, held, via)
            return
        # any attribute write can violate the dirty-flag discipline
        # (obj.modified = ..., self.peer._ckpt_info.modified = ...),
        # whatever the receiver chain roots at
        if isinstance(target, ast.Attribute):
            self._flag_check(target.attr, target.lineno)
        direct = _self_attr(target, self.self_name)
        if direct is not None:
            self._record_write(direct, target.lineno, held, via)
            return
        root = _self_attr_root(target, self.self_name)
        if root is not None:
            self._record_write(root, target.lineno, held, "subscript")
            return
        if isinstance(target, ast.Attribute):
            self._scan_expr(target.value, held)
        elif isinstance(target, ast.Subscript):
            self._scan_expr(target.value, held)
            self._scan_expr(target.slice, held)

    def _flag_check(self, attr: str, lineno: int) -> None:
        if attr == "modified" or attr.startswith("_f_"):
            if not self._suppressed(lineno, f"flag write .{attr}"):
                self.method.flag_mutations.append(
                    FlagMutation(f".{attr} assignment", self.method.name, lineno)
                )

    def _scan_expr(self, expr: ast.expr, held: Set[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._scan_call(node, held)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                attr = _self_attr(node, self.self_name)
                if attr is not None and attr in self.cls.fields:
                    self._record_read(attr, node.lineno, held)
            elif isinstance(node, (ast.Lambda,)):
                # lambda bodies run in an unknown context; their calls are
                # scanned (ast.walk descends) but hold nothing — handled
                # by the generic walk already
                pass

    def _scan_call(self, call: ast.Call, held: Set[str]) -> None:
        func = call.func
        # threading.Thread(target=self.m)
        name = _call_name(func)
        if name == "Thread":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    target_attr = _self_attr(keyword.value, self.self_name)
                    if target_attr is not None:
                        self.method.spawns.append(target_attr)
        dotted = _dotted(func)
        if dotted in BLOCKING_CALLS:
            if not self._suppressed(
                call.lineno, f"blocking {'.'.join(dotted)}"
            ):
                self.method.blocking.append(
                    BlockingCall(
                        ".".join(dotted),
                        self.method.name,
                        call.lineno,
                        frozenset(held),
                    )
                )
        if isinstance(func, ast.Attribute):
            receiver = _self_attr(func.value, self.self_name)
            if receiver is not None:
                ctor = self.cls.ctors.get(receiver)
                blocking_methods = BLOCKING_BY_CTOR.get(ctor or "", ())
                if func.attr in blocking_methods:
                    if not self._suppressed(
                        call.lineno, f"blocking self.{receiver}.{func.attr}"
                    ):
                        self.method.blocking.append(
                            BlockingCall(
                                f"self.{receiver}.{func.attr}()",
                                self.method.name,
                                call.lineno,
                                frozenset(held),
                            )
                        )
                if (
                    func.attr in MUTATOR_METHODS
                    and receiver not in self.cls.locks
                    and self.cls.ctors.get(receiver) in CONTAINER_CTORS
                ):
                    self._record_write(
                        receiver, call.lineno, held, f"mutator:{func.attr}"
                    )
                if func.attr == "set_modified":
                    if not self._suppressed(
                        call.lineno, "set_modified call"
                    ):
                        self.method.flag_mutations.append(
                            FlagMutation(
                                "set_modified() call",
                                self.method.name,
                                call.lineno,
                            )
                        )
            else:
                # obj.set_modified(...) through any receiver
                if func.attr == "set_modified":
                    if not self._suppressed(
                        call.lineno, "set_modified call"
                    ):
                        self.method.flag_mutations.append(
                            FlagMutation(
                                "set_modified() call",
                                self.method.name,
                                call.lineno,
                            )
                        )
            # self.method(...) in-class call edge
            callee = _self_attr(func, self.self_name)
            if callee is not None and receiver is None:
                pass
        callee = None
        if isinstance(func, ast.Attribute):
            callee = _self_attr(func, self.self_name)
        if callee is not None:
            self.method.calls.append((callee, call.lineno, frozenset(held)))


def _first_param(fn: ast.FunctionDef) -> Optional[str]:
    args = fn.args
    if args.posonlyargs:
        return args.posonlyargs[0].arg
    if args.args:
        return args.args[0].arg
    return None


def _is_static_or_class(fn: ast.FunctionDef) -> bool:
    for decorator in fn.decorator_list:
        name = _call_name(decorator) or (
            decorator.id if isinstance(decorator, ast.Name) else None
        )
        if name in ("staticmethod", "classmethod"):
            return True
    return False


def extract_module(filename: str, source: str) -> Optional[ModuleModel]:
    """Extract the concurrency model of one file (``None`` on syntax error)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return None
    module = ModuleModel(filename)
    module.race_ok = race_ok_lines(source)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls = ClassModel(node.name, filename, node.lineno)
        methods: List[Tuple[ast.FunctionDef, str]] = []
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _is_static_or_class(item):
                continue
            self_name = _first_param(item)
            if self_name is None:
                continue
            methods.append((item, self_name))
        # pass 1: lock declarations + constructor notes (any method may
        # declare; __init__ is just the usual place)
        for fdef, self_name in methods:
            model = MethodModel(fdef.name, fdef.lineno)
            model.suppressed = fdef.lineno in module.race_ok
            cls.methods[fdef.name] = model
            for stmt in ast.walk(fdef):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    extractor = _MethodExtractor(
                        cls, model, self_name, module.race_ok, module
                    )
                    extractor._maybe_lock_decl(stmt)
        # pass 2: accesses, acquisitions, calls, blocking, spawns
        for fdef, self_name in methods:
            model = cls.methods[fdef.name]
            extractor = _MethodExtractor(
                cls, model, self_name, module.race_ok, module
            )
            extractor.walk(fdef.body)
            for spawned in model.spawns:
                cls.thread_entries.add(spawned)
        module.classes.append(cls)
    return module
