"""Pattern soundness checking: declared patterns vs. inferred effects.

A :class:`~repro.spec.modpattern.ModificationPattern` is a programmer
promise. The static effect analysis (:mod:`repro.spec.effects.analysis`)
computes a sound over-approximation ``may_write`` of the positions a phase
can actually dirty, so the two can be diffed:

- ``may_write ⊄ declared`` — **unsound**: the phase may modify a position
  the pattern declares quiescent. An unguarded specialization compiled
  from this pattern silently drops the modification from every
  checkpoint; a guarded one pays a run-time error. This is the defect the
  linter reports as an *error*.
- ``declared ⊃ may_write`` — **over-wide**: positions declared dynamic
  that the analysis proves are never written. Correct but slow; the
  linter reports a *hint* (the pattern can be tightened, or rebuilt from
  the analysis).
- ``may_write ⊆ declared`` — **sound**: every possible write is covered,
  so guards verify nothing that can fail and may be dropped
  (:meth:`repro.spec.specclass.SpecClass.from_static_analysis`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.spec.effects.analysis import EffectReport, WriteSite
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Path


class PatternVerdict:
    """Outcome of diffing a declared pattern against inferred effects."""

    def __init__(
        self,
        declared: ModificationPattern,
        report: EffectReport,
        unsound: List[Tuple[Path, Optional[WriteSite]]],
        overwide: List[Path],
    ) -> None:
        self.declared = declared
        self.report = report
        #: positions declared quiescent that the phase may write, with the
        #: first evidence site for each
        self.unsound = unsound
        #: positions declared dynamic that are provably never written
        self.overwide = overwide

    @property
    def sound(self) -> bool:
        """True when the declaration covers every possible write."""
        return not self.unsound

    @property
    def exact(self) -> bool:
        """True when the declaration is sound and not over-wide."""
        return self.sound and not self.overwide

    def widened(self) -> ModificationPattern:
        """The minimal sound widening of the declared pattern."""
        return self.declared.widened(path for path, _site in self.unsound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "sound" if self.sound else f"{len(self.unsound)} unsound"
        return f"PatternVerdict({state}, {len(self.overwide)} over-wide)"


def check_pattern(
    declared: ModificationPattern, report: EffectReport
) -> PatternVerdict:
    """Diff a declared pattern against an :class:`EffectReport`."""
    if declared.shape is not report.shape:
        # Shapes are identity-compared throughout the specializer; a
        # pattern for a different shape cannot be meaningfully diffed.
        from repro.core.errors import SpecializationError

        raise SpecializationError(
            "the declared pattern and the effect report describe "
            "different shapes"
        )
    declared_paths = declared.may_modify_paths()
    inferred = report.may_write

    # Paths mix str and (field, index) elements, so they have no natural
    # total order; repr gives a deterministic one for stable output.
    unsound: List[Tuple[Path, Optional[WriteSite]]] = []
    for path in sorted(inferred - declared_paths, key=repr):
        sites = report.evidence(path)
        unsound.append((path, sites[0] if sites else None))

    overwide = sorted(declared_paths - inferred, key=repr)
    return PatternVerdict(declared, report, unsound, overwide)


def describe_verdict(verdict: PatternVerdict) -> List[str]:
    """Human-readable summary lines (used by the linter and examples)."""
    lines: List[str] = []
    for path, site in verdict.unsound:
        where = f" (written at {site.location()})" if site else ""
        lines.append(
            f"UNSOUND: path {path!r} is declared quiescent but may be "
            f"modified{where}"
        )
    for path in verdict.overwide:
        lines.append(
            f"over-wide: path {path!r} is declared dynamic but is provably "
            "never written"
        )
    if verdict.sound:
        extra = "" if verdict.report.is_exact() else (
            " (analysis used the conservative opaque-call fallback)"
        )
        lines.append(
            "pattern is sound: every possible write is covered; guards can "
            f"be dropped{extra}"
        )
    return lines


def soundness_evidence(verdict: PatternVerdict) -> Dict[Path, List[WriteSite]]:
    """Evidence sites for each unsound position (for structured output)."""
    return {path: verdict.report.evidence(path) for path, _ in verdict.unsound}
