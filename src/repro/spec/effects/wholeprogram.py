"""Whole-program phase inference: from driver source to ModificationPatterns.

The single-phase analysis asks "what may *this function* modify?". This
module asks the paper's real question: *where does the program checkpoint,
and what can it modify between consecutive checkpoints?* Given a driver
function that owns a :class:`~repro.runtime.session.CheckpointSession`, it

1. discovers the **commit sites** statically — every
   ``session.commit(...)`` / ``session.base(...)`` call in the driver's
   AST, including sessions constructed locally or entered via ``with``,
   with the constant ``phase=`` label when one is given;
2. segments the driver body into **inter-commit regions** (each region is
   the statements since the previous commit-bearing statement, up to and
   including its own commits; statements after the last commit form the
   epilogue region);
3. runs the modification-effect analysis over each region *in program
   order*, with one abstract environment flowing across all regions to a
   fixpoint — so aliases established before one commit correctly widen
   the effects of later regions;
4. emits one :class:`InferredPhase` per region: a proven
   :class:`~repro.spec.modpattern.ModificationPattern`, the provenance
   trail (which write sites forced each dynamic position, where precision
   fell back to whole-subtree widening), and a compilable unguarded
   :class:`~repro.spec.specclass.SpecClass`.

Session method calls are *not* effects on checkpointed state: committing
reads and clears modification flags but never dirties a position, so the
analyzer treats calls through a known session name as no-ops instead of
opaque escapes. Everything else keeps the conservative semantics of
:mod:`repro.spec.effects.analysis`.

The result plugs into the runtime
(:meth:`~repro.runtime.session.CheckpointSession.bind_program` binds each
labeled phase to an ``inferred``-tier strategy) and into the linter
(``LINT_PROGRAMS`` declarations are checked with the rules
``escape-to-unknown`` and ``commit-outside-phase``).
"""

from __future__ import annotations

import ast
import types
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import EffectAnalysisError
from repro.spec.effects.analysis import (
    EMPTY,
    Abs,
    EffectAnalyzer,
    EffectReport,
    _Frame,
    _label_of,
)
from repro.spec.effects.callgraph import CallGraph, SummaryCache
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape

#: CheckpointSession methods — reading/clearing flags, never dirtying state
_SESSION_METHODS = frozenset(
    {
        "base", "commit", "measure", "commit_bytes", "bind", "bind_inferred",
        "bind_program", "bound", "unbind", "strategy_for", "roots", "compact",
        "recover", "flush", "close",
    }
)

#: default driver parameter names recognised as the session
DEFAULT_SESSION_PARAMS = ("session",)


class CommitSite:
    """One statically discovered ``session.commit()``/``session.base()``."""

    __slots__ = ("method", "phase", "filename", "lineno", "receiver")

    def __init__(
        self,
        method: str,
        phase: Optional[str],
        filename: str,
        lineno: int,
        receiver: str,
    ) -> None:
        #: ``"commit"`` or ``"base"``
        self.method = method
        #: the constant ``phase=`` label, when one was given
        self.phase = phase
        self.filename = filename
        self.lineno = lineno
        #: the session variable the call went through
        self.receiver = receiver

    @property
    def labeled(self) -> bool:
        return self.phase is not None

    def location(self) -> str:
        return f"{self.filename}:{self.lineno}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" phase={self.phase!r}" if self.phase is not None else ""
        return f"CommitSite({self.receiver}.{self.method}(){label} @ {self.location()})"


class PhaseRegion:
    """A run of driver statements ending at (and including) its commits."""

    __slots__ = ("name", "kind", "stmts", "sites", "start_line", "end_line")

    def __init__(
        self,
        name: str,
        kind: str,
        stmts: List[ast.stmt],
        sites: List[CommitSite],
    ) -> None:
        self.name = name
        #: ``"interval"`` (ends at labeled commits), ``"unlabeled"``
        #: (ends at a commit without a phase label), ``"base"`` (only
        #: base() sites), or ``"epilogue"`` (after the last commit)
        self.kind = kind
        self.stmts = stmts
        self.sites = sites
        self.start_line = min((s.lineno for s in stmts), default=0)
        self.end_line = max((getattr(s, "end_lineno", s.lineno) for s in stmts),
                            default=0)

    def labels(self) -> List[str]:
        seen: List[str] = []
        for site in self.sites:
            if site.method == "commit" and site.phase is not None:
                if site.phase not in seen:
                    seen.append(site.phase)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseRegion({self.name!r}, {self.kind}, "
            f"lines {self.start_line}-{self.end_line})"
        )


class InferredPhase:
    """One inter-commit region with its proven modification pattern."""

    def __init__(
        self,
        region: PhaseRegion,
        report: EffectReport,
        shape: Shape,
    ) -> None:
        self.region = region
        self.report = report
        self.shape = shape
        self.pattern: ModificationPattern = report.pattern()

    @property
    def name(self) -> str:
        return self.region.name

    @property
    def kind(self) -> str:
        return self.region.kind

    @property
    def exact(self) -> bool:
        """True when no opaque call widened this region's pattern."""
        return self.report.is_exact()

    def spec(self, name: Optional[str] = None):
        """A compilable unguarded declaration for this phase's pattern."""
        from repro.spec.specclass import SpecClass

        return SpecClass.from_report(
            self.report, name=name or _spec_name(self.name)
        )

    def provenance(self) -> List[str]:
        """The trail: what forced each dynamic position, what lost precision."""
        lines: List[str] = []
        for path in sorted(self.report.may_write, key=repr):
            sites = self.report.evidence(path)
            first = sites[0]
            extra = f" (+{len(sites) - 1} more site(s))" if len(sites) > 1 else ""
            lines.append(
                f"{path!r} forced by {first.reason} at {first.location()}{extra}"
            )
        for site in self.report.fallbacks:
            lines.append(
                f"precision lost at {site.location()}: {site.reason} "
                "(whole escaping subtree widened)"
            )
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InferredPhase({self.name!r}, "
            f"{len(self.report.may_write)}/{self.shape.node_count()} dynamic, "
            f"exact={self.exact})"
        )


class WholeProgramReport:
    """Everything phase inference learned about one driver."""

    def __init__(
        self,
        driver_name: str,
        shape: Shape,
        phases: List[InferredPhase],
        commit_sites: List[CommitSite],
        callgraph: CallGraph,
        summaries: SummaryCache,
    ) -> None:
        self.driver_name = driver_name
        self.shape = shape
        #: one entry per region, in program order
        self.phases = phases
        #: every discovered commit/base site, in program order
        self.commit_sites = commit_sites
        self.callgraph = callgraph
        self.summaries = summaries

    def phase(self, name: str) -> InferredPhase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise EffectAnalysisError(
            f"driver {self.driver_name!r} has no inferred phase {name!r}; "
            f"inferred: {', '.join(p.name for p in self.phases)}"
        )

    def bindable(self) -> Dict[str, InferredPhase]:
        """Labeled phases a session can bind strategies for, by label.

        A label committed from several regions (e.g. the same
        ``commit(phase="hot")`` in two places) gets one merged phase whose
        pattern covers every contributing region — a per-phase strategy
        must be sound for every commit carrying its label.
        """
        grouped: Dict[str, List[InferredPhase]] = {}
        for phase in self.phases:
            if phase.kind != "interval":
                continue
            for label in phase.region.labels():
                grouped.setdefault(label, []).append(phase)
        out: Dict[str, InferredPhase] = {}
        for label, phases in grouped.items():
            if len(phases) == 1 and phases[0].name == label:
                out[label] = phases[0]
            else:
                out[label] = _merge_phases(self.shape, label, phases)
        return out

    def unlabeled_commits(self) -> List[CommitSite]:
        return [
            s for s in self.commit_sites
            if s.method == "commit" and not s.labeled
        ]

    def describe(self) -> List[str]:
        lines = [
            f"driver {self.driver_name}: {len(self.commit_sites)} commit "
            f"site(s), {len(self.phases)} region(s)"
        ]
        for phase in self.phases:
            lines.append(
                f"  [{phase.kind}] {phase.name}: "
                f"{len(phase.report.may_write)}/{self.shape.node_count()} "
                f"position(s) dynamic, exact={phase.exact}"
            )
            for entry in phase.provenance():
                lines.append(f"    {entry}")
        unresolved = self.callgraph.unresolved()
        if unresolved:
            lines.append(f"  {len(unresolved)} unresolved call edge(s):")
            for edge in unresolved:
                lines.append(
                    f"    {edge.caller} -> {edge.callee} at {edge.location()}"
                )
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WholeProgramReport({self.driver_name!r}, "
            f"{len(self.phases)} phase(s))"
        )


def _spec_name(label: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in label)
    return f"inferred_{cleaned or 'phase'}"


def _merge_phases(
    shape: Shape, label: str, phases: List["InferredPhase"]
) -> "InferredPhase":
    """One phase covering every region that commits under ``label``."""
    merged = EffectReport(shape, [label])
    stmts: List[ast.stmt] = []
    sites: List[CommitSite] = []
    for phase in phases:
        stmts.extend(phase.region.stmts)
        sites.extend(phase.region.sites)
        for path, path_sites in phase.report.sites.items():
            for site in path_sites:
                merged.add(path, site)
        for site in phase.report.fallbacks:
            if not any(
                f.filename == site.filename and f.lineno == site.lineno
                for f in merged.fallbacks
            ):
                merged.fallbacks.append(site)
        for site in phase.report.cautions:
            if not any(
                c.filename == site.filename and c.lineno == site.lineno
                and c.reason == site.reason
                for c in merged.cautions
            ):
                merged.cautions.append(site)
    region = PhaseRegion(label, "interval", stmts, sites)
    return InferredPhase(region, merged, shape)


# ---------------------------------------------------------------------------
# Commit-site discovery
# ---------------------------------------------------------------------------


def _is_session_expr(expr: ast.expr, names: set) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "CheckpointSession":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "CheckpointSession":
            return True
    return False


def _collect_session_names(fdef: ast.FunctionDef, initial: Iterable[str]) -> set:
    """Session aliases: parameters, local constructions, ``with`` targets."""
    names = set(initial)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fdef):
            if isinstance(node, ast.Assign):
                if _is_session_expr(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id not in names:
                            names.add(target.id)
                            changed = True
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        _is_session_expr(item.context_expr, names)
                        and isinstance(item.optional_vars, ast.Name)
                        and item.optional_vars.id not in names
                    ):
                        names.add(item.optional_vars.id)
                        changed = True
    return names


def _commit_sites_in(
    stmt: ast.stmt, session_names: set, filename: str
) -> List[CommitSite]:
    sites: List[CommitSite] = []
    for node in ast.walk(stmt):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        receiver = node.func.value
        if not (isinstance(receiver, ast.Name) and receiver.id in session_names):
            continue
        method = node.func.attr
        if method not in ("commit", "base"):
            continue
        phase: Optional[str] = None
        if method == "commit":
            if (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                phase = node.args[0].value
            for kw in node.keywords:
                if (
                    kw.arg == "phase"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    phase = kw.value.value
        sites.append(CommitSite(method, phase, filename, node.lineno, receiver.id))
    sites.sort(key=lambda s: s.lineno)
    return sites


def _segment_regions(
    body: List[ast.stmt], session_names: set, filename: str
) -> List[PhaseRegion]:
    regions: List[PhaseRegion] = []
    pending: List[ast.stmt] = []

    def region_for(stmts: List[ast.stmt], sites: List[CommitSite]) -> PhaseRegion:
        labels: List[str] = []
        for site in sites:
            if site.method == "commit" and site.phase is not None:
                if site.phase not in labels:
                    labels.append(site.phase)
        if labels:
            return PhaseRegion("+".join(labels), "interval", stmts, sites)
        if any(s.method == "commit" for s in sites):
            line = min(s.lineno for s in sites if s.method == "commit")
            return PhaseRegion(f"interval@{line}", "unlabeled", stmts, sites)
        line = min(s.lineno for s in sites)
        return PhaseRegion(f"base@{line}", "base", stmts, sites)

    for stmt in body:
        sites = _commit_sites_in(stmt, session_names, filename)
        pending.append(stmt)
        if sites:
            regions.append(region_for(pending, sites))
            pending = []
    if pending:
        regions.append(PhaseRegion("epilogue", "epilogue", pending, []))
    return regions


# ---------------------------------------------------------------------------
# The region analyzer
# ---------------------------------------------------------------------------


class _ProgramAnalyzer(EffectAnalyzer):
    """Effect analysis that understands session calls are not escapes."""

    def __init__(
        self,
        shape: Shape,
        roots: Optional[Iterable[str]] = None,
        summaries: Optional[SummaryCache] = None,
        callgraph: Optional[CallGraph] = None,
        session_names: Iterable[str] = (),
    ) -> None:
        super().__init__(shape, roots, summaries=summaries, callgraph=callgraph)
        self.session_names = set(session_names)

    def _method_call(self, func, arg_abs, kw_abs, node, frame):
        receiver = func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in self.session_names
            and func.attr in _SESSION_METHODS
        ):
            # Committing reads and clears flags; it never dirties a
            # position — aliased arguments (e.g. base(roots=[root]))
            # do not escape.
            return EMPTY
        return super()._method_call(func, arg_abs, kw_abs, node, frame)

    def _constructor_call(self, target, arg_abs, kw_abs, node, frame):
        try:
            from repro.runtime.session import CheckpointSession
        except ImportError:  # pragma: no cover - layering guard
            CheckpointSession = None
        if (
            CheckpointSession is not None
            and isinstance(target, type)
            and issubclass(target, CheckpointSession)
        ):
            # The session only ever *reads* the structures it is given.
            return EMPTY
        return super()._constructor_call(target, arg_abs, kw_abs, node, frame)


def _bind_driver(
    fn: Callable,
    fdef: ast.FunctionDef,
    shape: Shape,
    roots: Optional[Iterable[str]],
    session_names: set,
) -> Dict[str, Abs]:
    """Bind root parameters of the driver, skipping session parameters."""
    root_abs = Abs(objs=frozenset({()}))
    env: Dict[str, Abs] = {}
    params = [a.arg for a in fdef.args.args if a.arg not in session_names]
    annotations = getattr(fn, "__annotations__", {})
    root_cls = shape.root.cls
    declared_roots = frozenset(roots or ())
    bound = False
    for name in params:
        if name in declared_roots:
            env[name] = root_abs
            bound = True
            continue
        annotation = annotations.get(name)
        matches = annotation is root_cls or (
            isinstance(annotation, str) and annotation == root_cls.__name__
        )
        if matches:
            env[name] = root_abs
            bound = True
    if not bound:
        if "root" in params:
            env["root"] = root_abs
        elif len(params) == 1:
            env[params[0]] = root_abs
        else:
            raise EffectAnalysisError(
                f"cannot bind the shape root ({root_cls.__name__}) to a "
                f"parameter of {fn.__qualname__}; annotate the root "
                "parameter with the root class or pass roots=[name]"
            )
    return env


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def infer_phases(
    shape: Shape,
    driver: Callable,
    roots: Optional[Iterable[str]] = None,
    session_params: Iterable[str] = DEFAULT_SESSION_PARAMS,
    summaries: Optional[SummaryCache] = None,
    callgraph: Optional[CallGraph] = None,
) -> WholeProgramReport:
    """Discover commit sites in ``driver`` and infer per-region patterns.

    Parameters
    ----------
    shape:
        The checkpointed structure's shape facts.
    driver:
        The function that owns the program's checkpoint loop: it receives
        the structure root (bound like a phase root) and a
        :class:`~repro.runtime.session.CheckpointSession` (recognised by
        the names in ``session_params``, by local construction, or by a
        ``with CheckpointSession(...) as name`` binding), and calls
        ``session.commit(phase=...)`` at phase boundaries.
    roots:
        Optional parameter names bound to the structure root.
    session_params:
        Driver parameter names carrying the session (default
        ``("session",)``).
    summaries / callgraph:
        Optional shared caches, as for
        :func:`~repro.spec.effects.analysis.analyze_effects`.

    Returns
    -------
    WholeProgramReport
        Per-region :class:`InferredPhase` objects (pattern + provenance),
        the discovered :class:`CommitSite` list, and the call graph.
    """
    if not isinstance(driver, types.FunctionType):
        raise EffectAnalysisError(
            f"cannot infer phases from {driver!r}: not a pure-Python function"
        )
    from repro.spec.effects.callgraph import load_function_ast

    loaded = load_function_ast(driver)
    if loaded is None:
        raise EffectAnalysisError(
            f"cannot infer phases from {driver.__qualname__}: source is "
            "unavailable"
        )
    fdef, filename = loaded
    session_names = _collect_session_names(
        fdef, [p for p in (a.arg for a in fdef.args.args) if p in set(session_params)]
    )
    regions = _segment_regions(fdef.body, session_names, filename)
    commit_sites = [site for region in regions for site in region.sites]
    if not any(s.method in ("commit", "base") for s in commit_sites):
        raise EffectAnalysisError(
            f"driver {driver.__qualname__} has no commit sites: no "
            "session.commit()/session.base() call was found (is the session "
            f"parameter named one of {sorted(session_names) or list(session_params)!r}?)"
        )

    callgraph = callgraph if callgraph is not None else CallGraph()
    analyzer = _ProgramAnalyzer(
        shape,
        roots=roots,
        summaries=summaries,
        callgraph=callgraph,
        session_names=session_names,
    )
    driver_label = _label_of(driver)
    callgraph.add_root(driver_label)
    env = _bind_driver(driver, fdef, shape, roots, session_names)
    frame = _Frame(env, filename, driver.__globals__, depth=0, label=driver_label)
    reports = [
        EffectReport(shape, [f"{driver.__name__}:{region.name}"])
        for region in regions
    ]

    # One abstract environment flows across every region, re-swept until
    # the whole program stabilises: aliases bound before a commit widen
    # the effects of every later region (and, through loops around the
    # commit sites, earlier ones too).
    limit = shape.node_count() + len(regions) + 3
    for _ in range(limit):
        signature = _program_signature(frame, reports)
        for region, report in zip(regions, reports):
            analyzer.report = report
            analyzer._run_stmts(region.stmts, frame)
        if _program_signature(frame, reports) == signature:
            break

    phases = [
        InferredPhase(region, report, shape)
        for region, report in zip(regions, reports)
    ]
    return WholeProgramReport(
        driver_label, shape, phases, commit_sites, callgraph,
        analyzer.summaries,
    )


def _program_signature(frame: _Frame, reports: List[EffectReport]) -> Tuple:
    env_sig = tuple(
        sorted((name, value.signature()) for name, value in frame.env.items())
    )
    report_sig = tuple(
        (
            sum(len(sites) for sites in report.sites.values()),
            len(report.fallbacks),
            len(report.cautions),
        )
        for report in reports
    )
    return (env_sig, frame.ret.signature(), report_sig)
