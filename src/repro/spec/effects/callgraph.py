"""Call-graph facts and memoization layers behind the effect analysis.

The single-phase analysis of :mod:`repro.spec.effects.analysis` re-parsed
every helper function per analyzer and re-analysed it per call site. This
module supplies the whole-program machinery that removes both costs:

:class:`SourceCache` / :func:`load_function_ast`
    A process-wide ``inspect.getsource`` + ``textwrap.dedent`` +
    ``ast.parse`` memo keyed on ``(module, qualname)`` and *validated by
    code-object hash*: editing and reloading a function invalidates its
    entry, while the thousands of repeated lookups an interprocedural
    analysis performs hit the cache.

:class:`CallGraph`
    The cross-module call graph one analysis run discovers: which
    functions were entered, every call edge with ``file:line``
    provenance, and — crucially for diagnostics — which edges could *not*
    be resolved and therefore forced the conservative fallback. The
    linter's ``escape-to-unknown`` rule renders these edges.

:class:`SummaryCache`
    Per-function *effect summaries*: for a callee identified by its code
    key and the abstract signature of its arguments (parameter
    polymorphism — the same helper called with different alias sets gets
    distinct summaries), the cache stores the return abstraction plus the
    write/fallback/caution deltas the call contributed. A hit replays the
    deltas into the current report instead of re-walking the callee's
    body. Summaries contain shape-relative paths, so a cache is bound to
    one :class:`~repro.spec.shape.Shape` and may only be shared between
    analyses of that shape.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import textwrap
import types
from typing import Dict, List, Optional, Tuple

#: identity of one function body: (module, qualname, code digest)
CodeKey = Tuple[str, str, str]


def code_digest(code: types.CodeType) -> str:
    """A stable hash of a code object's behaviour-defining parts."""
    hasher = hashlib.sha1()
    hasher.update(code.co_code)
    hasher.update(repr(code.co_consts).encode("utf-8", "backslashreplace"))
    hasher.update(" ".join(code.co_names).encode("utf-8"))
    hasher.update(" ".join(code.co_varnames).encode("utf-8"))
    hasher.update(str(code.co_firstlineno).encode("ascii"))
    return hasher.hexdigest()[:16]


def code_key(fn: types.FunctionType) -> CodeKey:
    """The cache identity of a plain Python function."""
    return (
        getattr(fn, "__module__", None) or "<unknown>",
        fn.__qualname__,
        code_digest(fn.__code__),
    )


class SourceCache:
    """Memoized source loading, invalidated by code-object hash."""

    def __init__(self) -> None:
        #: (module, qualname) -> (digest, parsed entry or None)
        self._entries: Dict[
            Tuple[str, str], Tuple[str, Optional[Tuple[ast.FunctionDef, str]]]
        ] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def load(
        self, fn: types.FunctionType
    ) -> Optional[Tuple[ast.FunctionDef, str]]:
        """The parsed ``FunctionDef`` and filename of ``fn`` (or ``None``).

        ``None`` means the source is unavailable (builtins, C extensions,
        ``exec``-built functions) — that verdict is cached too.
        """
        if not isinstance(fn, types.FunctionType):
            return None
        module, qualname, digest = code_key(fn)
        slot = (module, qualname)
        cached = self._entries.get(slot)
        if cached is not None:
            seen_digest, entry = cached
            if seen_digest == digest:
                self.hits += 1
                return entry
            # same (module, qualname) with a different body: the function
            # was redefined or its module reloaded — drop the stale parse
            self.invalidations += 1
        self.misses += 1
        entry = self._parse(fn)
        self._entries[slot] = (digest, entry)
        return entry

    @staticmethod
    def _parse(
        fn: types.FunctionType,
    ) -> Optional[Tuple[ast.FunctionDef, str]]:
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            tree = ast.parse(source)
            fdef = tree.body[0]
            if isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ast.increment_lineno(fdef, fn.__code__.co_firstlineno - 1)
                return (fdef, fn.__code__.co_filename)
        except (OSError, TypeError, SyntaxError, IndexError):
            pass
        return None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: process-wide source cache (parses are pure; sharing is always safe)
SOURCE_CACHE = SourceCache()


def load_function_ast(
    fn: types.FunctionType,
) -> Optional[Tuple[ast.FunctionDef, str]]:
    """Load ``fn``'s AST through the process-wide :data:`SOURCE_CACHE`."""
    return SOURCE_CACHE.load(fn)


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


class CallEdge:
    """One discovered call: caller, callee, where, and whether it resolved."""

    __slots__ = ("caller", "callee", "filename", "lineno", "resolved", "reason")

    def __init__(
        self,
        caller: str,
        callee: str,
        filename: str,
        lineno: int,
        resolved: bool,
        reason: str = "",
    ) -> None:
        self.caller = caller
        self.callee = callee
        self.filename = filename
        self.lineno = lineno
        #: False when the callee was opaque and forced the fallback
        self.resolved = resolved
        self.reason = reason

    def location(self) -> str:
        return f"{self.filename}:{self.lineno}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mark = "" if self.resolved else " [unresolved]"
        return f"CallEdge({self.caller} -> {self.callee}{mark} @ {self.location()})"


class CallGraph:
    """The call edges one analysis run walked (or failed to walk)."""

    def __init__(self) -> None:
        self.roots: List[str] = []
        self.edges: List[CallEdge] = []
        self._seen: set = set()

    def add_root(self, label: str) -> None:
        """Record an analysis entry point (a phase or driver function)."""
        if label not in self.roots:
            self.roots.append(label)

    def record(
        self,
        caller: str,
        callee: str,
        filename: str,
        lineno: int,
        resolved: bool,
        reason: str = "",
    ) -> None:
        key = (caller, callee, filename, lineno, resolved)
        if key in self._seen:
            return
        self._seen.add(key)
        self.edges.append(
            CallEdge(caller, callee, filename, lineno, resolved, reason)
        )

    def callees(self, caller: str) -> List[str]:
        return sorted({e.callee for e in self.edges if e.caller == caller})

    def unresolved(self) -> List[CallEdge]:
        """Edges into opaque code — each one cost the analysis precision."""
        return [e for e in self.edges if not e.resolved]

    def functions(self) -> List[str]:
        names = set(self.roots)
        for edge in self.edges:
            names.add(edge.caller)
            if edge.resolved:
                names.add(edge.callee)
        return sorted(names)

    def __len__(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallGraph({len(self.roots)} root(s), {len(self.edges)} edge(s), "
            f"{len(self.unresolved())} unresolved)"
        )


# ---------------------------------------------------------------------------
# Effect summaries
# ---------------------------------------------------------------------------


class CallSummary:
    """What one (callee, argument-signature) pair contributes to a report."""

    __slots__ = ("ret", "writes", "fallbacks", "cautions")

    def __init__(self, ret, writes, fallbacks, cautions) -> None:
        #: the callee's abstract return value
        self.ret = ret
        #: tuple of (path, WriteSite) pairs the call added
        self.writes = writes
        #: WriteSites recording precision loss inside the callee
        self.fallbacks = fallbacks
        #: caution WriteSites raised inside the callee
        self.cautions = cautions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallSummary({len(self.writes)} write(s), "
            f"{len(self.fallbacks)} fallback(s))"
        )


class SummaryCache:
    """Parameter-polymorphic effect summaries, bound to one shape.

    Keys are ``(function identity, abstract env signature)``. Because the
    recorded paths are relative to one :class:`~repro.spec.shape.Shape`,
    a cache must never be shared across shapes — constructing the cache
    with its shape lets analyzers enforce that.
    """

    def __init__(self, shape) -> None:
        self.shape = shape
        self._summaries: Dict[Tuple, CallSummary] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[CallSummary]:
        summary = self._summaries.get(key)
        if summary is not None:
            self.hits += 1
        return summary

    def store(self, key: Tuple, summary: CallSummary) -> None:
        self.misses += 1
        self._summaries[key] = summary

    def __len__(self) -> int:
        return len(self._summaries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SummaryCache({len(self)} summaries, hits={self.hits}, "
            f"misses={self.misses})"
        )
