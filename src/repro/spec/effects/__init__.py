"""Static modification-effect analysis for checkpointing phases (paper §7).

The paper's future work proposes deriving specialization classes "based on
an analysis of the data modification pattern of the program".
:mod:`repro.spec.autospec` implements the *dynamic* variant (observe dirty
flags at run time); this package implements the *static* one:

- :mod:`repro.spec.effects.analysis` — a Python-AST **may-modify effect
  analysis**: given the phase functions of a program and a
  :class:`~repro.spec.shape.Shape`, it computes a sound over-approximation
  of the shape positions whose modification flags the phase can set
  (intraprocedural dataflow over attribute writes plus a module-local call
  graph; opaque calls fall back to "everything reachable is dynamic").
- :mod:`repro.spec.effects.soundness` — diffs a programmer-declared
  :class:`~repro.spec.modpattern.ModificationPattern` against the inferred
  effects: declarations proven unsound are errors, over-wide declarations
  are optimization hints, and a proven-sound pattern may be compiled
  **unguarded** (:meth:`repro.spec.specclass.SpecClass.from_static_analysis`).
- :mod:`repro.spec.effects.residual` — a verifier over the residual IR the
  specializer emits, asserting well-formedness and the key "no dropped
  subtree" property. It runs on every compiled specialization.

The CLI front-end for all three lives in :mod:`repro.lint`.
"""

from repro.spec.effects.analysis import EffectReport, WriteSite, analyze_effects
from repro.spec.effects.residual import verify_residual
from repro.spec.effects.soundness import PatternVerdict, check_pattern

__all__ = [
    "EffectReport",
    "WriteSite",
    "analyze_effects",
    "PatternVerdict",
    "check_pattern",
    "verify_residual",
]
