"""Static modification-effect analysis for checkpointing phases (paper §7).

The paper's future work proposes deriving specialization classes "based on
an analysis of the data modification pattern of the program".
:mod:`repro.spec.autospec` implements the *dynamic* variant (observe dirty
flags at run time); this package implements the *static* one:

- :mod:`repro.spec.effects.analysis` — a Python-AST **may-modify effect
  analysis**: given the phase functions of a program and a
  :class:`~repro.spec.shape.Shape`, it computes a sound over-approximation
  of the shape positions whose modification flags the phase can set
  (intraprocedural dataflow over attribute writes plus a module-local call
  graph; opaque calls fall back to "everything reachable is dynamic").
- :mod:`repro.spec.effects.soundness` — diffs a programmer-declared
  :class:`~repro.spec.modpattern.ModificationPattern` against the inferred
  effects: declarations proven unsound are errors, over-wide declarations
  are optimization hints, and a proven-sound pattern may be compiled
  **unguarded** (:meth:`repro.spec.specclass.SpecClass.from_static_analysis`).
- :mod:`repro.spec.effects.residual` — a verifier over the residual IR the
  specializer emits, asserting well-formedness and the key "no dropped
  subtree" property. It runs on every compiled specialization.
- :mod:`repro.spec.effects.callgraph` — the whole-program machinery: a
  code-hash-keyed source cache, the cross-module call graph, and
  per-function effect summaries memoized by argument signature.
- :mod:`repro.spec.effects.wholeprogram` — phase inference: discover
  ``session.commit()`` sites in a driver, segment it into inter-commit
  regions, and emit one proven :class:`~repro.spec.modpattern.ModificationPattern`
  per region with a provenance trail.
- :mod:`repro.spec.effects.crosscheck` — the dynamic counterexample
  harness: runs real workloads under inferred patterns in checking mode
  and fails with a minimized write-site repro if a statically-quiescent
  position is ever dirtied. (Imported lazily — it drives the runtime and
  the analysis engine, which themselves import this package.)

The CLI front-end lives in :mod:`repro.lint`.
"""

from repro.spec.effects.analysis import EffectReport, WriteSite, analyze_effects
from repro.spec.effects.callgraph import (
    SOURCE_CACHE,
    CallGraph,
    SummaryCache,
    code_key,
    load_function_ast,
)
from repro.spec.effects.residual import verify_residual
from repro.spec.effects.soundness import PatternVerdict, check_pattern
from repro.spec.effects.wholeprogram import (
    CommitSite,
    InferredPhase,
    WholeProgramReport,
    infer_phases,
)

__all__ = [
    "EffectReport",
    "WriteSite",
    "analyze_effects",
    "PatternVerdict",
    "check_pattern",
    "verify_residual",
    "CallGraph",
    "SummaryCache",
    "SOURCE_CACHE",
    "code_key",
    "load_function_ast",
    "CommitSite",
    "InferredPhase",
    "WholeProgramReport",
    "infer_phases",
]
