"""Specialization classes and the specialization-class compiler (JSCC analog).

A :class:`SpecClass` is the programmer-facing declaration of the paper's
``specclass`` construct: it names a recurring compound structure (by
:class:`~repro.spec.shape.Shape`), optionally a per-phase
:class:`~repro.spec.modpattern.ModificationPattern`, and whether run-time
guards should be compiled in. The :class:`SpecCompiler` turns declarations
into :class:`SpecializedCheckpointer` objects — compiled monolithic
functions — caching them per declaration (the paper notes that one
specialized routine is generated per structure and per phase).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.checkpointable import Checkpointable
from repro.core.errors import SpecializationError, UnsoundPatternError
from repro.core.streams import DataOutputStream
from repro.spec import codegen
from repro.spec.effects.analysis import EffectReport, analyze_effects
from repro.spec.effects.residual import verify_residual
from repro.spec.effects.soundness import check_pattern
from repro.spec.modpattern import ModificationPattern
from repro.spec.pe import Specializer
from repro.spec.shape import Shape


class SpecClass:
    """Declaration: specialize checkpointing for one structure (and phase).

    Parameters
    ----------
    shape:
        Structural facts, normally obtained from a prototype via
        :meth:`Shape.of`.
    pattern:
        Which positions may be modified between checkpoints. ``None``
        declares nothing (structure-only specialization — the paper's
        Figure 5).
    name:
        Name given to the generated function; also the cache key together
        with the declarations.
    guards:
        Compile run-time checks that visited objects have the declared
        class and that visited quiescent objects are indeed unmodified.
    """

    def __init__(
        self,
        shape: Shape,
        pattern: Optional[ModificationPattern] = None,
        name: str = "spec_checkpoint",
        guards: bool = False,
    ) -> None:
        if pattern is not None and pattern.shape is not shape:
            raise SpecializationError(
                "the modification pattern was declared for a different shape"
            )
        self.shape = shape
        self.pattern = pattern
        self.name = name
        self.guards = guards
        #: the :class:`~repro.spec.effects.analysis.EffectReport` backing
        #: this declaration, when built by :meth:`from_static_analysis`
        self.static_report: Optional[EffectReport] = None

    @classmethod
    def for_prototype(
        cls,
        prototype: Checkpointable,
        pattern: Optional[ModificationPattern] = None,
        name: str = "spec_checkpoint",
        guards: bool = False,
    ) -> "SpecClass":
        """Convenience: derive the shape from a prototype instance."""
        return cls(Shape.of(prototype), pattern, name, guards)

    @classmethod
    def from_static_analysis(
        cls,
        shape: Shape,
        phases: Iterable,
        name: str = "spec_checkpoint",
        declared: Optional[ModificationPattern] = None,
        roots: Optional[Iterable[str]] = None,
    ) -> "SpecClass":
        """Derive a declaration from the static effect analysis (paper §7).

        Runs :func:`~repro.spec.effects.analysis.analyze_effects` over the
        ``phases`` (the functions executed between checkpoints) and builds a
        declaration whose pattern is *proven* to cover every write the
        phases can perform — so guards verify nothing that can fail and are
        compiled out (``guards=False``).

        With ``declared`` the programmer's pattern is checked instead of
        replaced: a declaration the analysis proves unsound raises
        :class:`~repro.core.errors.UnsoundPatternError` (compiling it
        unguarded would silently drop data from every checkpoint).

        ``roots`` optionally names, per phase function, the parameter bound
        to the structure root (needed when parameters are not annotated).
        """
        report = analyze_effects(shape, phases, roots=roots)
        return cls.from_report(report, name=name, declared=declared)

    @classmethod
    def from_report(
        cls,
        report: EffectReport,
        name: str = "spec_checkpoint",
        declared: Optional[ModificationPattern] = None,
    ) -> "SpecClass":
        """Build an unguarded declaration from a prebuilt effect report.

        This is the compilation seam of whole-program phase inference
        (:mod:`repro.spec.effects.wholeprogram`): each inter-commit
        region's report becomes one proven-unguarded specialization. The
        soundness gate is the same as :meth:`from_static_analysis` —
        a ``declared`` pattern the report proves unsound raises
        :class:`~repro.core.errors.UnsoundPatternError`.
        """
        if declared is not None:
            verdict = check_pattern(declared, report)
            if not verdict.sound:
                missed = [path for path, _site in verdict.unsound]
                evidence = ", ".join(
                    f"{path!r} ({site.location()})" if site else repr(path)
                    for path, site in verdict.unsound
                )
                raise UnsoundPatternError(
                    f"declared pattern for {name!r} misses {len(missed)} "
                    f"position(s) the phases may modify: {evidence}"
                )
            pattern = declared
        else:
            pattern = report.pattern()
        spec = cls(report.shape, pattern, name=name, guards=False)
        spec.static_report = report
        return spec

    def _cache_key(self) -> Tuple:
        # sort by repr: paths mix str and (field, index) elements, which
        # have no natural mutual order
        pattern_key = (
            None
            if self.pattern is None
            else tuple(sorted(self.pattern.may_modify_paths(), key=repr))
        )
        return (id(self.shape), pattern_key, self.name, self.guards)


class SpecializedCheckpointer:
    """A compiled, monolithic specialized checkpoint routine.

    Calling the object checkpoints one structure::

        ckpt = compiler.compile(spec)
        out = DataOutputStream()
        ckpt(root, out)

    Attributes
    ----------
    source:
        The generated Python source (useful for inspection; the examples
        print it to show the Figure 5/6 style output).
    residual_ir:
        The residual IR the source was emitted from.
    spec:
        The originating :class:`SpecClass`.
    """

    def __init__(self, spec: SpecClass) -> None:
        self.spec = spec
        specializer = Specializer(spec.shape, spec.pattern, guards=spec.guards)
        self.residual_ir = specializer.specialize()
        # Re-check the specializer's output independently before compiling:
        # well-formedness plus the "no dropped subtree" property (every
        # declared-modifiable position is recorded, nothing else is).
        self.recorded_paths = verify_residual(
            self.residual_ir,
            spec.shape,
            spec.pattern,
            spec.guards,
            name=spec.name,
        )
        self.source, self._function = codegen.emit(self.residual_ir, spec.name)

    def __call__(self, root: Checkpointable, out: DataOutputStream) -> None:
        self._function(root, out)

    def checkpoint_all(
        self, roots: Iterable[Checkpointable], out: DataOutputStream
    ) -> None:
        """Checkpoint every structure of a collection with one call."""
        function = self._function
        for root in roots:
            function(root, out)

    def source_lines(self) -> List[str]:
        return self.source.splitlines()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpecializedCheckpointer({self.spec.name!r}, "
            f"{len(self.source_lines())} lines)"
        )


class SpecCompiler:
    """Compiles :class:`SpecClass` declarations, with caching."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple, SpecializedCheckpointer] = {}

    def compile(self, spec: SpecClass) -> SpecializedCheckpointer:
        """Return the (possibly cached) specialized checkpointer for ``spec``."""
        key = spec._cache_key()
        cached = self._cache.get(key)
        if cached is None:
            cached = SpecializedCheckpointer(spec)
            self._cache[key] = cached
        return cached

    def __len__(self) -> int:
        return len(self._cache)


#: Process-wide compiler instance (specialized routines are pure functions,
#: so sharing the cache is always safe).
DEFAULT_COMPILER = SpecCompiler()
