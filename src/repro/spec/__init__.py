"""Program specializer for checkpointing code (paper section 3, JSpec analog).

The generic checkpointing algorithm — the :class:`~repro.core.checkpoint.Checkpoint`
driver plus the per-class ``record``/``fold`` methods — is re-expressed here
in a small imperative IR (:mod:`repro.spec.templates`). Given

- a :class:`~repro.spec.shape.Shape` (structural facts: the exact class of
  every node of a recurring compound structure), and
- a :class:`~repro.spec.modpattern.ModificationPattern` (which nodes may be
  modified during a given program phase),

a binding-time analysis (:mod:`repro.spec.bta`) annotates the IR
static/dynamic, and an offline partial evaluator (:mod:`repro.spec.pe`)
unfolds it into a monolithic residual program: virtual calls are replaced by
inlined code, modification tests on quiescent objects are folded away, and
the traversal of completely unmodified subtrees disappears entirely —
exactly the transformations of the paper's Figures 5 and 6. The residual IR
is emitted as Python source and compiled (:mod:`repro.spec.codegen`).
"""

from repro.spec.autospec import AutoSpecializer, PatternObserver
from repro.spec.effects import (
    CallGraph,
    CommitSite,
    EffectReport,
    InferredPhase,
    PatternVerdict,
    SummaryCache,
    WholeProgramReport,
    WriteSite,
    analyze_effects,
    check_pattern,
    infer_phases,
    verify_residual,
)
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecCompiler, SpecializedCheckpointer

__all__ = [
    "Shape",
    "ModificationPattern",
    "SpecClass",
    "SpecCompiler",
    "SpecializedCheckpointer",
    "PatternObserver",
    "AutoSpecializer",
    "EffectReport",
    "WriteSite",
    "analyze_effects",
    "PatternVerdict",
    "check_pattern",
    "verify_residual",
    "CallGraph",
    "SummaryCache",
    "CommitSite",
    "InferredPhase",
    "WholeProgramReport",
    "infer_phases",
]
