"""The offline partial evaluator (paper section 3).

:class:`Specializer` unfolds the generic checkpointing algorithm
(:mod:`repro.spec.templates`) against a :class:`~repro.spec.shape.Shape`
and a :class:`~repro.spec.modpattern.ModificationPattern`, following the
binding-time annotations computed by :mod:`repro.spec.bta`:

- virtual ``record``/``fold``/``checkpoint`` calls whose receiver class is
  static are *unfolded* (inlined, with the callee body specialized in the
  caller's context) — this removes every virtual call;
- ``if info.modified`` tests on positions declared quiescent *reduce* to
  their (empty) false branch — this removes tests and record blocks;
- the recursive traversal of a subtree in which no position may be
  modified produces no residual code at all — this removes whole
  traversals (the paper's Figure 6 effect);
- child-list iterations with a statically known length are *unrolled*.

The evaluator asserts, at every expression, that its decision agrees with
the binding-time annotation — a disagreement would be a specializer bug
and raises :class:`~repro.core.errors.SpecializationError`.

The result is residual IR: a flat, monolithic program over fresh local
variables (``n0, n1, …`` for objects, ``i0, i1, …`` for their info
records), exactly the style of the paper's Figure 5. A final
dead-assignment pass removes bindings whose uses were all specialized
away.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.errors import SpecializationError
from repro.spec import bta, ir, templates
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape, ShapeNode


# ---------------------------------------------------------------------------
# Abstract (specialization-time) values
# ---------------------------------------------------------------------------


class AbsVal:
    """Base class of specialization-time values."""

    tag = "?"


class SVal(AbsVal):
    """Fully static value."""

    tag = "S"

    def __init__(self, value) -> None:
        self.value = value


class DVal(AbsVal):
    """Dynamic value with its residual expression."""

    tag = "D"

    def __init__(self, expr: ir.Expr) -> None:
        self.expr = expr


class PSObj(AbsVal):
    """Partially static object: known shape node, run-time identity."""

    tag = "PS"

    def __init__(self, node: ShapeNode, expr: ir.Expr) -> None:
        self.node = node
        self.expr = expr


class PSInfo(AbsVal):
    """CheckpointInfo of a partially static object."""

    tag = "PSINFO"

    def __init__(self, node: ShapeNode, expr: ir.Expr) -> None:
        self.node = node
        self.expr = expr


class PSList(AbsVal):
    """Child list of a partially static object."""

    tag = "PSLIST"

    def __init__(self, node: ShapeNode, field: str, expr: ir.Expr) -> None:
        self.node = node
        self.field = field
        self.expr = expr


class DriverVal(AbsVal):
    tag = "DRIVER"


class OutVal(AbsVal):
    tag = "OUT"


_DRIVER = DriverVal()
_OUT = OutVal()


def _bt_of(val: AbsVal) -> bta.BTVal:
    if isinstance(val, SVal):
        return bta.S
    if isinstance(val, DVal):
        return bta.D
    if isinstance(val, PSObj):
        return bta.ps(val.node)
    if isinstance(val, PSInfo):
        return bta.psinfo(val.node)
    if isinstance(val, PSList):
        return bta.pslist(val.node, val.field)
    if isinstance(val, DriverVal):
        return bta.DRIVER
    return bta.OUT


def _field_spec(node: ShapeNode, slot: str):
    for spec in node.cls._ckpt_schema:
        if spec.slot == slot:
            return spec
    raise SpecializationError(
        f"class {node.cls.__name__} has no checkpointable slot {slot!r}"
    )


# ---------------------------------------------------------------------------
# The specializer
# ---------------------------------------------------------------------------


class Specializer:
    """Specialize the generic checkpoint algorithm for one shape + pattern."""

    def __init__(
        self,
        shape: Shape,
        pattern: Optional[ModificationPattern] = None,
        guards: bool = False,
        cleanup: bool = True,
    ) -> None:
        self.shape = shape
        self.pattern = pattern or ModificationPattern.all_dynamic(shape)
        if self.pattern.shape is not shape:
            raise SpecializationError("pattern was built for a different shape")
        self.guards = guards
        #: run the dead-binding elimination pass (off only for ablations)
        self.cleanup = cleanup
        self._fresh_counts: Dict[str, int] = {}

    # -- entry point ---------------------------------------------------------

    def specialize(self) -> ir.Seq:
        """Residual program over free variables ``root`` and ``out``."""
        root = PSObj(self.shape.root, ir.Var("root"))
        body = self._unfold_checkpoint(root)
        residual = ir.Seq(body)
        if self.cleanup:
            residual = eliminate_dead_assigns(residual)
        return residual

    # -- helpers ---------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        count = self._fresh_counts.get(prefix, 0)
        self._fresh_counts[prefix] = count + 1
        return f"{prefix}{count}"

    def _unfold_checkpoint(self, obj: PSObj) -> List[ir.Stmt]:
        """Specialize one ``ckpt.checkpoint(obj)`` call."""
        # A completely quiescent subtree leaves no residual code: no test,
        # no record, no traversal (paper Figure 6 / section 3.2). In
        # guarded mode the subtree's *root* flag is still checked — one
        # test instead of a traversal — so the common violation (the
        # skipped object itself was written) is detected; violations
        # confined to deeper nodes of a skipped subtree are only caught by
        # offline validation (ModificationPattern.validate_against).
        if not self.pattern.subtree_may_be_modified(obj.node):
            if self.guards:
                return [
                    ir.Guard(
                        ir.Not(
                            ir.FieldGet(
                                ir.FieldGet(obj.expr, "_ckpt_info"), "modified"
                            )
                        ),
                        f"subtree at {obj.node.path!r} was declared quiescent "
                        "but its root is modified",
                    )
                ]
            return []
        out: List[ir.Stmt] = []
        # Bind the receiver to a local when it is reached through a
        # non-trivial access path, so the residual program names every
        # visited object once (Figure 5 style).
        if not isinstance(obj.expr, ir.Var):
            name = self._fresh("n")
            out.append(ir.Assign(name, obj.expr))
            obj = PSObj(obj.node, ir.Var(name))
        if self.guards:
            out.append(
                ir.Guard(
                    ir.ClassIs(obj.expr, obj.node.cls),
                    f"object at {obj.node.path!r} is not a "
                    f"{obj.node.cls.__name__}",
                )
            )
            if not self.pattern.node_may_be_modified(obj.node):
                out.append(
                    ir.Guard(
                        ir.Not(
                            ir.FieldGet(
                                ir.FieldGet(obj.expr, "_ckpt_info"), "modified"
                            )
                        ),
                        f"object at {obj.node.path!r} was declared quiescent "
                        "but is modified",
                    )
                )
        template = templates.checkpoint_ir()
        env: Dict[str, AbsVal] = {"o": obj, "out": _OUT, "ckpt": _DRIVER}
        self._annotate(template, env)
        out.extend(self._spec_stmt(template, env))
        return out

    def _annotate(self, stmt: ir.Stmt, env: Dict[str, AbsVal]) -> None:
        bt_env = {name: _bt_of(value) for name, value in env.items()}
        bta.annotate(stmt, bta.BTContext(bt_env, self.pattern))

    def _check(self, expr: ir.Expr, value: AbsVal) -> AbsVal:
        expected = expr.bt
        # The BTA marks unfoldable calls "UNFOLD"; those never reach here.
        if expected is not None and expected != value.tag:
            raise SpecializationError(
                f"binding-time disagreement at {expr!r}: "
                f"BTA said {expected}, evaluator computed {value.tag}"
            )
        return value

    # -- statements -------------------------------------------------------------

    def _spec_stmt(self, stmt: ir.Stmt, env: Dict[str, AbsVal]) -> List[ir.Stmt]:
        if isinstance(stmt, ir.Seq):
            out: List[ir.Stmt] = []
            for inner in stmt.stmts:
                out.extend(self._spec_stmt(inner, env))
            return out

        if isinstance(stmt, ir.Assign):
            value = self._spec_expr(stmt.expr, env)
            if isinstance(value, SVal):
                env[stmt.name] = value
                return []
            prefix = "i" if isinstance(value, PSInfo) else (
                "n" if isinstance(value, PSObj) else (
                    "L" if isinstance(value, PSList) else "t"
                )
            )
            name = self._fresh(prefix)
            residual_expr = value.expr
            rebound: AbsVal
            if isinstance(value, PSObj):
                rebound = PSObj(value.node, ir.Var(name))
            elif isinstance(value, PSInfo):
                rebound = PSInfo(value.node, ir.Var(name))
            elif isinstance(value, PSList):
                rebound = PSList(value.node, value.field, ir.Var(name))
            else:
                rebound = DVal(ir.Var(name))
            env[stmt.name] = rebound
            return [ir.Assign(name, residual_expr)]

        if isinstance(stmt, ir.If):
            cond = self._spec_expr(stmt.cond, env)
            if isinstance(cond, SVal):
                if stmt.bt != "reduce":
                    raise SpecializationError(
                        f"BTA marked If {stmt.bt!r} but condition is static"
                    )
                branch = stmt.then if cond.value else stmt.orelse
                return self._spec_stmt(branch, env) if branch is not None else []
            then_body = self._spec_stmt(stmt.then, env)
            else_body = (
                self._spec_stmt(stmt.orelse, env) if stmt.orelse is not None else []
            )
            if not then_body and not else_body:
                return []
            return [
                ir.If(
                    cond.expr,
                    ir.Seq(then_body),
                    ir.Seq(else_body) if else_body else None,
                )
            ]

        if isinstance(stmt, ir.ExprStmt):
            call = stmt.expr
            if stmt.bt == "unfold" and isinstance(call, ir.MethodCall):
                return self._unfold_call(call, env)
            raise SpecializationError(
                f"residual expression statement {stmt!r} has no meaning in "
                "specialized checkpointing code"
            )

        if isinstance(stmt, ir.Write):
            value = self._spec_expr(stmt.expr, env)
            if isinstance(value, SVal):
                return [ir.Write(stmt.kind, ir.Const(value.value))]
            return [ir.Write(stmt.kind, value.expr)]

        if isinstance(stmt, ir.SetAttr):
            base = self._spec_expr(stmt.base, env)
            value = self._spec_expr(stmt.expr, env)
            residual_value = (
                ir.Const(value.value) if isinstance(value, SVal) else value.expr
            )
            return [ir.SetAttr(base.expr, stmt.field, residual_value)]

        if isinstance(stmt, ir.WriteScalarList):
            value = self._spec_expr(stmt.expr, env)
            return [ir.WriteScalarList(stmt.kind, value.expr)]

        if isinstance(stmt, ir.RecordChildIds):
            value = self._spec_expr(stmt.expr, env)
            if stmt.bt == "unroll" and isinstance(value, PSList):
                members = value.node.list_nodes(value.field)
                out = [ir.Write("int", ir.Const(len(members)))]
                if self.guards:
                    out.append(
                        ir.Guard(
                            ir.Eq(ir.ListLen(value.expr), ir.Const(len(members))),
                            f"child list {value.field!r} at "
                            f"{value.node.path!r} changed length",
                        )
                    )
                for index in range(len(members)):
                    element = ir.IndexGet(value.expr, index)
                    out.append(
                        ir.Write(
                            "int",
                            ir.FieldGet(
                                ir.FieldGet(element, "_ckpt_info"), "object_id"
                            ),
                        )
                    )
                return out
            return [ir.RecordChildIds(value.expr)]

        if isinstance(stmt, ir.FoldChildren):
            value = self._spec_expr(stmt.expr, env)
            if stmt.bt == "unroll" and isinstance(value, PSList):
                out: List[ir.Stmt] = []
                # Bind the list once if any member traversal survives (in
                # guarded mode skipped members still emit a root check).
                members = value.node.list_nodes(value.field)
                live = [
                    (index, node)
                    for index, node in enumerate(members)
                    if self.guards or self.pattern.subtree_may_be_modified(node)
                ]
                if not live:
                    return []
                if not isinstance(value.expr, ir.Var):
                    name = self._fresh("L")
                    out.append(ir.Assign(name, value.expr))
                    value = PSList(value.node, value.field, ir.Var(name))
                for index, node in live:
                    child = PSObj(node, ir.IndexGet(value.expr, index))
                    out.extend(self._unfold_checkpoint(child))
                return out
            raise SpecializationError(
                f"cannot residualize child-list traversal {stmt!r}"
            )

        if isinstance(stmt, ir.Guard):
            value = self._spec_expr(stmt.cond, env)
            residual = ir.Const(value.value) if isinstance(value, SVal) else value.expr
            return [ir.Guard(residual, stmt.message)]

        raise SpecializationError(f"unknown IR statement {stmt!r}")

    def _unfold_call(
        self, call: ir.MethodCall, env: Dict[str, AbsVal]
    ) -> List[ir.Stmt]:
        receiver = self._spec_expr(call.base, env)
        if isinstance(receiver, PSObj) and call.method == "record":
            body = templates.record_ir(receiver.node.cls)
            callee_env: Dict[str, AbsVal] = {"self": receiver, "out": _OUT}
            self._annotate(body, callee_env)
            return self._spec_stmt(body, callee_env)
        if isinstance(receiver, PSObj) and call.method == "fold":
            body = templates.fold_ir(receiver.node.cls)
            callee_env = {"self": receiver, "ckpt": _DRIVER}
            self._annotate(body, callee_env)
            return self._spec_stmt(body, callee_env)
        if isinstance(receiver, DriverVal) and call.method == "checkpoint":
            argument = self._spec_expr(call.args[0], env)
            if isinstance(argument, SVal) and argument.value is None:
                return []
            if not isinstance(argument, PSObj):
                raise SpecializationError(
                    f"checkpoint argument {call.args[0]!r} is not a partially "
                    "static object"
                )
            return self._unfold_checkpoint(argument)
        raise SpecializationError(f"cannot unfold virtual call {call!r}")

    # -- expressions ------------------------------------------------------------

    def _spec_expr(self, expr: ir.Expr, env: Dict[str, AbsVal]) -> AbsVal:
        if isinstance(expr, ir.Const):
            return self._check(expr, SVal(expr.value))

        if isinstance(expr, ir.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise SpecializationError(f"unbound variable {expr.name!r}")

        if isinstance(expr, ir.FieldGet):
            base = self._spec_expr(expr.base, env)
            return self._check(expr, self._spec_field(base, expr.field))

        if isinstance(expr, ir.IndexGet):
            base = self._spec_expr(expr.base, env)
            if isinstance(base, PSList):
                members = base.node.list_nodes(base.field)
                node = members[expr.index]
                return self._check(
                    expr, PSObj(node, ir.IndexGet(base.expr, expr.index))
                )
            return self._check(expr, DVal(ir.IndexGet(base.expr, expr.index)))

        if isinstance(expr, ir.ListLen):
            base = self._spec_expr(expr.base, env)
            if isinstance(base, PSList):
                return self._check(
                    expr, SVal(len(base.node.list_nodes(base.field)))
                )
            return self._check(expr, DVal(ir.ListLen(base.expr)))

        if isinstance(expr, ir.IsNone):
            base = self._spec_expr(expr.base, env)
            if isinstance(base, SVal):
                return self._check(expr, SVal(base.value is None))
            if isinstance(base, PSObj):
                return self._check(expr, SVal(False))
            return self._check(expr, DVal(ir.IsNone(base.expr)))

        if isinstance(expr, ir.Not):
            operand = self._spec_expr(expr.operand, env)
            if isinstance(operand, SVal):
                return self._check(expr, SVal(not operand.value))
            return self._check(expr, DVal(ir.Not(operand.expr)))

        if isinstance(expr, ir.Eq):
            left = self._spec_expr(expr.left, env)
            right = self._spec_expr(expr.right, env)
            if isinstance(left, SVal) and isinstance(right, SVal):
                return SVal(left.value == right.value)
            left_expr = ir.Const(left.value) if isinstance(left, SVal) else left.expr
            right_expr = (
                ir.Const(right.value) if isinstance(right, SVal) else right.expr
            )
            return DVal(ir.Eq(left_expr, right_expr))

        if isinstance(expr, ir.ClassIs):
            base = self._spec_expr(expr.base, env)
            return DVal(ir.ClassIs(base.expr, expr.cls))

        if isinstance(expr, ir.ClassSerialOf):
            base = self._spec_expr(expr.base, env)
            if isinstance(base, PSObj):
                return self._check(expr, SVal(base.node.cls._ckpt_serial))
            return self._check(expr, DVal(ir.ClassSerialOf(base.expr)))

        raise SpecializationError(f"unknown IR expression {expr!r}")

    def _spec_field(self, base: AbsVal, field: str) -> AbsVal:
        if isinstance(base, PSObj):
            node = base.node
            if field == "_ckpt_info":
                return PSInfo(node, ir.FieldGet(base.expr, "_ckpt_info"))
            spec = _field_spec(node, field)
            access = ir.FieldGet(base.expr, field)
            if spec.role == "child":
                child = node.child_node(spec.name)
                if child is None:
                    return SVal(None)
                return PSObj(child, access)
            if spec.role == "child_list":
                return PSList(node, spec.name, access)
            return DVal(access)  # scalar or scalar_list contents
        if isinstance(base, PSInfo):
            if field == "modified":
                if self.pattern.node_may_be_modified(base.node):
                    return DVal(ir.FieldGet(base.expr, "modified"))
                return SVal(False)
            if field == "object_id":
                return DVal(ir.FieldGet(base.expr, "object_id"))
            raise SpecializationError(f"unexpected info attribute {field!r}")
        if isinstance(base, DVal):
            return DVal(ir.FieldGet(base.expr, field))
        raise SpecializationError(
            f"cannot read attribute {field!r} of a {base.tag} value"
        )


# ---------------------------------------------------------------------------
# Residual cleanup
# ---------------------------------------------------------------------------


def eliminate_dead_assigns(body: ir.Seq) -> ir.Seq:
    """Drop residual bindings that no surviving statement reads.

    Specialization can leave a binding like ``i3 = n2._ckpt_info`` whose
    only consumer (a modified test) was reduced away; this pass removes
    such bindings, iterating because removals can kill earlier chains.
    """
    current = body
    while True:
        uses: Dict[str, int] = {}
        _count_uses(current, uses)
        changed = False
        current, changed = _drop_unused(current, uses)
        if not changed:
            return current


def _count_uses(node: ir.Node, uses: Dict[str, int]) -> None:
    if isinstance(node, ir.Var):
        uses[node.name] = uses.get(node.name, 0) + 1
        return
    if isinstance(node, ir.Seq):
        for inner in node.stmts:
            _count_uses(inner, uses)
    elif isinstance(node, ir.Assign):
        _count_uses(node.expr, uses)
    elif isinstance(node, ir.If):
        _count_uses(node.cond, uses)
        _count_uses(node.then, uses)
        if node.orelse is not None:
            _count_uses(node.orelse, uses)
    elif isinstance(node, ir.ExprStmt):
        _count_uses(node.expr, uses)
    elif isinstance(node, (ir.Write, ir.WriteScalarList)):
        _count_uses(node.expr, uses)
    elif isinstance(node, ir.SetAttr):
        _count_uses(node.base, uses)
        _count_uses(node.expr, uses)
    elif isinstance(node, (ir.RecordChildIds, ir.FoldChildren)):
        _count_uses(node.expr, uses)
    elif isinstance(node, ir.Guard):
        _count_uses(node.cond, uses)
    elif isinstance(node, ir.FieldGet):
        _count_uses(node.base, uses)
    elif isinstance(node, ir.IndexGet):
        _count_uses(node.base, uses)
    elif isinstance(node, (ir.ListLen, ir.IsNone)):
        _count_uses(node.base, uses)
    elif isinstance(node, ir.Not):
        _count_uses(node.operand, uses)
    elif isinstance(node, ir.Eq):
        _count_uses(node.left, uses)
        _count_uses(node.right, uses)
    elif isinstance(node, ir.ClassIs):
        _count_uses(node.base, uses)
    elif isinstance(node, ir.ClassSerialOf):
        _count_uses(node.base, uses)
    elif isinstance(node, ir.MethodCall):
        _count_uses(node.base, uses)
        for arg in node.args:
            _count_uses(arg, uses)
    # Const carries no variables.


def _drop_unused(stmt: ir.Stmt, uses: Dict[str, int]):
    changed = False
    if isinstance(stmt, ir.Seq):
        kept: List[ir.Stmt] = []
        for inner in stmt.stmts:
            if isinstance(inner, ir.Assign) and uses.get(inner.name, 0) == 0:
                changed = True
                continue
            replacement, inner_changed = _drop_unused(inner, uses)
            changed = changed or inner_changed
            kept.append(replacement)
        return ir.Seq(kept), changed
    if isinstance(stmt, ir.If):
        then, then_changed = _drop_unused(stmt.then, uses)
        orelse = None
        orelse_changed = False
        if stmt.orelse is not None:
            orelse, orelse_changed = _drop_unused(stmt.orelse, uses)
        return ir.If(stmt.cond, then, orelse), then_changed or orelse_changed
    return stmt, False
