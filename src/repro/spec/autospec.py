"""Automatic construction of specialization classes (paper section 7).

The paper's future work proposes "to automatically construct
specialization classes based on an analysis of the data modification
pattern of the program". This module implements the dynamic variant: a
:class:`PatternObserver` watches one or more representative runs of a
program phase, records *which positions of the structure actually got
dirty*, and derives the :class:`~repro.spec.modpattern.ModificationPattern`
— no programmer declaration needed.

Because an observed pattern is an under-approximation (a future run might
modify a position never seen dirty), auto-derived specializations default
to guarded compilation: a violation raises
:class:`~repro.core.errors.PatternViolationError` instead of silently
dropping data, and :meth:`AutoSpecializer.refine` folds the new
observation in and recompiles.

Typical use::

    observer = PatternObserver(shape)
    for _ in range(warmup_rounds):
        run_phase()
        observer.observe(root)        # record dirty positions, keep flags

    auto = AutoSpecializer(shape, observer, name="phase_ckpt")
    fn = auto.compiled()              # guarded specialized checkpointer
    while running:
        run_phase()
        try:
            fn(root, out)
        except PatternViolationError:
            fn = auto.refine(root)    # widen the pattern, recompile
            fn(root, out)
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.checkpointable import Checkpointable
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Path, Shape, ShapeNode
from repro.spec.specclass import SpecClass, SpecializedCheckpointer


class PatternObserver:
    """Accumulates the set of positions seen modified across runs."""

    def __init__(self, shape: Shape) -> None:
        self.shape = shape
        self._seen_dirty: Set[Path] = set()
        self.observations = 0

    def observe(self, root: Checkpointable) -> int:
        """Record every currently-dirty position of ``root``.

        Flags are left untouched (observation happens *before* the
        checkpoint). Returns how many new positions this observation
        contributed.
        """
        before = len(self._seen_dirty)
        self._walk(root, self.shape.root)
        self.observations += 1
        return len(self._seen_dirty) - before

    def _walk(self, obj: Checkpointable, node: ShapeNode) -> None:
        if obj._ckpt_info.modified:
            self._seen_dirty.add(node.path)
        for edge in node.edges:
            child = self._follow(obj, edge)
            if child is not None:
                self._walk(child, edge.node)

    @staticmethod
    def _follow(obj, edge):
        if edge.index is None:
            return getattr(obj, "_f_" + edge.field)
        items = getattr(obj, "_f_" + edge.field)._items
        if edge.index >= len(items):
            return None
        return items[edge.index]

    def seed(self, paths, count_as_observation: bool = True) -> int:
        """Pre-load positions from a static effect analysis.

        A statically inferred may-write set is a sound *over*-approximation,
        so seeding it lets :class:`AutoSpecStrategy` skip the generic
        first-commit observation round entirely: the derived pattern
        already covers everything the phase can touch, and the guarded
        routine only ever widens if the static facts were built for a
        different phase. Returns how many new positions were added.
        """
        known = set(self.shape.paths())
        before = len(self._seen_dirty)
        for path in paths:
            path = tuple(path)
            if path not in known:
                from repro.core.errors import SpecializationError

                raise SpecializationError(
                    f"cannot seed observer with {path!r}: not a position "
                    "of the observed shape"
                )
            self._seen_dirty.add(path)
        if count_as_observation:
            self.observations += 1
        return len(self._seen_dirty) - before

    def seen_dirty(self) -> Set[Path]:
        """Positions observed modified so far."""
        return set(self._seen_dirty)

    def pattern(self) -> ModificationPattern:
        """The modification pattern implied by the observations so far."""
        return ModificationPattern.only(self.shape, self._seen_dirty)

    def coverage(self) -> float:
        """Fraction of structure positions observed dirty (0.0-1.0)."""
        return len(self._seen_dirty) / self.shape.node_count()


class AutoSpecializer:
    """Derives and maintains a specialized checkpointer from observations."""

    def __init__(
        self,
        shape: Shape,
        observer: Optional[PatternObserver] = None,
        name: str = "auto_spec_checkpoint",
        guards: bool = True,
    ) -> None:
        self.shape = shape
        self.observer = observer or PatternObserver(shape)
        self.name = name
        self.guards = guards
        self._compiled: Optional[SpecializedCheckpointer] = None
        self.recompilations = 0

    @classmethod
    def from_static(
        cls,
        report,
        name: str = "auto_spec_checkpoint",
        guards: bool = True,
    ) -> "AutoSpecializer":
        """Warm-start from an :class:`~repro.spec.effects.analysis.EffectReport`.

        The observer is seeded with the report's may-write set, so the
        first commit already runs the derived (guarded) routine instead
        of observing generically — the hybrid of paper section 7's static
        and dynamic proposals.
        """
        observer = PatternObserver(report.shape)
        observer.seed(report.may_write)
        return cls(report.shape, observer, name=name, guards=guards)

    def compiled(self) -> SpecializedCheckpointer:
        """The current specialized checkpointer (compiling on first use)."""
        if self._compiled is None:
            self._compiled = self._compile()
        return self._compiled

    def _compile(self) -> SpecializedCheckpointer:
        self.recompilations += 1
        return SpecializedCheckpointer(
            SpecClass(
                self.shape,
                self.observer.pattern(),
                name=f"{self.name}_{self.recompilations}",
                guards=self.guards,
            )
        )

    def refine(self, root: Checkpointable) -> SpecializedCheckpointer:
        """Widen the pattern with ``root``'s current dirty set; recompile.

        Call this after a :class:`PatternViolationError`: the violating
        positions become part of the pattern, so the recompiled routine
        accepts (and records) them.
        """
        self.observer.observe(root)
        self._compiled = self._compile()
        return self._compiled
