"""Modification-pattern facts (the paper's second specialization input).

A :class:`ModificationPattern` declares, for one :class:`~repro.spec.shape.Shape`
and one program phase, which positions of the structure *may* be modified
between checkpoints. The specializer uses it to

- fold the ``if info.modified`` test to false at quiescent positions
  (eliminating the record block), and
- skip the traversal of subtrees in which *no* position may be modified
  (eliminating the visit entirely — the paper's biggest win).

The paper's synthetic evaluation (section 5) uses three families of
patterns, all constructible here:

- everything may be modified (:meth:`ModificationPattern.all_dynamic`),
- only some of the lists may contain modified elements
  (:meth:`ModificationPattern.restricted_to_lists`),
- a modified object may only occur at specific positions within each list,
  e.g. the last element (:meth:`ModificationPattern.last_element_of_lists`).

Declaring a pattern is a programmer promise, exactly as in the paper;
guarded specialization (``guards=True``) verifies it at run time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.core.errors import SpecializationError
from repro.spec.shape import Path, Shape, ShapeNode


class ModificationPattern:
    """The set of structure positions that may be modified in a phase."""

    def __init__(self, shape: Shape, may_modify: Optional[Iterable[Path]] = None) -> None:
        self.shape = shape
        all_paths = set(shape.paths())
        if may_modify is None:
            self._may_modify: FrozenSet[Path] = frozenset(all_paths)
        else:
            requested = frozenset(may_modify)
            unknown = requested - all_paths
            if unknown:
                raise SpecializationError(
                    f"pattern names paths missing from the shape: {sorted(unknown)!r}"
                )
            self._may_modify = requested
        self._subtree_cache: Dict[Path, bool] = {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def all_dynamic(cls, shape: Shape) -> "ModificationPattern":
        """No quiescence facts: every position may be modified."""
        return cls(shape, None)

    @classmethod
    def none_modified(cls, shape: Shape) -> "ModificationPattern":
        """Fully quiescent structure (checkpointing it is a no-op)."""
        return cls(shape, ())

    @classmethod
    def only(cls, shape: Shape, paths: Iterable[Path]) -> "ModificationPattern":
        """Exactly the given positions may be modified."""
        return cls(shape, paths)

    @classmethod
    def subtrees(cls, shape: Shape, prefixes: Iterable[Path]) -> "ModificationPattern":
        """Every position at or below one of the given paths may be modified."""
        prefixes = [tuple(p) for p in prefixes]
        selected: List[Path] = []
        for path in shape.paths():
            if any(path[: len(prefix)] == prefix for prefix in prefixes):
                selected.append(path)
        if prefixes and not selected:
            raise SpecializationError(
                f"no shape position lies under any of {prefixes!r}"
            )
        return cls(shape, selected)

    @classmethod
    def restricted_to_lists(
        cls, shape: Shape, list_fields: Iterable[str]
    ) -> "ModificationPattern":
        """Only elements of the named root list fields may be modified.

        ``list_fields`` names ``child`` fields of the root that head linked
        lists (the synthetic benchmark's layout) or ``child_list`` fields.
        """
        prefixes: List[Path] = []
        for field in list_fields:
            prefixes.extend(cls._root_list_prefixes(shape, field))
        return cls.subtrees(shape, prefixes)

    @classmethod
    def last_element_of_lists(
        cls, shape: Shape, list_fields: Iterable[str]
    ) -> "ModificationPattern":
        """Only the *last* element of each named list may be modified.

        This is the paper's strongest pattern (Figure 10): traversal of a
        whole list collapses to a direct access of its final element.
        """
        selected: List[Path] = []
        for field in list_fields:
            for prefix in cls._root_list_prefixes(shape, field):
                selected.append(cls._deepest_under(shape, prefix))
        return cls(shape, selected)

    @staticmethod
    def _root_list_prefixes(shape: Shape, field: str) -> List[Path]:
        root = shape.root
        if field in root.list_lengths:
            return [
                (p,)
                for p in ((field, i) for i in range(root.list_lengths[field]))
            ]
        if field in root.absent_children:
            return []
        root.edge(field)  # raises SpecializationError when the field is unknown
        return [(field,)]

    @staticmethod
    def _deepest_under(shape: Shape, prefix: Path) -> Path:
        """The longest path extending ``prefix`` (tail of a linked list)."""
        best = prefix
        for path in shape.paths():
            if path[: len(prefix)] == prefix and len(path) > len(best):
                best = path
        return best

    def widened(self, extra: Iterable[Path]) -> "ModificationPattern":
        """A new pattern additionally allowing modification of ``extra``.

        Patterns are immutable (``_may_modify`` is a frozenset and the lazy
        ``_subtree_cache`` only memoizes facts derived from it), so widening
        always builds a fresh pattern — and therefore a fresh cache — rather
        than mutating this one. :class:`~repro.spec.autospec.AutoSpecializer`
        and the soundness checker rely on this to never see stale subtree
        facts after a refinement.
        """
        return ModificationPattern(self.shape, self._may_modify | set(extra))

    # -- queries ---------------------------------------------------------------

    def node_may_be_modified(self, node: ShapeNode) -> bool:
        """May the object at this position itself be dirty?"""
        return node.path in self._may_modify

    def subtree_may_be_modified(self, node: ShapeNode) -> bool:
        """May *any* object in this subtree be dirty?

        When false, specialization removes the entire traversal of the
        subtree from the residual program.
        """
        cached = self._subtree_cache.get(node.path)
        if cached is not None:
            return cached
        result = node.path in self._may_modify or any(
            self.subtree_may_be_modified(edge.node) for edge in node.edges
        )
        self._subtree_cache[node.path] = result
        return result

    def may_modify_paths(self) -> FrozenSet[Path]:
        """The declared set of possibly-modified positions."""
        return self._may_modify

    def skipped_subtrees(self) -> List[Path]:
        """Roots of the maximal quiescent subtrees specialization elides.

        Each returned path heads a subtree in which no position may be
        modified: the compiled routine skips its entire traversal (the
        paper's biggest win). Nested quiescent positions are not listed
        separately — only the outermost skip points.
        """
        skipped: List[Path] = []
        stack: List[ShapeNode] = [self.shape.root]
        while stack:
            node = stack.pop()
            if not self.subtree_may_be_modified(node):
                skipped.append(node.path)
            else:
                stack.extend(edge.node for edge in node.edges)
        return sorted(skipped, key=repr)

    def quiescent_paths(self) -> List[Path]:
        """Positions declared never modified, in preorder."""
        return [p for p in self.shape.paths() if p not in self._may_modify]

    def validate_against(self, root) -> List[Path]:
        """Paths whose live object violates the pattern (dirty but quiescent).

        Used by tests and by guarded mode diagnostics; an empty list means
        the live structure conforms.
        """
        violations: List[Path] = []

        def visit(obj, node: ShapeNode) -> None:
            if obj._ckpt_info.modified and not self.node_may_be_modified(node):
                violations.append(node.path)
            for edge in node.edges:
                child = self._follow(obj, edge)
                if child is not None:
                    visit(child, edge.node)

        visit(root, self.shape.root)
        return violations

    @staticmethod
    def _follow(obj, edge):
        if edge.index is None:
            return getattr(obj, "_f_" + edge.field)
        items = getattr(obj, "_f_" + edge.field)._items
        if edge.index >= len(items):
            return None
        return items[edge.index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = self.shape.node_count()
        live = len(self._may_modify)
        return f"ModificationPattern({live}/{total} positions may be modified)"
