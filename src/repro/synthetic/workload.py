"""Modification patterns for the synthetic benchmark.

The paper's experiments constrain *where* modified elements may occur
(which lists, which positions) and then randomly modify a given fraction
of the eligible elements before each checkpoint. This module computes the
eligible position set for a configuration, draws the modified subset with
a seeded RNG, applies the modifications (through the field descriptors, so
flags are maintained exactly as in production use), and can snapshot and
restore flag state so that several checkpointing variants run against an
identical modification state.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.core.checkpointable import Checkpointable
from repro.synthetic.structures import element_at, structure_objects, value_field_name

Position = Tuple[int, int]  # (list index, element index; 0 = list head)


def eligible_positions(
    num_lists: int,
    list_length: int,
    modified_lists: int,
    last_only: bool,
) -> List[Position]:
    """Positions where a modified element may occur.

    ``modified_lists`` restricts eligibility to the first *n* lists (the
    paper's Figure 9 knob); ``last_only`` further restricts to the final
    element of each eligible list (the Figure 10 knob). The list *head*
    object is the most recently prepended element, so the "last element"
    of the paper's lists is the deepest node, at index ``list_length - 1``.
    """
    if not 1 <= modified_lists <= num_lists:
        raise ValueError("modified_lists must be between 1 and num_lists")
    positions: List[Position] = []
    for list_index in range(modified_lists):
        if last_only:
            positions.append((list_index, list_length - 1))
        else:
            positions.extend((list_index, e) for e in range(list_length))
    return positions


def draw_modified_positions(
    count: int,
    eligible: Sequence[Position],
    percent_modified: float,
    seed: int,
) -> List[List[Position]]:
    """Per-structure lists of positions to modify.

    Exactly ``round(percent_modified * count * len(eligible))`` positions
    are modified across the whole population (sampled without replacement
    with a seeded RNG), so measured checkpoint sizes are deterministic.
    """
    if not 0.0 <= percent_modified <= 1.0:
        raise ValueError("percent_modified must be in [0, 1]")
    rng = random.Random(seed)
    universe = count * len(eligible)
    wanted = int(round(percent_modified * universe))
    chosen = rng.sample(range(universe), wanted)
    per_structure: List[List[Position]] = [[] for _ in range(count)]
    width = len(eligible)
    for flat in chosen:
        per_structure[flat // width].append(eligible[flat % width])
    return per_structure


def apply_modifications(
    structures: Sequence[Checkpointable],
    positions_per_structure: Sequence[List[Position]],
) -> int:
    """Mutate the chosen elements (writing their first integer field).

    Every write goes through the field descriptors, so modification flags
    are set exactly as they would be in production code. Returns the
    number of modified elements.
    """
    field = value_field_name(0)
    modified = 0
    for compound, positions in zip(structures, positions_per_structure):
        for list_index, element_index in positions:
            element = element_at(compound, list_index, element_index)
            setattr(element, field, getattr(element, field) + 1)
            modified += 1
    return modified


class FlagSnapshot:
    """Captured modification-flag state of a population of structures.

    Running a checkpoint variant resets the flags it records; restoring
    the snapshot lets the next variant observe the identical state.
    """

    def __init__(self, structures: Sequence[Checkpointable]) -> None:
        self._state = []
        for compound in structures:
            for obj in structure_objects(compound):
                info = obj._ckpt_info
                self._state.append((info, info.modified))

    def restore(self) -> None:
        for info, modified in self._state:
            if modified:
                info.set_modified()
            else:
                info.reset_modified()

    def modified_count(self) -> int:
        return sum(1 for _, modified in self._state if modified)

    def object_count(self) -> int:
        return len(self._state)
