"""Compound structures for the synthetic benchmark.

The paper's test program constructs 20,000 compound structures, each
containing five linked lists; list length and the number of integer
fields per element are experiment parameters. Element and compound
classes are generated on demand (one class per arity, cached), so every
configuration gets genuine checkpointable classes with generated
``record``/``fold`` methods, exactly like hand-written ones.

Layout of one structure with ``num_lists = 2`` and ``list_length = 3``::

    Compound_2
    ├── list0 → Element → Element → Element
    └── list1 → Element → Element → Element
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, scalar

_element_classes: Dict[int, type] = {}
_compound_classes: Dict[int, type] = {}


def list_field_name(index: int) -> str:
    """Name of the ``index``-th list head field of a compound class."""
    return f"list{index}"


def value_field_name(index: int) -> str:
    """Name of the ``index``-th integer payload field of an element."""
    return f"v{index}"


def element_class(ints_per_element: int) -> type:
    """The element class with the given payload arity (cached).

    Elements carry ``ints_per_element`` integer fields plus a ``next``
    link — the paper's "1 integer / 10 integers recorded per modified
    object" knob.
    """
    if ints_per_element < 1:
        raise ValueError("ints_per_element must be >= 1")
    cached = _element_classes.get(ints_per_element)
    if cached is not None:
        return cached
    namespace = {"__module__": __name__, "__qualname__": f"Element_{ints_per_element}"}
    for index in range(ints_per_element):
        namespace[value_field_name(index)] = scalar("int")
    namespace["next"] = child()
    cls = type(f"Element_{ints_per_element}", (Checkpointable,), namespace)
    _element_classes[ints_per_element] = cls
    setattr(sys.modules[__name__], cls.__name__, cls)
    return cls


def compound_class(num_lists: int) -> type:
    """The compound (root) class with the given number of lists (cached)."""
    if num_lists < 1:
        raise ValueError("num_lists must be >= 1")
    cached = _compound_classes.get(num_lists)
    if cached is not None:
        return cached
    namespace = {"__module__": __name__, "__qualname__": f"Compound_{num_lists}"}
    for index in range(num_lists):
        namespace[list_field_name(index)] = child()
    cls = type(f"Compound_{num_lists}", (Checkpointable,), namespace)
    _compound_classes[num_lists] = cls
    setattr(sys.modules[__name__], cls.__name__, cls)
    return cls


def build_structure(
    num_lists: int, list_length: int, ints_per_element: int
) -> Checkpointable:
    """One compound structure with freshly allocated lists."""
    element_cls = element_class(ints_per_element)
    compound = compound_class(num_lists)()
    for list_index in range(num_lists):
        head = None
        for _ in range(list_length):
            node = element_cls()
            node.next = head
            head = node
        setattr(compound, list_field_name(list_index), head)
    return compound


def build_structures(
    count: int, num_lists: int, list_length: int, ints_per_element: int
) -> List[Checkpointable]:
    """A population of identical-shaped compound structures."""
    return [
        build_structure(num_lists, list_length, ints_per_element)
        for _ in range(count)
    ]


def element_at(compound: Checkpointable, list_index: int, position: int):
    """The element at ``position`` (0 = head) of the given list."""
    node = getattr(compound, list_field_name(list_index))
    for _ in range(position):
        node = node.next
    return node


def structure_objects(compound: Checkpointable) -> List[Checkpointable]:
    """Every object of one structure: the root, then each list front-to-back."""
    found = [compound]
    for spec in compound._ckpt_schema:
        node = getattr(compound, spec.slot)
        while node is not None:
            found.append(node)
            node = node.next
    return found
