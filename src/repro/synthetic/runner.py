"""Experiment runner for the synthetic benchmark.

Builds a population of compound structures, applies a seeded modification
pattern, and runs any of the checkpointing variants against the *same*
modification state, reporting wall-clock time, checkpoint size, and
abstract-machine op counts (from which per-backend simulated times are
derived). Each variant runs as one
:class:`~repro.runtime.session.CheckpointSession` whose strategy is the
variant's checkpointing tier (:func:`variant_strategy`).

Variants
--------
``full``
    Generic full checkpointing (records everything).
``incremental``
    Generic incremental checkpointing (paper Figure 1) — the baseline all
    speedups are reported against.
``reflective``
    Incremental checkpointing through run-time schema interpretation (the
    serialization-style tier; wall-clock only).
``spec_struct``
    Specialized for the structure only (paper Figure 5 / Figure 8).
``spec_struct_mod``
    Specialized for structure *and* the experiment's declared modification
    pattern (paper Figure 6 / Figures 9-10).
``packed``
    Incremental flag walk recording through the batched ``record_packed``
    codec (one ``struct.pack_into`` per run of fixed-size fields).
``differential``
    The block dirtiness tier over the packed codec: clean blocks are
    skipped without traversal. Wall clock and op counts are measured at
    *steady state* — after the partition's baseline commit — which is the
    regime the tier exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.blocks import BlockTier
from repro.core.checkpoint import reset_flags
from repro.core.checkpointable import Checkpointable
from repro.core.storage import FULL, INCREMENTAL
from repro.runtime import (
    DEFAULT_STRATEGIES,
    CheckpointSession,
    SpecializedStrategy,
    Strategy,
)
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass, SpecializedCheckpointer
from repro.synthetic.structures import build_structures, list_field_name
from repro.synthetic.workload import (
    FlagSnapshot,
    apply_modifications,
    draw_modified_positions,
    eligible_positions,
)
from repro.vm.machine import MeteredMachine
from repro.vm.ops import OpCounts

VARIANTS = (
    "full",
    "incremental",
    "reflective",
    "spec_struct",
    "spec_struct_mod",
    "packed",
    "differential",
)


@dataclass
class SyntheticConfig:
    """One cell of the paper's synthetic experiment grid."""

    num_structures: int = 1000
    num_lists: int = 5
    list_length: int = 5
    ints_per_element: int = 1
    percent_modified: float = 1.0
    #: how many lists may contain modified elements (paper Figure 9)
    modified_lists: Optional[int] = None
    #: modified elements may only be the last of each list (Figure 10)
    last_only: bool = False
    seed: int = 20000501  # DSN 2000

    def __post_init__(self) -> None:
        if self.modified_lists is None:
            self.modified_lists = self.num_lists

    def describe(self) -> str:
        parts = [
            f"{self.num_structures} structures",
            f"{self.num_lists} lists x {self.list_length}",
            f"{self.ints_per_element} ints/elt",
            f"{int(self.percent_modified * 100)}% modified",
        ]
        if self.modified_lists != self.num_lists:
            parts.append(f"{self.modified_lists} modifiable lists")
        if self.last_only:
            parts.append("last element only")
        return ", ".join(parts)


@dataclass
class VariantResult:
    """Measurements of one checkpointing variant on one workload."""

    variant: str
    wall_seconds: float
    checkpoint_bytes: int
    counts: Optional[OpCounts]
    modified_objects: int
    spec_source: Optional[str] = None


class SyntheticWorkload:
    """A built population plus its frozen modification state."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config
        self.structures: List[Checkpointable] = build_structures(
            config.num_structures,
            config.num_lists,
            config.list_length,
            config.ints_per_element,
        )
        # The population is considered already checkpointed once: clear the
        # construction-time flags, then apply this round's modifications.
        for compound in self.structures:
            reset_flags(compound)
        self.eligible = eligible_positions(
            config.num_lists,
            config.list_length,
            config.modified_lists,
            config.last_only,
        )
        positions = draw_modified_positions(
            config.num_structures, self.eligible, config.percent_modified, config.seed
        )
        self.modified_count = apply_modifications(self.structures, positions)
        self.snapshot = FlagSnapshot(self.structures)

        self.shape: Shape = Shape.of(self.structures[0])
        self.pattern: ModificationPattern = ModificationPattern.only(
            self.shape, [self._position_path(p) for p in self.eligible]
        )

    def _position_path(self, position) -> tuple:
        list_index, element_index = position
        return (list_field_name(list_index),) + ("next",) * element_index

    def object_count(self) -> int:
        return self.snapshot.object_count()


def _specialized(workload: SyntheticWorkload, with_pattern: bool) -> SpecializedCheckpointer:
    pattern = workload.pattern if with_pattern else None
    name = "spec_struct_mod" if with_pattern else "spec_struct"
    return SpecializedCheckpointer(SpecClass(workload.shape, pattern, name=name))


def variant_strategy(
    workload: SyntheticWorkload, variant: str
) -> Strategy:
    """The session strategy implementing one benchmark variant."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    if variant in ("spec_struct", "spec_struct_mod"):
        return SpecializedStrategy(
            _specialized(workload, variant == "spec_struct_mod"), name=variant
        )
    return DEFAULT_STRATEGIES.create(variant)


def run_variant(
    workload: SyntheticWorkload,
    variant: str,
    meter: bool = True,
    meter_sample: Optional[int] = 500,
) -> VariantResult:
    """Measure one variant against the workload's modification state.

    The flag snapshot is restored before each run, so calling this for
    several variants measures them on identical states. ``meter_sample``
    bounds how many structures the (slow, interpreting) abstract machine
    executes; counts are scaled back up, which is accurate because op
    counts are additive across structures and modifications are drawn
    i.i.d. per structure.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    structures = workload.structures
    strategy = variant_strategy(workload, variant)
    spec_fn: Optional[SpecializedCheckpointer] = None
    if isinstance(strategy, SpecializedStrategy):
        spec_fn = strategy.checkpointer

    # -- wall clock over the real implementation ---------------------------
    # One session per variant; commits are timed over the strategy alone,
    # so wall-clock comparisons across variants measure the checkpointers,
    # not the sink.
    workload.snapshot.restore()
    session = CheckpointSession(roots=structures, strategy=strategy)
    if variant == "differential":
        # Baseline commit: partition + full walk. The timed commit below
        # then measures the steady-state regime (clean blocks skipped).
        session.commit(kind=INCREMENTAL)
        workload.snapshot.restore()
    committed = session.commit(kind=FULL if variant == "full" else INCREMENTAL)
    wall = committed.wall_seconds
    size = committed.size

    # -- abstract machine op counts ----------------------------------------
    counts: Optional[OpCounts] = None
    if meter and variant != "reflective":
        workload.snapshot.restore()
        sample = len(structures)
        if meter_sample is not None:
            sample = min(meter_sample, sample)
        machine = MeteredMachine()
        if variant == "full":
            for root in structures[:sample]:
                machine.run_full(root)
        elif variant == "incremental":
            for root in structures[:sample]:
                machine.run_incremental(root)
        elif variant == "packed":
            for root in structures[:sample]:
                machine.run_packed(root)
        elif variant == "differential":
            sample_roots = structures[:sample]
            tier = BlockTier()
            tier.partition(sample_roots)
            for block in tier.blocks:
                tier.mark_committed(block)  # as if the baseline commit ran
            workload.snapshot.restore()  # flag writes re-bump their blocks
            machine.run_differential(tier)
        else:
            residual = spec_fn.residual_ir
            for root in structures[:sample]:
                machine.run_residual(residual, root)
        counts = machine.counts
        if sample != len(structures):
            counts = counts.scaled(len(structures) / sample)

    return VariantResult(
        variant=variant,
        wall_seconds=wall,
        checkpoint_bytes=size,
        counts=counts,
        modified_objects=workload.modified_count,
        spec_source=spec_fn.source if spec_fn is not None else None,
    )


def run_variants(
    config: SyntheticConfig,
    variants=VARIANTS,
    meter: bool = True,
    meter_sample: Optional[int] = 500,
) -> Dict[str, VariantResult]:
    """Build one workload and measure the requested variants on it."""
    workload = SyntheticWorkload(config)
    return {
        variant: run_variant(workload, variant, meter, meter_sample)
        for variant in variants
    }


def speedup(baseline: VariantResult, candidate: VariantResult, profile=None) -> float:
    """Baseline-over-candidate time ratio (wall clock or simulated)."""
    if profile is None:
        return baseline.wall_seconds / candidate.wall_seconds
    if baseline.counts is None or candidate.counts is None:
        raise ValueError("both variants need op counts for simulated speedups")
    return profile.seconds(baseline.counts) / profile.seconds(candidate.counts)
