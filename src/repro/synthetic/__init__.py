"""The paper's synthetic application (section 5).

A configurable population of compound structures — each a root object
holding several linked lists of elements carrying integer payloads — with
controllable modification patterns: the fraction of modified elements, the
set of lists that may contain modified elements, and the positions within
each list where a modified element may occur. These are exactly the knobs
the paper's Figures 7-11 and Table 2 sweep.
"""

from repro.synthetic.runner import SyntheticConfig, SyntheticWorkload, run_variant
from repro.synthetic.structures import build_structure, build_structures

__all__ = [
    "SyntheticConfig",
    "SyntheticWorkload",
    "run_variant",
    "build_structure",
    "build_structures",
]
