"""Checkpoint strategies and the strategy registry.

A :class:`Strategy` is the unit a :class:`~repro.runtime.session.CheckpointSession`
plugs in at commit time: given the session's root objects and an output
stream, it writes one checkpoint in the shared wire format. Every tier of
the paper's evaluation is expressed as a strategy:

- the generic drivers (full / incremental / reflective / iterative /
  checking) via :class:`DriverStrategy`,
- the compiled per-structure routines of :mod:`repro.spec` via
  :class:`SpecializedStrategy`,
- the observation-driven, self-refining routines of paper section 7 via
  :class:`AutoSpecStrategy`.

Strategies are byte-compatible with the direct driver paths they replace:
``DriverStrategy("incremental", Checkpoint).write(roots, out)`` produces
exactly the bytes of ``driver = Checkpoint(out); for r in roots:
driver.checkpoint(r)`` (the equivalence tests pin this).

The :class:`StrategyRegistry` maps names to strategy factories so
strategies can be selected by configuration string and swapped at phase
boundaries — the session's per-phase overrides are resolved through it.
:data:`DEFAULT_STRATEGIES` registers the built-in tiers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.blocks import (
    DEFAULT_BLOCK_SIZE,
    HASH_OFF,
    HASH_SKIP,
    HASH_VERIFY,
    BlockTier,
)
from repro.core.checkpoint import (
    CheckingCheckpoint,
    Checkpoint,
    FullCheckpoint,
    IterativeCheckpoint,
    PackedCheckpoint,
    ReflectiveCheckpoint,
)
from repro.core.checkpointable import Checkpointable
from repro.core.errors import CheckpointError, PatternViolationError
from repro.core.streams import DataOutputStream, PackedEncoder
from repro.spec.autospec import AutoSpecializer, PatternObserver
from repro.spec.effects.analysis import EffectReport
from repro.spec.effects.wholeprogram import InferredPhase
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import (
    DEFAULT_COMPILER,
    SpecClass,
    SpecCompiler,
    SpecializedCheckpointer,
)


class Strategy:
    """How one commit turns root objects into checkpoint bytes."""

    #: display / registry name of the strategy
    name: str = "strategy"

    def write(
        self, roots: Sequence[Checkpointable], out: DataOutputStream
    ) -> None:
        """Write one checkpoint of ``roots`` into ``out``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class NullStrategy(Strategy):
    """Writes nothing (the ``none`` tier: baseline cost measurement)."""

    name = "none"

    def write(self, roots, out) -> None:
        pass


class DriverStrategy(Strategy):
    """Wrap one of the generic drivers of :mod:`repro.core.checkpoint`.

    A fresh driver is constructed per commit (drivers are cheap,
    stream-bound objects), then applied to every root in order — exactly
    the loop the pre-runtime consumers open-coded.
    """

    def __init__(self, name: str, driver_factory: Callable) -> None:
        self.name = name
        self.driver_factory = driver_factory

    def write(self, roots, out) -> None:
        driver = self.driver_factory(out)
        for root in roots:
            driver.checkpoint(root)


class PackedStrategy(Strategy):
    """The flag walk with the packed codec (``packed`` tier).

    Identical traversal to the ``incremental`` tier; entries are encoded
    by the generated ``record_packed`` methods into a reused
    :class:`~repro.core.streams.PackedEncoder` and appended to ``out`` in
    one ``write_bytes``. Byte-identical to ``incremental``.
    """

    name = "packed"

    def __init__(self) -> None:
        self._enc = PackedEncoder()

    def write(self, roots, out) -> None:
        enc = self._enc
        enc.clear()
        driver = PackedCheckpoint(enc)
        for root in roots:
            driver.checkpoint(root)
        out.write_bytes(enc.getvalue())


class DifferentialStrategy(Strategy):
    """Block-tier differential commit over the packed codec.

    Partitions the roots into :class:`~repro.core.blocks.BlockTier`
    blocks on first use (and again whenever the partition goes out of
    sync — different roots, or any structural edge mutation since). At
    commit, blocks whose generation counters prove them clean are
    skipped without traversal; the flag walk runs only inside dirty
    blocks. With ``hash_mode="off"`` (the registered ``differential``
    tier) the epoch bytes are identical to the ``incremental`` tier's.

    ``hash_mode="verify"`` re-fingerprints generation-clean blocks and
    re-flags (never drops) any block whose content changed behind the
    flags' back; ``hash_mode="skip"`` additionally elides flag-dirty
    blocks whose content fingerprint is unchanged — restore-equivalent,
    not byte-identical.

    :attr:`last_stats` reports, per commit: blocks walked / skipped /
    hash-skipped / healed, plus cumulative repartition counts.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        hash_mode: str = HASH_OFF,
    ) -> None:
        self.tier = BlockTier(block_size=block_size, hash_mode=hash_mode)
        self.name = (
            "differential" if hash_mode == HASH_OFF else f"differential-{hash_mode}"
        )
        self._enc = PackedEncoder()
        self.last_stats: dict = {}

    def write(self, roots, out) -> None:
        roots = list(roots)
        tier = self.tier
        repartitioned = not tier.in_sync(roots)
        if repartitioned:
            tier.partition(roots)
        enc = self._enc
        enc.clear()
        driver = PackedCheckpoint(enc)
        skipped = walked = healed = hash_skips = 0
        for block in tier.blocks:
            clean = tier.is_clean(block)
            if clean and tier.hash_mode == HASH_VERIFY:
                if not tier.fingerprint_unchanged(block):
                    # Content moved without a flag: an unflagged mutation
                    # bypassed the protocol. Re-flag the whole block so
                    # the walk below re-records it (over-approximation,
                    # never silent loss).
                    tier.heal(block)
                    healed += 1
                    clean = False
            if clean:
                skipped += 1
                continue
            if tier.hash_mode == HASH_SKIP and tier.fingerprint_unchanged(block):
                # Flags were raised but the content round-tripped back to
                # its committed state: clear the flags, emit nothing.
                for obj in tier.members(block):
                    obj._ckpt_info.reset_modified()
                tier.mark_committed(block)
                hash_skips += 1
                continue
            size_before = enc.pos
            for root in block.roots:
                driver.checkpoint(root)
            tier.mark_committed(block)
            if tier.hash_mode != HASH_OFF and enc.pos != size_before:
                tier.refresh_fingerprint(block)
            walked += 1
        out.write_bytes(enc.getvalue())
        self.last_stats = {
            "blocks": len(tier.blocks),
            "walked": walked,
            "skipped": skipped,
            "hash_skipped": hash_skips,
            "healed": healed,
            "repartitioned": repartitioned,
            "repartitions_total": tier.repartitions,
        }

    # -- trial-commit purity (used by CheckpointSession.measure) -----------

    def snapshot_state(self):
        """Capture tier state so a trial commit can be rolled back."""
        return self.tier.snapshot_state()

    def restore_state(self, state) -> None:
        self.tier.restore_state(state)


class SpecializedStrategy(Strategy):
    """Commit through a compiled, monolithic specialized routine."""

    def __init__(
        self, checkpointer: SpecializedCheckpointer, name: Optional[str] = None
    ) -> None:
        self.checkpointer = checkpointer
        self.name = name or f"specialized:{checkpointer.spec.name}"

    def write(self, roots, out) -> None:
        self.checkpointer.checkpoint_all(roots, out)

    @property
    def source(self) -> str:
        """The generated Python source of the routine."""
        return self.checkpointer.source

    @classmethod
    def from_spec(
        cls,
        spec: SpecClass,
        compiler: Optional[SpecCompiler] = None,
        name: Optional[str] = None,
    ) -> "SpecializedStrategy":
        """Compile a :class:`~repro.spec.specclass.SpecClass` declaration."""
        compiler = compiler or DEFAULT_COMPILER
        return cls(compiler.compile(spec), name=name)

    @classmethod
    def for_prototype(
        cls,
        prototype: Checkpointable,
        pattern: Optional[ModificationPattern] = None,
        name: str = "spec_checkpoint",
        guards: bool = False,
        compiler: Optional[SpecCompiler] = None,
    ) -> "SpecializedStrategy":
        """Derive shape facts from a prototype and compile."""
        spec = SpecClass.for_prototype(prototype, pattern, name, guards)
        return cls.from_spec(spec, compiler=compiler)


class InferredStrategy(SpecializedStrategy):
    """The ``inferred`` tier: specialization derived by static analysis.

    Where :class:`SpecializedStrategy` compiles a *declared* pattern and
    :class:`AutoSpecStrategy` observes one at run time, this tier compiles
    the pattern the whole-program effect analysis *proved*: sound by
    construction, so the routine runs **unguarded** — exactly the paper's
    "automatically construct specialization classes" future work, closed
    statically. Build it from phase functions (:meth:`from_phases`) or
    from one inter-commit region of a driver (:meth:`from_inferred`, fed
    by :func:`~repro.spec.effects.wholeprogram.infer_phases` — usually via
    :meth:`~repro.runtime.session.CheckpointSession.bind_program`).
    """

    def __init__(
        self, checkpointer: SpecializedCheckpointer, name: Optional[str] = None
    ) -> None:
        super().__init__(
            checkpointer, name=name or f"inferred:{checkpointer.spec.name}"
        )

    @property
    def report(self) -> Optional[EffectReport]:
        """The effect report the pattern was proven from."""
        return self.checkpointer.spec.static_report

    @classmethod
    def from_phases(
        cls,
        shape: Shape,
        phases,
        name: str = "inferred_ckpt",
        roots=None,
        compiler: Optional[SpecCompiler] = None,
    ) -> "InferredStrategy":
        """Analyse the phase functions and compile the proven pattern."""
        spec = SpecClass.from_static_analysis(shape, phases, name=name, roots=roots)
        compiler = compiler or DEFAULT_COMPILER
        return cls(compiler.compile(spec))

    @classmethod
    def from_inferred(
        cls,
        phase: InferredPhase,
        name: Optional[str] = None,
        compiler: Optional[SpecCompiler] = None,
    ) -> "InferredStrategy":
        """Compile one inferred inter-commit phase of a driver."""
        spec = phase.spec(name=name)
        compiler = compiler or DEFAULT_COMPILER
        return cls(compiler.compile(spec))


class AutoSpecStrategy(Strategy):
    """Observation-driven specialization (paper section 7), as a strategy.

    The first commit observes which positions the preceding phase actually
    dirtied and checkpoints generically; later commits run the guarded
    auto-derived routine, widening the pattern and recompiling whenever a
    root violates it (so no modification is ever dropped).
    """

    def __init__(
        self,
        shape: Optional[Shape] = None,
        name: str = "auto_spec",
        observer: Optional[PatternObserver] = None,
        auto: Optional[AutoSpecializer] = None,
    ) -> None:
        if auto is None:
            if shape is None:
                raise CheckpointError(
                    "AutoSpecStrategy needs a shape (or a prebuilt "
                    "AutoSpecializer)"
                )
            auto = AutoSpecializer(
                shape, observer or PatternObserver(shape), name=name
            )
        self.auto = auto
        self.name = f"autospec:{auto.name}"

    def write(self, roots, out) -> None:
        auto = self.auto
        if auto.observer.observations == 0:
            # First commit: observe what actually got dirty, then
            # checkpoint generically (nothing is declared yet).
            for root in roots:
                auto.observer.observe(root)
            driver = Checkpoint(out)
            for root in roots:
                driver.checkpoint(root)
            return
        function = auto.compiled()
        roots = list(roots)
        index = 0
        while index < len(roots):
            try:
                function(roots[index], out)
            except PatternViolationError:
                # The phase touched something outside the derived pattern:
                # widen it, recompile, and retry this structure.
                function = auto.refine(roots[index])
                continue
            index += 1


class StrategyRegistry:
    """Named strategy factories; the session's selection seam.

    A factory is a zero-argument callable returning a fresh
    :class:`Strategy`. Registries are cheap to :meth:`copy`, so a session
    (or a test) can extend one without mutating the shared default.
    """

    def __init__(
        self, factories: Optional[Dict[str, Callable[[], Strategy]]] = None
    ) -> None:
        self._factories: Dict[str, Callable[[], Strategy]] = dict(
            factories or {}
        )

    def register(
        self, name: str, factory: Callable[[], Strategy], replace: bool = False
    ) -> None:
        """Register ``factory`` under ``name``.

        Re-registering an existing name raises unless ``replace=True`` —
        silently shadowing a tier is how benchmarks stop measuring what
        they claim to.
        """
        if not replace and name in self._factories:
            raise CheckpointError(
                f"strategy {name!r} is already registered "
                "(pass replace=True to override)"
            )
        self._factories[name] = factory

    def register_inferred(
        self,
        name: str,
        shape: Shape,
        phases,
        roots=None,
        replace: bool = False,
    ) -> None:
        """Register an ``inferred`` tier derived from ``phases`` by analysis.

        Analysis and compilation run once, lazily, on the first
        :meth:`create` — so registering a tier that is never selected
        costs nothing, and repeated creates share one compiled routine
        (it is stateless between commits).
        """
        cell: List[InferredStrategy] = []
        # the spec name becomes the generated function's name, so it must
        # be an identifier even when the registry name is not
        spec_name = "".join(
            c if c.isalnum() or c == "_" else "_" for c in name
        )
        if not spec_name or spec_name[0].isdigit():
            spec_name = f"inferred_{spec_name}"

        def factory() -> Strategy:
            if not cell:
                cell.append(
                    InferredStrategy.from_phases(
                        shape, phases, name=spec_name, roots=roots
                    )
                )
            return cell[0]

        self.register(name, factory, replace=replace)

    def create(self, name: str) -> Strategy:
        """Instantiate the strategy registered under ``name``."""
        factory = self._factories.get(name)
        if factory is None:
            raise CheckpointError(
                f"unknown strategy {name!r}; registered: "
                f"{', '.join(self.names())}"
            )
        strategy = factory()
        if not isinstance(strategy, Strategy):
            raise CheckpointError(
                f"strategy factory {name!r} returned {strategy!r}, "
                "not a Strategy"
            )
        return strategy

    def resolve(self, spec) -> Strategy:
        """Turn a name, a :class:`Strategy`, or a factory into a strategy."""
        if isinstance(spec, Strategy):
            return spec
        if isinstance(spec, str):
            return self.create(spec)
        if callable(spec):
            strategy = spec()
            if not isinstance(strategy, Strategy):
                raise CheckpointError(
                    f"strategy factory returned {strategy!r}, not a Strategy"
                )
            return strategy
        raise CheckpointError(
            f"cannot resolve {spec!r} to a strategy (expected a registered "
            "name, a Strategy, or a factory)"
        )

    def names(self) -> List[str]:
        return sorted(self._factories)

    def copy(self) -> "StrategyRegistry":
        return StrategyRegistry(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


#: The built-in tiers, by their names throughout the paper's evaluation.
DEFAULT_STRATEGIES = StrategyRegistry(
    {
        "none": NullStrategy,
        "full": lambda: DriverStrategy("full", FullCheckpoint),
        "incremental": lambda: DriverStrategy("incremental", Checkpoint),
        "reflective": lambda: DriverStrategy("reflective", ReflectiveCheckpoint),
        "iterative": lambda: DriverStrategy("iterative", IterativeCheckpoint),
        "checking": lambda: DriverStrategy("checking", CheckingCheckpoint),
        "packed": PackedStrategy,
        "differential": DifferentialStrategy,
        "differential-verify": lambda: DifferentialStrategy(
            hash_mode=HASH_VERIFY
        ),
    }
)
