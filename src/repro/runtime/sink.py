"""Sinks: where committed epochs go.

The paper drains the checkpoint output stream to stable storage; the
consumers in this repository grew three different drains — raw
:class:`~repro.core.streams.DataOutputStream` byte buffers, the
:class:`~repro.core.storage.MemoryStore`/:class:`~repro.core.storage.FileStore`
stores, and the asynchronous :class:`~repro.core.storage.BackgroundWriter`.
A :class:`Sink` unifies them behind one ``put(kind, data)`` path so the
:class:`~repro.runtime.session.CheckpointSession` commits identically no
matter what is underneath:

- :class:`NullSink` — discard (measurement-only sessions),
- :class:`BufferSink` — keep epochs in process (tests, examples, replay),
- :class:`StoreSink` — append to any :class:`~repro.core.storage.CheckpointStore`,
  including a :class:`~repro.core.storage.BackgroundWriter` front (whose
  queue is flushed before recovery or compaction).

:func:`sink_for` coerces what a caller naturally has — ``None``, a store,
a directory path, or a sink — into a sink.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

from repro.core.errors import StorageError
from repro.core.lineage import AUTO, EpochRef, Lineage
from repro.core.registry import ClassRegistry
from repro.core.restore import ObjectTable
from repro.core.retry import RetryPolicy, RetryStats
from repro.core.storage import (
    BackgroundWriter,
    CheckpointStore,
    Epoch,
    FileStore,
    MemoryStore,
    compact as storage_compact,
)
from repro.obs.metrics import NULL_METRICS, DEFAULT_LATENCY_BUCKETS
from repro.obs.tracer import NULL_TRACER


class Sink:
    """One ``commit()`` target; epochs enter in order through :meth:`put`."""

    #: whether :meth:`recover` is meaningful for this sink
    can_recover: bool = False
    #: whether :meth:`compact` is meaningful for this sink
    can_compact: bool = False
    #: observability hooks; the no-op singletons until :meth:`instrument`
    tracer = NULL_TRACER
    metrics = NULL_METRICS

    def instrument(self, tracer, metrics) -> None:
        """Attach a tracer/metrics pair (a session passes its own down).

        Hooks already set explicitly are kept — only the no-op defaults
        are replaced, so a sink instrumented at construction time wins
        over the session-level wiring.
        """
        if self.tracer is NULL_TRACER:
            self.tracer = tracer
        if self.metrics is NULL_METRICS:
            self.metrics = metrics

    def put(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Optional[int]:
        """Accept one epoch; returns its index when the sink assigns one.

        The lineage keywords (see
        :meth:`repro.core.storage.CheckpointStore.append`) place the
        epoch in the store's lineage graph; sinks without a store
        ignore them.
        """
        raise NotImplementedError

    def lineage(self) -> Lineage:
        """The epoch lineage graph of the sink's durable store."""
        raise StorageError(f"{type(self).__name__} keeps no epoch lineage")

    def materialize(
        self, target: EpochRef, registry: Optional[ClassRegistry] = None
    ) -> ObjectTable:
        """The object table exactly as it was live at epoch ``target``."""
        raise StorageError(f"{type(self).__name__} cannot restore state")

    def durability(self) -> str:
        """What :meth:`put` returning means for the epoch's durability.

        One of ``"durable"`` (synchronously persisted), ``"queued"``
        (handed to an asynchronous writer), ``"buffered"`` (held in
        process memory), or ``"discarded"``.
        """
        return "buffered"

    def flush(self) -> None:
        """Block until everything put so far is durable (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink accepts no further epochs."""

    def recover(self, registry: Optional[ClassRegistry] = None) -> ObjectTable:
        """Rebuild the object table from the sink's recovery line."""
        raise StorageError(f"{type(self).__name__} cannot recover state")

    def compact(
        self,
        registry: Optional[ClassRegistry] = None,
        keep_history: bool = False,
        branch: Optional[str] = None,
    ) -> int:
        """Fold the recovery line into a fresh full epoch (see storage)."""
        raise StorageError(f"{type(self).__name__} cannot compact")


class NullSink(Sink):
    """Swallows every epoch: sessions that only measure, never persist."""

    def __init__(self) -> None:
        self.discarded = 0

    def put(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Optional[int]:
        self.discarded += 1
        return None

    def durability(self) -> str:
        return "discarded"


class StoreSink(Sink):
    """Drain epochs into any :class:`~repro.core.storage.CheckpointStore`.

    A :class:`~repro.core.storage.BackgroundWriter` works transparently:
    ``flush``/``close`` delegate to it, and recovery/compaction flush the
    queue first, then operate on the durable backing store.

    With a :class:`~repro.core.retry.RetryPolicy`, transient append
    failures (``OSError`` and friends) are retried on the committing
    thread before the error surfaces; every retry is counted in
    :attr:`retry_stats` so commit receipts can report it.
    """

    can_recover = True
    can_compact = True

    def __init__(
        self, store: CheckpointStore, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.store = store
        self.retry = retry
        #: retry accounting for this sink's puts
        self.retry_stats = RetryStats()

    def instrument(self, tracer, metrics) -> None:
        super().instrument(tracer, metrics)
        propagate = getattr(self.store, "instrument", None)
        if propagate is not None:
            propagate(self.tracer, self.metrics)

    def put(
        self,
        kind: str,
        data: bytes,
        *,
        parent=AUTO,
        branch: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Optional[int]:
        if not (self.tracer.enabled or self.metrics.enabled):
            return self._put(kind, data, parent, branch, name)
        start = time.perf_counter()
        index = self._put(kind, data, parent, branch, name)
        elapsed = time.perf_counter() - start
        self.tracer.event(
            "sink.put", kind=kind, bytes=len(data), index=index,
            wall_seconds=elapsed, branch=branch, name=name,
        )
        self.metrics.histogram(
            "sink_put_seconds", buckets=DEFAULT_LATENCY_BUCKETS
        ).observe(elapsed)
        return index

    def _put(self, kind, data, parent, branch, name) -> Optional[int]:
        if self.retry is None:
            return self.store.append(
                kind, data, parent=parent, branch=branch, name=name
            )
        return self.retry.run(
            lambda: self.store.append(
                kind, data, parent=parent, branch=branch, name=name
            ),
            on_retry=lambda attempt, exc, _d: self.retry_stats.note(
                "put", attempt, exc
            ),
        )

    def durability(self) -> str:
        store = self.store
        if isinstance(store, BackgroundWriter):
            if not store.degraded:
                return "queued"
            store = store.backing
        # A replicated store distinguishes "every replica acked"
        # ("durable") from "only a write quorum did" ("quorum").
        reported = getattr(store, "durability", None)
        if callable(reported):
            return reported()
        return "durable"

    def flush(self) -> None:
        flush = getattr(self.store, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def _durable_store(self) -> CheckpointStore:
        """The synchronous store, with any async front flushed."""
        store = self.store
        if isinstance(store, BackgroundWriter):
            store.flush()
            return store.backing
        return store

    def recover(self, registry: Optional[ClassRegistry] = None) -> ObjectTable:
        return self.store.recover(registry)

    def materialize(
        self, target: EpochRef, registry: Optional[ClassRegistry] = None
    ) -> ObjectTable:
        return self._durable_store().materialize(target, registry)

    def lineage(self) -> Lineage:
        return Lineage(self._durable_store().epochs())

    def compact(
        self,
        registry: Optional[ClassRegistry] = None,
        keep_history: bool = False,
        branch: Optional[str] = None,
    ) -> int:
        return storage_compact(
            self._durable_store(),
            registry,
            keep_history=keep_history,
            branch=branch,
        )

    def epochs(self) -> List[Epoch]:
        """The durable epochs of the underlying store."""
        return self._durable_store().epochs()


class BufferSink(StoreSink):
    """In-process sink over a private :class:`~repro.core.storage.MemoryStore`.

    The session-API replacement for collecting raw checkpoint bytes in a
    list: epochs stay addressable by kind and index, and the standard
    recovery line (latest full + following deltas) replays them.
    """

    def __init__(self) -> None:
        super().__init__(MemoryStore())

    def data(self, index: int) -> bytes:
        """The payload of epoch ``index``."""
        return self.store.epochs()[index].data

    def __len__(self) -> int:
        return len(self.store.epochs())


def sink_for(target, retry: Optional[RetryPolicy] = None) -> Sink:
    """Coerce ``target`` into a :class:`Sink`.

    - ``None`` → :class:`NullSink` (nothing is persisted),
    - a :class:`Sink` → itself,
    - a :class:`~repro.core.storage.CheckpointStore` (including
      :class:`~repro.core.storage.BackgroundWriter`) → :class:`StoreSink`,
    - a directory path → :class:`StoreSink` over a new
      :class:`~repro.core.storage.FileStore` there.

    ``retry`` attaches a :class:`~repro.core.retry.RetryPolicy` to the
    :class:`StoreSink` this function builds (an existing sink passed in
    keeps whatever policy it already has).
    """
    if target is None:
        return NullSink()
    if isinstance(target, Sink):
        return target
    if isinstance(target, CheckpointStore):
        return StoreSink(target, retry=retry)
    if isinstance(target, (str, os.PathLike)):
        return StoreSink(FileStore(os.fspath(target)), retry=retry)
    raise StorageError(
        f"cannot use {target!r} as a checkpoint sink (expected None, a "
        "Sink, a CheckpointStore, or a directory path)"
    )
