"""The checkpoint session: one seam over the paper's whole pipeline.

``generic driver → specialized per-phase routine → output stream → stable
storage`` used to be wired separately by every consumer in this
repository. A :class:`CheckpointSession` owns that pipeline once:

- the **root objects** being checkpointed (a fixed sequence or a callable
  for live collections),
- the **strategy** producing each checkpoint's bytes, selected by name
  through a :class:`~repro.runtime.strategy.StrategyRegistry` and
  overridable *per phase* — the paper's per-phase specialization means a
  session swaps strategies at phase boundaries
  (:meth:`CheckpointSession.bind`),
- the **epoch policy** deciding full-vs-delta cadence and delta-chain
  length bounds (:class:`~repro.runtime.policy.EpochPolicy`), including
  automatic compaction of the attached store,
- the **sink** the committed epochs drain into
  (:mod:`repro.runtime.sink`).

Typical lifecycle::

    session = CheckpointSession(roots=root, sink="ckpts/")
    session.base()                    # full checkpoint: the recovery base
    while working:
        mutate(root)                  # flags tracked by the framework
        session.commit()              # one incremental delta epoch
    table = session.recover()         # base + deltas -> live state

Commits are byte-identical to the direct driver paths they replaced; the
equivalence test suite pins this for every strategy tier.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.checkpoint import (
    CheckingCheckpoint,
    FullCheckpoint,
    restore_flags,
    set_all_flags,
    snapshot_flags,
)
from repro.core.checkpointable import Checkpointable
from repro.core.errors import CheckpointError, RestoreError, StorageError
from repro.core.lineage import AUTO, MAIN_BRANCH, EpochRef, Lineage
from repro.core.registry import DEFAULT_REGISTRY, ClassRegistry
from repro.core.restore import ObjectTable
from repro.core.retry import RetryPolicy
from repro.core.storage import FULL, INCREMENTAL, _KIND_CODES
from repro.core.streams import DataOutputStream
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.policy import EpochPolicy
from repro.runtime.sink import Sink, sink_for
from repro.runtime.strategy import (
    DEFAULT_STRATEGIES,
    DriverStrategy,
    NullStrategy,
    Strategy,
    StrategyRegistry,
)

#: one shared instance; the full driver is stateless between commits
_FULL_DRIVER = DriverStrategy("full", FullCheckpoint)
#: the degradation target: generic, checked, assumes nothing proved
_CHECKED_DRIVER = DriverStrategy("checking", CheckingCheckpoint)

RootsLike = Union[
    Checkpointable,
    Sequence[Checkpointable],
    Callable[[], Sequence[Checkpointable]],
]


def _roots_provider(roots: RootsLike) -> Callable[[], Sequence[Checkpointable]]:
    """Normalize what callers naturally have into a roots callable."""
    if callable(roots) and not isinstance(roots, Checkpointable):
        return roots
    if isinstance(roots, Checkpointable):
        single = (roots,)
        return lambda: single
    try:
        fixed = list(roots)
    except TypeError:
        raise CheckpointError(
            f"cannot use {roots!r} as session roots (expected a "
            "Checkpointable, a sequence of them, or a callable)"
        )
    for obj in fixed:
        if not isinstance(obj, Checkpointable):
            raise CheckpointError(
                f"session root {obj!r} is not a Checkpointable"
            )
    return lambda: fixed


@dataclass
class CommitReceipt:
    """The durability story of one commit.

    Produced for every persisted commit: what the sink did with the
    epoch, how many transient failures were retried on the way, and any
    degradation the runtime performed to keep the delta chain sound
    (strategy fallback, escalation of the next epoch to a full).
    """

    #: ``"durable"`` / ``"queued"`` / ``"buffered"`` / ``"discarded"``
    durability: str = "unknown"
    #: transient failures retried while persisting this epoch
    retries: int = 0
    #: the strategy raised and the generic checked driver took over
    degraded: bool = False
    #: this epoch was escalated to a full checkpoint to repair the chain
    escalated: bool = False
    #: wall time the failed specialized attempt consumed before raising
    failed_wall_seconds: Optional[float] = None
    #: wall time of the checked-driver re-record after the fallback
    fallback_wall_seconds: Optional[float] = None
    #: replicas that acked this epoch (replicated sinks only, else None)
    replicas_acked: Optional[List[str]] = None
    #: write quorum the commit had to meet (replicated sinks only)
    replica_quorum: Optional[int] = None
    #: replicas that missed the epoch — fenced or failing (replicated sinks)
    degraded_replicas: Optional[List[str]] = None
    #: human-readable record of every degradation/escalation/retry event
    events: List[str] = field(default_factory=list)


@dataclass
class CommitResult:
    """What one commit produced (and how long the strategy took)."""

    kind: str
    data: bytes
    wall_seconds: float
    strategy: str
    phase: Optional[str] = None
    #: index assigned by the sink's store, when it assigns one
    epoch_index: Optional[int] = None
    #: whether this commit triggered an automatic compaction
    compacted: bool = False
    #: durability state, retries, and degradation events of this commit
    receipt: Optional[CommitReceipt] = None
    #: lineage branch the epoch was appended to
    branch: Optional[str] = None
    #: checkpoint name pinned to the epoch (``session.checkpoint(name)``)
    epoch_name: Optional[str] = None

    @property
    def size(self) -> int:
        return len(self.data)


class CheckpointSession:
    """Owns roots, strategy selection, epoch cadence, and the sink.

    Parameters
    ----------
    roots:
        What gets checkpointed: a single :class:`Checkpointable`, a
        sequence of them, or a zero-argument callable returning the
        current sequence (for collections that change between commits).
    strategy:
        The default strategy: a registered name, a
        :class:`~repro.runtime.strategy.Strategy` instance, or a factory.
    registry:
        The :class:`~repro.runtime.strategy.StrategyRegistry` names are
        resolved against (default: the built-in tiers).
    policy:
        The :class:`~repro.runtime.policy.EpochPolicy`
        (default: :meth:`~repro.runtime.policy.EpochPolicy.delta_only`).
    sink:
        Where epochs go — anything :func:`~repro.runtime.sink.sink_for`
        accepts: ``None``, a store, a directory path, or a sink.
    retry:
        Optional :class:`~repro.core.retry.RetryPolicy` attached to the
        sink this session builds: transient persistence failures are
        retried on the commit path and counted in the commit's receipt.
    class_registry:
        The :class:`~repro.core.registry.ClassRegistry` used for recovery
        and compaction (default: the process-wide registry).
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`: every commit emits
        typed ``commit.start``/``commit.end`` (plus fallback, compaction,
        retry) events through it, and the sink is instrumented with it
        too. Default: the shared no-op :data:`~repro.obs.tracer.NULL_TRACER`
        — the hot path then performs no extra timer calls or allocation.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` recording
        per-phase commit latency histograms, byte counters, strategy-tier
        hit counts, and retry/degradation totals.
    """

    def __init__(
        self,
        roots: RootsLike = (),
        strategy: Union[str, Strategy, Callable[[], Strategy]] = "incremental",
        *,
        registry: Optional[StrategyRegistry] = None,
        policy: Optional[EpochPolicy] = None,
        sink=None,
        retry: Optional[RetryPolicy] = None,
        class_registry: Optional[ClassRegistry] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry or DEFAULT_STRATEGIES
        self.policy = policy or EpochPolicy.delta_only()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.sink: Sink = sink_for(sink, retry=retry)
        self.sink.instrument(self.tracer, self.metrics)
        self.class_registry = class_registry or DEFAULT_REGISTRY
        self._roots = _roots_provider(roots)
        #: whether the caller supplied a live callable (then the caller —
        #: not restore() — owns rebinding its collection to restored objects)
        self._roots_live = callable(roots) and not isinstance(
            roots, Checkpointable
        )
        self._default = self.registry.resolve(strategy)
        #: guards the session's mutable bookkeeping (counters, history,
        #: escalation/degradation state, phase bindings) against commits
        #: racing bind/compact/close from other threads; reentrant so
        #: the commit path may call :meth:`compact`
        self._state_lock = threading.RLock()
        self._phase_specs: Dict[str, object] = {}
        self._phase_cache: Dict[str, Strategy] = {}
        self._closed = False
        #: the next policy-decided epoch must be a full (chain repair)
        self._escalate_full = False
        #: lineage branch the next commit appends to
        self._branch = MAIN_BRANCH
        #: explicit parent the next commit must pin to (set by restore/fork;
        #: None means the store auto-resolves the branch tip)
        self._pending_parent: Optional[int] = None

        #: optional shadow-heap dirtiness oracle (attach_oracle)
        self._oracle = None

        #: epochs committed through this session (base() included)
        self.commits = 0
        #: checkpoint bytes produced by committed epochs
        self.bytes_written = 0
        #: incremental epochs since the last full epoch
        self.deltas_since_full = 0
        #: automatic + explicit compactions performed
        self.compactions = 0
        #: strategy fallbacks performed (specialized commit raised)
        self.degradations = 0
        #: restores performed (``restore()`` and rebinding ``fork()``)
        self.restores = 0
        #: branch forks started through this session
        self.forks = 0
        #: every commit's :class:`CommitResult`, in order
        self.history: List[CommitResult] = []

    # -- strategy selection --------------------------------------------------

    def bind(self, phase: str, strategy) -> None:
        """Override the strategy used for commits tagged ``phase``.

        ``strategy`` is resolved through the session's registry: a name,
        a :class:`~repro.runtime.strategy.Strategy`, or a factory
        (factories are resolved lazily, on the phase's first commit).
        Rebinding a phase replaces the override.
        """
        with self._state_lock:
            self._phase_specs[phase] = strategy
            self._phase_cache.pop(phase, None)

    def bind_inferred(
        self,
        phase: str,
        shape,
        phase_fns,
        roots=None,
        name: Optional[str] = None,
    ) -> Strategy:
        """Bind ``phase`` to a statically-inferred specialization.

        The may-modify analysis proves a pattern for ``phase_fns`` over
        ``shape`` and compiles it unguarded (it is sound by construction);
        commits tagged ``phase`` then run the specialized routine. Returns
        the bound :class:`~repro.runtime.strategy.InferredStrategy`.
        """
        from repro.runtime.strategy import InferredStrategy

        strategy = InferredStrategy.from_phases(
            shape, phase_fns, name=name or f"inferred_{phase}", roots=roots
        )
        self.bind(phase, strategy)
        return strategy

    def bind_program(
        self,
        shape,
        driver,
        roots=None,
        session_params: Sequence[str] = ("session",),
    ):
        """Infer per-phase patterns from a whole driver function and bind them.

        ``driver`` is scanned for ``session.commit(phase=...)`` sites, the
        inter-commit regions are analyzed, and every labeled phase is bound
        to an unguarded inferred specialization — the session configures
        itself from the program text. Returns the
        :class:`~repro.spec.effects.wholeprogram.WholeProgramReport` (for
        provenance and diagnostics).
        """
        from repro.runtime.strategy import InferredStrategy
        from repro.spec.effects.wholeprogram import infer_phases

        report = infer_phases(
            shape, driver, roots=roots, session_params=session_params
        )
        bindable = report.bindable()
        if not bindable:
            raise CheckpointError(
                f"no labeled commit site found in {driver.__name__!r}: "
                "nothing to bind (label commits with "
                "session.commit(phase=...))"
            )
        for label, phase in bindable.items():
            self.bind(label, InferredStrategy.from_inferred(phase))
        return report

    def bound(self, phase: str) -> bool:
        """Whether ``phase`` has its own strategy override."""
        return phase in self._phase_specs

    def unbind(self, phase: Optional[str] = None) -> None:
        """Drop one phase's strategy override — or all of them.

        Used when the facts a bound strategy was compiled against change
        (e.g. recovery replaced the structures it was specialized for).
        """
        with self._state_lock:
            if phase is None:
                self._phase_specs.clear()
                self._phase_cache.clear()
            else:
                self._phase_specs.pop(phase, None)
                self._phase_cache.pop(phase, None)

    def strategy_for(self, phase: Optional[str] = None) -> Strategy:
        """The strategy a commit tagged ``phase`` would use."""
        with self._state_lock:
            if phase is None or phase not in self._phase_specs:
                return self._default
            cached = self._phase_cache.get(phase)
            if cached is None:
                cached = self.registry.resolve(self._phase_specs[phase])
                self._phase_cache[phase] = cached
            return cached

    # -- committing ----------------------------------------------------------

    def roots(self) -> Sequence[Checkpointable]:
        """The current root objects."""
        return self._roots()

    def base(
        self,
        roots: Optional[RootsLike] = None,
        name: Optional[str] = None,
    ) -> CommitResult:
        """Record a full checkpoint: the base of the incremental chain.

        Always uses the full driver — every reachable object is recorded
        and flags are cleared, so subsequent :meth:`commit` deltas apply
        on top of it. ``name`` pins the epoch as a named checkpoint.
        """
        return self._commit(
            _FULL_DRIVER, FULL, phase=None, roots=roots, name=name
        )

    def checkpoint(
        self,
        name: str,
        phase: Optional[str] = None,
        roots: Optional[RootsLike] = None,
    ) -> CommitResult:
        """Commit one epoch pinned under ``name`` (a named checkpoint).

        A named epoch is addressable by name in :meth:`restore` /
        :meth:`fork`, and compaction never deletes it or the chain that
        materializes it. Names are unique per store; reusing one raises
        :class:`~repro.core.errors.StorageError`.
        """
        return self.commit(phase=phase, roots=roots, name=name)

    def commit(
        self,
        phase: Optional[str] = None,
        roots: Optional[RootsLike] = None,
        kind: Optional[str] = None,
        name: Optional[str] = None,
    ) -> CommitResult:
        """Record one checkpoint epoch through the session pipeline.

        With ``kind=None`` the epoch policy decides: a scheduled full
        epoch is recorded with the full driver (it must be a standalone
        recovery base), anything else with the phase's strategy. An
        explicit ``kind`` only labels the epoch — the strategy still
        produces the bytes, which is how a full-tier strategy commits
        full-content epochs under a delta label or vice versa.

        After a specialized commit fell back to the generic driver (see
        :class:`CommitReceipt`), the next policy-decided commit is
        escalated to a full checkpoint regardless of cadence, so the
        delta chain regains a sound base.
        """
        strategy = self.strategy_for(phase)
        escalated = False
        if kind is None:
            if self._escalate_full:
                kind, strategy, escalated = FULL, _FULL_DRIVER, True
            else:
                kind = self.policy.kind_for(
                    self.commits, self.deltas_since_full
                )
                if kind == FULL:
                    strategy = _FULL_DRIVER
        elif kind not in _KIND_CODES:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        return self._commit(
            strategy,
            kind,
            phase=phase,
            roots=roots,
            escalated=escalated,
            name=name,
        )

    def attach_oracle(self, oracle) -> None:
        """Hook a :class:`~repro.sanitize.oracle.ShadowHeapOracle` in.

        The oracle byte-diffs the reachable graph against its shadow heap
        around every ``measure``/``commit``/``restore``, reporting flag
        under-/over-approximation through the session's obs seam. Purely
        observational — attach in tests, crosschecks, or debug runs.
        """
        oracle.instrument(self.tracer, self.metrics)
        with self._state_lock:
            self._oracle = oracle

    def detach_oracle(self):
        """Remove and return the attached oracle (if any)."""
        with self._state_lock:
            oracle, self._oracle = self._oracle, None
        return oracle

    def measure(
        self,
        phase: Optional[str] = None,
        roots: Optional[RootsLike] = None,
    ) -> CommitResult:
        """Run the phase's strategy without persisting or counting.

        Used for pure measurement — e.g. the paper's traversal-cost runs.
        The strategy's ``record`` pass clears modification flags as a
        side effect, so the flags are snapshotted before the run and
        reinstated after it: a real :meth:`commit` following a
        :meth:`measure` observes exactly the delta it would have without
        the measurement.
        """
        strategy = self.strategy_for(phase)
        tracer = self.tracer
        out = DataOutputStream()
        use = self._resolve_roots(roots)
        if self._oracle is not None:
            self._oracle.observe(use, phase=phase or "")
        saved = snapshot_flags(use)
        # Strategies with commit-to-commit state beyond the flags (the
        # differential tier's block generations and fingerprints) expose
        # snapshot_state/restore_state so a trial run leaves no trace.
        snapshot_state = getattr(strategy, "snapshot_state", None)
        saved_state = snapshot_state() if snapshot_state is not None else None
        start = time.perf_counter()
        try:
            strategy.write(use, out)
        finally:
            restore_flags(saved)
            if saved_state is not None:
                strategy.restore_state(saved_state)
        wall = time.perf_counter() - start
        result = CommitResult(
            kind=INCREMENTAL,
            data=out.getvalue(),
            wall_seconds=wall,
            strategy=strategy.name,
            phase=phase,
        )
        if tracer.enabled:
            tracer.event(
                "measure",
                phase=phase,
                strategy=strategy.name,
                wall_seconds=wall,
                bytes=result.size,
            )
        if self.metrics.enabled:
            self.metrics.histogram(
                "measure_seconds", phase=phase or ""
            ).observe(wall)
        return result

    def commit_bytes(
        self,
        kind: str,
        data: bytes,
        phase: Optional[str] = None,
        wall_seconds: float = 0.0,
        name: Optional[str] = None,
    ) -> CommitResult:
        """Commit pre-produced checkpoint bytes (e.g. from a metered run).

        The bytes enter the same sink/policy path as a normal commit, so
        instrumented producers still get epoch accounting, automatic
        compaction — and the same chain-repair bookkeeping: a ``FULL``
        epoch committed here clears a pending escalation exactly like a
        full-driver commit does, and a pending escalation this commit
        cannot honor (the bytes are already produced, and incremental)
        stays pending and is noted on the receipt.
        """
        if kind not in _KIND_CODES:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        self._ensure_open()
        receipt = CommitReceipt()
        if self.tracer.enabled:
            self.tracer.event(
                "commit.start", phase=phase, kind=kind, strategy="bytes"
            )
        self._settle_escalation(receipt, repaired=(kind == FULL))
        result = CommitResult(
            kind=kind,
            data=bytes(data),
            wall_seconds=wall_seconds,
            strategy="bytes",
            phase=phase,
            receipt=receipt,
        )
        self._persist(result, name=name)
        return result

    def _settle_escalation(
        self,
        receipt: CommitReceipt,
        repaired: bool,
        pending_before: bool = True,
    ) -> None:
        """Chain-repair bookkeeping shared by every commit path.

        A pending escalation (a specialized commit degraded earlier, so
        the delta chain needs a fresh base) is cleared by any commit that
        persists genuinely full content, and explicitly kept — with a
        receipt note, never silently — by one that does not.
        ``pending_before`` distinguishes an escalation this very commit
        raised (its receipt already says "degraded") from one inherited
        from an earlier epoch.
        """
        if not self._escalate_full:
            return
        if repaired:
            with self._state_lock:
                self._escalate_full = False
            if not receipt.escalated:
                receipt.escalated = True
                receipt.events.append(
                    "pending full-checkpoint escalation cleared by this "
                    "full epoch"
                )
        elif pending_before:
            receipt.events.append(
                "full-checkpoint escalation still pending after this commit"
            )

    @staticmethod
    def _can_fall_back(strategy: Strategy) -> bool:
        """Whether a failing ``strategy`` has a sound generic fallback.

        Specialized / inferred / auto-derived routines do: they are
        optimizations over the generic driver, so the checked driver can
        reproduce their work. The generic tiers themselves do not — a
        failure there is a real bug (or a real cycle) that must surface.
        """
        return not isinstance(strategy, (DriverStrategy, NullStrategy))

    @staticmethod
    def _is_full_driver(strategy: Strategy) -> bool:
        """Whether ``strategy`` records every object (a chain-repairing full)."""
        return (
            isinstance(strategy, DriverStrategy)
            and strategy.driver_factory is FullCheckpoint
        )

    def _commit(
        self,
        strategy: Strategy,
        kind: str,
        phase: Optional[str],
        roots: Optional[RootsLike],
        escalated: bool = False,
        name: Optional[str] = None,
    ) -> CommitResult:
        self._ensure_open()
        tracer = self.tracer
        pending_before = self._escalate_full
        receipt = CommitReceipt(escalated=escalated)
        if escalated:
            receipt.events.append(
                "escalated to full checkpoint after a degraded commit"
            )
        if tracer.enabled:
            tracer.event(
                "commit.start",
                phase=phase,
                kind=kind,
                strategy=strategy.name,
                escalated=escalated,
            )
        out = DataOutputStream()
        use = self._resolve_roots(roots)
        if self._oracle is not None:
            # diff before the drivers run: they clear the flags the
            # oracle compares against
            self._oracle.before_commit(
                use, phase=phase or "", commit_kind=kind
            )
        start = time.perf_counter()
        try:
            strategy.write(use, out)
        except Exception as exc:
            failed_wall = time.perf_counter() - start
            if not self._can_fall_back(strategy):
                raise
            # A specialized routine died mid-commit. Its partial run may
            # already have recorded-and-cleared some modification flags,
            # so an incremental re-record of what is *still* flagged would
            # under-report and recovery would see stale data until the
            # escalated full lands. Instead, re-record *everything* as a
            # full epoch with the generic checked driver (the failure path
            # is rare; the extra traversal never touches a clean commit),
            # and still escalate the next epoch so the chain regains a
            # base produced by an untainted run.
            receipt.degraded = True
            receipt.failed_wall_seconds = failed_wall
            receipt.events.append(
                f"strategy {strategy.name!r} raised "
                f"{type(exc).__name__}: {exc}; fell back to the generic "
                "checked driver"
            )
            with self._state_lock:
                self.degradations += 1
                self._escalate_full = True
            if tracer.enabled:
                tracer.event(
                    "commit.fallback",
                    phase=phase,
                    strategy=strategy.name,
                    error=f"{type(exc).__name__}: {exc}",
                    failed_wall_seconds=failed_wall,
                )
            if self.metrics.enabled:
                self.metrics.counter(
                    "fallbacks_total", strategy=strategy.name
                ).inc()
            out = DataOutputStream()
            fallback_start = time.perf_counter()
            for fallback_root in use:
                set_all_flags(fallback_root)
            _CHECKED_DRIVER.write(use, out)
            receipt.fallback_wall_seconds = (
                time.perf_counter() - fallback_start
            )
            strategy = _CHECKED_DRIVER
            kind = FULL
            receipt.events.append(
                "re-recorded every object as a full epoch (the failed "
                "routine may have cleared modification flags mid-run)"
            )
        wall = time.perf_counter() - start
        block_stats = getattr(strategy, "last_stats", None)
        if block_stats and tracer.enabled:
            tracer.event("commit.blocks", phase=phase, **block_stats)
        self._settle_escalation(
            receipt,
            repaired=(kind == FULL and self._is_full_driver(strategy)),
            pending_before=pending_before,
        )
        result = CommitResult(
            kind=kind,
            data=out.getvalue(),
            wall_seconds=wall,
            strategy=strategy.name,
            phase=phase,
            receipt=receipt,
        )
        self._persist(result, name=name)
        if self._oracle is not None:
            # the epoch is durable: fold the staged images into the shadow
            self._oracle.after_commit()
        return result

    def _persist(
        self, result: CommitResult, name: Optional[str] = None
    ) -> None:
        receipt = result.receipt
        stats = getattr(self.sink, "retry_stats", None)
        retries_before = stats.retries if stats is not None else 0
        with self._state_lock:
            parent = self._pending_parent
            branch = self._branch
        result.epoch_index = self.sink.put(
            result.kind,
            result.data,
            parent=AUTO if parent is None else parent,
            branch=branch,
            name=name,
        )
        result.branch = branch
        result.epoch_name = name
        if parent is not None:
            # The put landed, so the restore/fork point is now anchored in
            # the lineage graph; subsequent commits chain off this epoch.
            with self._state_lock:
                if self._pending_parent == parent:
                    self._pending_parent = None
            if receipt is not None:
                receipt.events.append(
                    f"pinned to parent epoch {parent} (first commit after "
                    "restore/fork)"
                )
        if receipt is not None:
            if stats is not None:
                put_retries = stats.retries - retries_before
                receipt.retries += put_retries
                if put_retries:
                    receipt.events.extend(stats.events[-put_retries:])
            receipt.durability = self.sink.durability()
            self._fill_replica_receipt(receipt)
        with self._state_lock:
            self.commits += 1
            self.bytes_written += result.size
            if result.kind == FULL:
                self.deltas_since_full = 0
            else:
                self.deltas_since_full += 1
            should_compact = self.sink.can_compact and (
                self.policy.should_compact(self.deltas_since_full)
            )
        # compaction does sink IO: run it outside the bookkeeping lock
        # (compact() re-enters the lock for its own counter updates)
        if should_compact:
            self.compact()
            result.compacted = True
        with self._state_lock:
            self.history.append(result)
        self._record_commit(result)

    def _fill_replica_receipt(self, receipt: CommitReceipt) -> None:
        """Copy the replicated store's commit receipt onto ours (if any).

        Unwraps a :class:`~repro.core.storage.BackgroundWriter` front;
        behind one, the numbers describe the newest *drained* epoch, not
        necessarily this still-queued one.
        """
        store = getattr(self.sink, "store", None)
        store = getattr(store, "backing", store)
        last = getattr(store, "last_commit", None)
        if not isinstance(last, dict):
            return
        receipt.replicas_acked = list(last.get("acked") or [])
        receipt.replica_quorum = last.get("quorum")
        receipt.degraded_replicas = list(last.get("degraded") or [])

    def _record_commit(self, result: CommitResult) -> None:
        """Emit the commit's trace record and metrics (observers only)."""
        receipt = result.receipt
        tracer = self.tracer
        if tracer.enabled:
            tracer.event(
                "commit.end",
                phase=result.phase,
                kind=result.kind,
                strategy=result.strategy,
                wall_seconds=result.wall_seconds,
                bytes=result.size,
                epoch_index=result.epoch_index,
                compacted=result.compacted,
                durability=receipt.durability if receipt else None,
                retries=receipt.retries if receipt else 0,
                degraded=bool(receipt and receipt.degraded),
                escalated=bool(receipt and receipt.escalated),
                failed_wall_seconds=(
                    receipt.failed_wall_seconds if receipt else None
                ),
                fallback_wall_seconds=(
                    receipt.fallback_wall_seconds if receipt else None
                ),
                replicas_acked=(
                    receipt.replicas_acked if receipt else None
                ),
                replica_quorum=(
                    receipt.replica_quorum if receipt else None
                ),
                degraded_replicas=(
                    receipt.degraded_replicas if receipt else None
                ),
            )
        metrics = self.metrics
        if metrics.enabled:
            phase = result.phase or ""
            metrics.counter(
                "commits_total", phase=phase, kind=result.kind
            ).inc()
            metrics.counter("strategy_hits_total", strategy=result.strategy).inc()
            metrics.counter("bytes_written_total", phase=phase).inc(result.size)
            metrics.histogram("commit_seconds", phase=phase).observe(
                result.wall_seconds
            )
            metrics.histogram(
                "commit_bytes", buckets=DEFAULT_SIZE_BUCKETS, phase=phase
            ).observe(result.size)
            if receipt is not None:
                if receipt.retries:
                    metrics.counter("retries_total").inc(receipt.retries)
                if receipt.degraded:
                    metrics.counter("degradations_total").inc()
                if receipt.escalated:
                    metrics.counter("escalations_total").inc()
                if receipt.degraded_replicas:
                    metrics.counter("degraded_replica_commits_total").inc()
            metrics.gauge("deltas_since_full").set(self.deltas_since_full)

    def _resolve_roots(
        self, roots: Optional[RootsLike]
    ) -> Sequence[Checkpointable]:
        if roots is None:
            return self._roots()
        return _roots_provider(roots)()

    def _ensure_open(self) -> None:
        if self._closed:
            raise CheckpointError("the checkpoint session is closed")

    # -- store lifecycle -----------------------------------------------------

    def compact(self) -> int:
        """Fold the current branch's recovery line into a fresh full epoch."""
        tracer = self.tracer
        start = time.perf_counter() if tracer.enabled else 0.0
        with self._state_lock:
            if self._pending_parent is not None:
                # Compaction deletes unprotected epochs, and the chain the
                # pending restore/fork sits on is only protected once its
                # first commit anchors a new head there.
                raise StorageError(
                    "cannot compact between a restore/fork and its first "
                    f"commit: the chain at epoch {self._pending_parent} is "
                    "not yet anchored"
                )
            branch = self._branch
        index = self.sink.compact(
            self.class_registry,
            keep_history=self.policy.keep_history,
            branch=branch,
        )
        with self._state_lock:
            self.deltas_since_full = 0
            self.compactions += 1
        if tracer.enabled:
            tracer.event(
                "compaction",
                epoch_index=index,
                wall_seconds=time.perf_counter() - start,
            )
        if self.metrics.enabled:
            self.metrics.counter("compactions_total").inc()
        return index

    def recover(self) -> ObjectTable:
        """Rebuild the object table from the sink's recovery line."""
        return self.sink.recover(self.class_registry)

    # -- time travel ---------------------------------------------------------

    def restore(
        self,
        target: EpochRef,
        roots: Optional[RootsLike] = None,
    ) -> ObjectTable:
        """Materialize epoch ``target`` and make it the session's live state.

        ``target`` is an epoch index or a checkpoint name. The sink is
        flushed, the epoch's base+delta chain is replayed, and the
        session's roots are rebound to the restored objects (matched by
        object id; a root that does not exist at ``target`` raises
        :class:`~repro.core.errors.RestoreError`). Roots supplied as a
        live callable are *not* replaced — the caller owns that
        collection and rebinds it from the returned table.

        Restoring the tip of a branch continues that branch; restoring an
        interior epoch starts a fresh auto-named branch forked at it, so
        the epochs above the restore point are never rewritten. Either
        way the next commit is pinned to ``target`` as its parent, any
        pending full-checkpoint escalation is dropped (the restored state
        is exactly the durable epoch — the chain needs no repair), and
        ``deltas_since_full`` reflects the restored chain's length.
        """
        self._ensure_open()
        with self.tracer.span("session.restore", target=str(target)) as span:
            start = time.perf_counter()
            self.sink.flush()
            lineage = self.sink.lineage()
            index = lineage.resolve(target)
            epoch = lineage.epoch(index)
            chain = lineage.chain_indices(index)
            table = self.sink.materialize(index, self.class_registry)
            rebound = self._rebind_roots(table, roots)
            if self._oracle is not None:
                # restore rewrote object state wholesale; the shadow follows
                self._oracle.resync(self._resolve_roots(None))
            branches = lineage.branches()
            with self._state_lock:
                if branches.get(epoch.branch) == index:
                    # the branch tip: new commits simply continue the branch
                    branch = epoch.branch
                else:
                    branch = self._auto_branch_name(
                        epoch.branch, index, branches
                    )
                self._branch = branch
                self._pending_parent = index
                self._escalate_full = False
                self.deltas_since_full = len(chain) - 1
                self.restores += 1
            wall = time.perf_counter() - start
            span.add(
                epoch_index=index,
                branch=branch,
                chain_length=len(chain),
                roots_rebound=rebound,
            )
        if self.metrics.enabled:
            self.metrics.counter("restores_total").inc()
            self.metrics.histogram("restore_seconds").observe(wall)
            self.metrics.gauge("restore_chain_length").set(len(chain))
        return table

    def fork(
        self,
        at: Optional[EpochRef] = None,
        branch: Optional[str] = None,
        roots: Optional[RootsLike] = None,
    ) -> Optional[ObjectTable]:
        """Start a new lineage branch for everything committed from now on.

        With ``at`` the session first restores that epoch (exactly like
        :meth:`restore`) and the new branch grows from it; without ``at``
        the live, possibly-dirty state is kept and the branch grows from
        the current branch's tip. ``branch`` names the new branch
        (default: the first unused ``fork-N``); a name already present in
        the store raises :class:`~repro.core.errors.StorageError`.
        Returns the restored table when ``at`` was given, else ``None``.
        """
        self._ensure_open()
        self.sink.flush()
        try:
            branches = self.sink.lineage().branches()
        except StorageError:
            branches = {}
        if branch is None:
            branch = self._auto_fork_name(branches)
        elif branch in branches:
            raise StorageError(
                f"branch {branch!r} already exists in the store"
            )
        table = None
        if at is not None:
            table = self.restore(at, roots=roots)
            with self._state_lock:
                self._branch = branch
                parent = self._pending_parent
                self.forks += 1
        else:
            with self._state_lock:
                if self._pending_parent is None:
                    self._pending_parent = branches.get(self._branch)
                parent = self._pending_parent
                self._branch = branch
                self.forks += 1
        if self.tracer.enabled:
            self.tracer.event(
                "session.fork",
                branch=branch,
                parent=parent,
                restored=at is not None,
            )
        if self.metrics.enabled:
            self.metrics.counter("forks_total").inc()
            self.metrics.gauge("branches").set(len(branches) + 1)
        return table

    def _rebind_roots(
        self, table: ObjectTable, roots: Optional[RootsLike]
    ) -> int:
        """Point the session's roots at their restored counterparts."""
        if roots is not None:
            provider = _roots_provider(roots)
            with self._state_lock:
                self._roots = provider
                self._roots_live = callable(roots) and not isinstance(
                    roots, Checkpointable
                )
            return len(provider())
        current = self._roots()
        restored = []
        for root in current:
            object_id = root._ckpt_info.object_id
            found = table.get(object_id)
            if found is None:
                raise RestoreError(
                    f"session root {root!r} does not exist at the restored "
                    "epoch; pass roots= to rebind explicitly"
                )
            restored.append(found)
        if not self._roots_live:
            fixed = tuple(restored)
            with self._state_lock:
                self._roots = lambda: fixed
        return len(restored)

    @staticmethod
    def _auto_branch_name(
        base_branch: str, index: int, branches: Dict[str, int]
    ) -> str:
        """A deterministic, unused branch name for a fork at ``index``."""
        candidate = f"{base_branch}@{index}"
        n = 1
        while candidate in branches:
            n += 1
            candidate = f"{base_branch}@{index}.{n}"
        return candidate

    @staticmethod
    def _auto_fork_name(branches: Dict[str, int]) -> str:
        n = 1
        while f"fork-{n}" in branches:
            n += 1
        return f"fork-{n}"

    def lineage(self) -> Lineage:
        """The sink store's epoch lineage graph (durable epochs only)."""
        return self.sink.lineage()

    def branches(self) -> Dict[str, int]:
        """Branch name → tip epoch index, for every branch in the store."""
        return self.sink.lineage().branches()

    def named_checkpoints(self) -> Dict[str, int]:
        """Checkpoint name → epoch index, for every named epoch."""
        return self.sink.lineage().named()

    @property
    def current_branch(self) -> str:
        """The branch the next commit appends to."""
        return self._branch

    def flush(self) -> None:
        """Block until every committed epoch is durable."""
        self.sink.flush()

    def close(self) -> None:
        """Flush and close the sink; further commits raise."""
        if self._closed:
            return
        self.sink.close()
        with self._state_lock:
            self._closed = True

    def __enter__(self) -> "CheckpointSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointSession(strategy={self._default.name!r}, "
            f"commits={self.commits}, deltas={self.deltas_since_full})"
        )
