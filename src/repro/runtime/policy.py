"""Epoch cadence: when a commit is a full checkpoint, when to compact.

The paper's scheme alternates one full checkpoint (the recovery base) with
a chain of incremental deltas; recovery replays base + chain, so an
unbounded chain makes recovery arbitrarily slow and retains dead epochs.
:class:`EpochPolicy` centralizes both decisions that the pre-runtime
consumers each hard-coded:

- *cadence* — which commits are recorded as full epochs
  (:meth:`EpochPolicy.kind_for`), and
- *compaction* — when the session folds the store's recovery line into a
  fresh base (:meth:`EpochPolicy.should_compact`).

Policies are immutable value objects; the session owns the counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import CheckpointError
from repro.core.storage import FULL, INCREMENTAL


@dataclass(frozen=True)
class EpochPolicy:
    """Full-vs-delta cadence and delta-chain length bounds.

    Parameters
    ----------
    full_interval:
        Record every ``full_interval``-th commit (counting from the
        first, which is always full under this setting) with the full
        driver, starting a new recovery base. ``None`` (default) means
        only explicit :meth:`~repro.runtime.session.CheckpointSession.base`
        calls produce full epochs — the paper's base-then-deltas shape.
    max_delta_chain:
        Compact the attached store once more than this many deltas have
        accumulated since the last full epoch. ``None`` disables
        automatic compaction.
    keep_history:
        Passed through to :func:`repro.core.storage.compact`: keep the
        epochs superseded by the new base instead of deleting them.
    """

    full_interval: Optional[int] = None
    max_delta_chain: Optional[int] = None
    keep_history: bool = False

    def __post_init__(self) -> None:
        if self.full_interval is not None and self.full_interval < 1:
            raise CheckpointError(
                f"full_interval must be >= 1, got {self.full_interval}"
            )
        if self.max_delta_chain is not None and self.max_delta_chain < 1:
            raise CheckpointError(
                f"max_delta_chain must be >= 1, got {self.max_delta_chain}"
            )

    # -- the two decisions ---------------------------------------------------

    def kind_for(self, commits_so_far: int, deltas_since_full: int) -> str:
        """The epoch kind of the next commit.

        ``commits_so_far`` counts previously committed epochs (so the
        first commit sees 0); ``deltas_since_full`` counts deltas since
        the last full epoch (or ever, if none was taken).
        """
        if self.full_interval is not None:
            if commits_so_far % self.full_interval == 0:
                return FULL
        return INCREMENTAL

    def should_compact(self, deltas_since_full: int) -> bool:
        """Whether the delta chain is now longer than the policy allows."""
        return (
            self.max_delta_chain is not None
            and deltas_since_full > self.max_delta_chain
        )

    # -- presets -------------------------------------------------------------

    @classmethod
    def delta_only(cls) -> "EpochPolicy":
        """Every commit is a delta; fulls only via explicit ``base()``.

        This is the paper's shape and the session default.
        """
        return cls()

    @classmethod
    def periodic_full(cls, interval: int) -> "EpochPolicy":
        """A fresh full epoch every ``interval`` commits (first included)."""
        return cls(full_interval=interval)

    @classmethod
    def bounded_chain(
        cls, max_delta_chain: int, keep_history: bool = False
    ) -> "EpochPolicy":
        """Compact automatically once the chain exceeds ``max_delta_chain``."""
        return cls(max_delta_chain=max_delta_chain, keep_history=keep_history)
