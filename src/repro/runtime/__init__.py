"""The unified checkpoint runtime: sessions, strategies, policy, sinks.

This package is the single seam the paper's pipeline — generic driver →
specialized per-phase routine → output stream → stable storage — flows
through in this repository. Every consumer (the analysis engine, the
synthetic benchmark, the experiment harness, the examples) builds a
:class:`~repro.runtime.session.CheckpointSession` instead of wiring
drivers, specialized routines, and stores by hand.

- :mod:`repro.runtime.session` — the session: owns roots, commits epochs,
  recovers state.
- :mod:`repro.runtime.strategy` — how commit bytes are produced: the
  generic driver tiers, compiled specializations, observation-driven
  auto-specialization; all selectable by name via the
  :class:`~repro.runtime.strategy.StrategyRegistry`.
- :mod:`repro.runtime.policy` — full-vs-delta cadence, automatic
  compaction, delta-chain bounds.
- :mod:`repro.runtime.sink` — where committed epochs drain: byte buffers,
  durable stores, asynchronous writers, all behind one ``put()``.
"""

from repro.core.lineage import AUTO, MAIN_BRANCH, Lineage
from repro.core.retry import RetryPolicy, RetryStats
from repro.runtime.policy import EpochPolicy
from repro.runtime.session import (
    CheckpointSession,
    CommitReceipt,
    CommitResult,
)
from repro.runtime.sink import (
    BufferSink,
    NullSink,
    Sink,
    StoreSink,
    sink_for,
)
from repro.runtime.strategy import (
    DEFAULT_STRATEGIES,
    AutoSpecStrategy,
    DriverStrategy,
    InferredStrategy,
    NullStrategy,
    SpecializedStrategy,
    Strategy,
    StrategyRegistry,
)

__all__ = [
    "CheckpointSession",
    "CommitReceipt",
    "CommitResult",
    "EpochPolicy",
    "Lineage",
    "AUTO",
    "MAIN_BRANCH",
    "RetryPolicy",
    "RetryStats",
    "Sink",
    "NullSink",
    "BufferSink",
    "StoreSink",
    "sink_for",
    "Strategy",
    "NullStrategy",
    "DriverStrategy",
    "SpecializedStrategy",
    "InferredStrategy",
    "AutoSpecStrategy",
    "StrategyRegistry",
    "DEFAULT_STRATEGIES",
]
