"""The runtime's own lint target: a session phase under static analysis.

Consumers of :mod:`repro.runtime` declare per-phase strategies; the
soundness story for specialized strategies is the same as for direct
driver use — the phase may only modify positions its pattern declares.
This module ships a canonical probe structure and phase, declared via
``LINT_TARGETS``, so ``python -m repro.lint`` (which defaults to the
whole ``repro`` package) runs the effect analysis, the pattern soundness
diff, and the residual verifier over the runtime layer's reference
usage. It doubles as an executable example of binding a specialized
strategy built from a declared pattern.
"""

from __future__ import annotations

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, scalar
from repro.lint.targets import LintTarget, ProgramTarget
from repro.spec.modpattern import ModificationPattern
from repro.spec.shape import Shape
from repro.spec.specclass import SpecClass


class ProbeCounter(Checkpointable):
    """The one position the probe phase is allowed to touch."""

    count = scalar("int")


class ProbeMeta(Checkpointable):
    """Quiescent during the probe phase: specialization skips it."""

    label = scalar("str")
    revision = scalar("int")


class ProbeRoot(Checkpointable):
    counter = child(ProbeCounter)
    meta = child(ProbeMeta)


def probe_prototype() -> ProbeRoot:
    return ProbeRoot(
        counter=ProbeCounter(count=0),
        meta=ProbeMeta(label="probe", revision=1),
    )


PROBE_SHAPE = Shape.of(probe_prototype())

#: the phase's promise: only the counter subtree may be dirtied
PROBE_PATTERN = ModificationPattern.only(PROBE_SHAPE, [("counter",)])


def probe_phase(root: ProbeRoot) -> None:
    """The work a session runs between commits of the probe structure."""
    root.counter.count += 1


def probe_spec() -> SpecClass:
    """The specialization a session strategy would bind for the phase."""
    return SpecClass(PROBE_SHAPE, PROBE_PATTERN, name="runtime_probe")


def bump_probe_meta(root: ProbeRoot) -> None:
    """Helper the driver's second phase calls (exercises call resolution)."""
    root.meta.revision += 1


def probe_driver(root: ProbeRoot, session) -> None:
    """The runtime's reference whole-program driver.

    Phase boundaries are the ``session.commit(phase=...)`` sites; the
    whole-program analysis (:func:`repro.spec.effects.infer_phases`)
    segments the driver at them and proves one modification pattern per
    inter-commit region — the patterns a session binds via
    :meth:`~repro.runtime.session.CheckpointSession.bind_program`.
    """
    session.base(roots=[root])
    root.counter.count += 1
    session.commit(phase="count", roots=[root])
    bump_probe_meta(root)
    session.commit(phase="meta", roots=[root])


LINT_TARGETS = [
    LintTarget(
        "runtime-session-probe",
        shape=PROBE_SHAPE,
        phases=[probe_phase],
        pattern=PROBE_PATTERN,
        roots=["root"],
    ),
]

LINT_PROGRAMS = [
    ProgramTarget(
        "runtime-session-probe-driver",
        shape=PROBE_SHAPE,
        driver=probe_driver,
        roots=["root"],
        declared={
            "count": ModificationPattern.only(PROBE_SHAPE, [("counter",)]),
        },
    ),
]
