"""CLI entry point: ``python -m repro.bench [experiments...]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"which experiments to run: {', '.join(ALL_EXPERIMENTS)} or 'all'",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the synthetic experiments at the paper's 20,000 structures",
    )
    parser.add_argument(
        "--structures",
        type=int,
        default=None,
        help="override the synthetic population size",
    )
    parser.add_argument(
        "--kernels",
        type=int,
        default=None,
        help="override the analyzed program's kernel count (table1 only; "
        "small values give a fast smoke run)",
    )
    parser.add_argument(
        "--json-dir",
        nargs="?",
        default=None,
        const=".",
        metavar="DIR",
        help="also write each result as machine-readable BENCH_<id>.json "
        "under DIR (bare --json-dir writes to the repository root, i.e. "
        "the current directory)",
    )
    args = parser.parse_args(argv)

    names = args.experiments or ["all"]
    if "all" in names:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    kwargs = {"paper_scale": args.paper_scale, "structures": args.structures}
    if args.kernels is not None:
        kwargs["kernels"] = args.kernels
    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name](**kwargs)
        result.print()
        if args.json_dir is not None:
            path = result.write_json(args.json_dir)
            print(f"[wrote {path}]")
        print(f"[{name} completed in {time.perf_counter() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
