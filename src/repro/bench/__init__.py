"""Experiment harness regenerating every table and figure of the paper.

Run ``python -m repro.bench all`` (or name individual experiments:
``table1``, ``fig7`` … ``fig11``, ``table2``). Each experiment builds the
paper's workload, measures every checkpointing variant on identical
modification states, and prints the same rows/series the paper reports —
speedups from the calibrated abstract-machine backends plus CPython
wall-clock as an independent, real measurement.
"""

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    fault_recovery,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
)
from repro.bench.reporting import ExperimentResult

__all__ = [
    "ALL_EXPERIMENTS",
    "fault_recovery",
    "table1",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "ExperimentResult",
]
