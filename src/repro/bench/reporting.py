"""Plain-text experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if 0 < abs(value) < 0.1:
            return f"{value:.4f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Fixed-width text table with right-aligned numeric columns."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def megabytes(size_bytes: int) -> float:
    return size_bytes / 1e6
