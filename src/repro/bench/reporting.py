"""Plain-text and machine-readable experiment reports."""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: instrumentation snapshots (e.g. per-variant MetricsRegistry
    #: snapshots with histogram percentiles), keyed by a label
    metrics: dict = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()

    # -- machine-readable output -------------------------------------------

    def slug(self) -> str:
        """Filename-safe experiment identifier (``Table 1`` -> ``table_1``)."""
        return re.sub(r"[^a-z0-9]+", "_", self.experiment_id.lower()).strip("_")

    def to_dict(self) -> dict:
        """JSON-ready form; rows become lists so tuples survive dumping."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "metrics": dict(self.metrics),
        }

    def write_json(self, directory: str) -> str:
        """Write ``BENCH_<slug>.json`` under ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.slug()}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if 0 < abs(value) < 0.1:
            return f"{value:.4f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Fixed-width text table with right-aligned numeric columns."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def megabytes(size_bytes: int) -> float:
    return size_bytes / 1e6
