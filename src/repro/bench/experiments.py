"""One experiment per table and figure of the paper's evaluation.

Defaults are sized so that ``python -m repro.bench all`` completes in a
couple of minutes; set ``paper_scale=True`` (CLI ``--paper-scale``) to run
the synthetic experiments at the paper's 20,000 structures. Speedups are
unaffected by the population size (op counts are additive across
structures), which the scaling tests verify.

Every experiment reports, per configuration:

- the *simulated* speedup on the paper's execution environment for that
  figure (Harissa for Figures 7-10, the Sun VMs for Figure 11/Table 2),
  computed from exact op counts of the metered abstract machine, and
- the *CPython wall-clock* speedup of the real implementations, as an
  independent measurement on a present-day runtime.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.engine import AnalysisEngine
from repro.analysis.programs import (
    image_division,
    image_pipeline_source,
    paper_scale_source,
)
from repro.bench.reporting import ExperimentResult, megabytes
from repro.synthetic.runner import (
    SyntheticConfig,
    SyntheticWorkload,
    VariantResult,
    run_variant,
    speedup,
)
from repro.vm.backends import EPOCH_SCALE, HARISSA, HOTSPOT, JDK12_JIT, CostProfile
from repro.vm.ops import OpCounts

DEFAULT_STRUCTURES = 2000
PAPER_STRUCTURES = 20000
METER_SAMPLE = 300

PERCENTS = (1.0, 0.5, 0.25)


def _population(paper_scale: bool, structures: Optional[int]) -> int:
    if structures is not None:
        return structures
    return PAPER_STRUCTURES if paper_scale else DEFAULT_STRUCTURES


def _measure(
    config: SyntheticConfig, variants: Iterable[str]
) -> Dict[str, VariantResult]:
    workload = SyntheticWorkload(config)
    return {
        variant: run_variant(workload, variant, meter=True, meter_sample=METER_SAMPLE)
        for variant in variants
    }


def _percent_label(percent: float) -> str:
    return f"{int(percent * 100)}%"


# ---------------------------------------------------------------------------
# Table 1 — the program analysis engine
# ---------------------------------------------------------------------------


def table1(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Checkpoint size and time for the BTA and ETA phases (paper Table 1).

    Full vs incremental vs specialized incremental checkpointing of the
    program analysis engine over the generated ~750-line image program;
    sizes of the smallest/largest per-iteration checkpoint and total
    checkpoint/traversal times per phase. ``kernels`` overrides the
    analyzed program's size (default: the paper-scale 11-kernel pipeline;
    CI smoke runs use a reduced pipeline).
    """
    source = paper_scale_source() if kernels is None else image_pipeline_source(
        kernels=kernels
    )
    result = ExperimentResult(
        "Table 1",
        "Checkpoint size (Mb) and execution time (s), program analysis engine",
        (
            "phase",
            "strategy",
            "min ckp (Mb)",
            "max ckp (Mb)",
            "ckp time (s)",
            "traversal (s)",
            "sim JDK1.2 (s)",
            "speedup",
            "sim speedup",
        ),
    )
    from repro.obs.metrics import MetricsRegistry

    reports = {}
    metered = {}
    for strategy in ("full", "incremental", "specialized"):
        registry = MetricsRegistry()
        engine = AnalysisEngine(
            source,
            division=image_division(),
            strategy=strategy,
            measure_traversal=True,
            metrics=registry,
        )
        reports[strategy] = engine.run()
        result.metrics[strategy] = registry.snapshot()
        meter_engine = AnalysisEngine(
            source, division=image_division(), strategy=strategy, meter=True
        )
        metered[strategy] = meter_engine.run()

    def simulated_seconds(strategy, phase):
        counts = OpCounts.sum(
            r.counts for r in metered[strategy].phase_records(phase)
        )
        return JDK12_JIT.seconds(counts) * EPOCH_SCALE

    baseline_times = {}
    baseline_sim = {}
    for phase in ("BTA", "ETA"):
        for strategy in ("full", "incremental", "specialized"):
            report = reports[strategy]
            low, high = report.min_max_bytes(phase)
            total = report.total_checkpoint_seconds(phase)
            traversal = sum(
                r.traversal_seconds for r in report.phase_records(phase)
            )
            simulated = simulated_seconds(strategy, phase)
            if strategy == "incremental":
                baseline_times[phase] = total
                baseline_sim[phase] = simulated
            is_specialized = strategy == "specialized"
            gain = baseline_times[phase] / total if is_specialized and total else None
            sim_gain = (
                baseline_sim[phase] / simulated if is_specialized and simulated else None
            )
            result.add_row(
                phase,
                strategy,
                megabytes(low),
                megabytes(high),
                total,
                traversal,
                simulated,
                f"{gain:.2f}" if gain else "-",
                f"{sim_gain:.2f}" if sim_gain else "-",
            )
    report = reports["incremental"]
    result.add_note(
        f"analyzed program: {source.count(chr(10)) + 1} lines; "
        f"iterations: {report.phase_iterations}"
    )
    result.add_note(
        "speedup = incremental ckp time / specialized ckp time per phase "
        "(paper: 1.8x BTA, 1.5x ETA; traversal 1.8x / 2x+)"
    )
    result.add_note(
        "ckp/traversal times are CPython wall clock; sim JDK1.2 is the "
        "calibrated abstract-machine time on the paper's platform"
    )
    return result


# ---------------------------------------------------------------------------
# Figures 7-10 — synthetic benchmark on Harissa
# ---------------------------------------------------------------------------


def _speedup_rows(
    result: ExperimentResult,
    configs: Iterable[Tuple[str, SyntheticConfig]],
    base: str,
    cand: str,
    profile: CostProfile,
) -> None:
    for label, config in configs:
        measured = _measure(config, (base, cand))
        result.add_row(
            label,
            speedup(measured[base], measured[cand], profile),
            speedup(measured[base], measured[cand]),
            megabytes(measured[base].checkpoint_bytes),
            megabytes(measured[cand].checkpoint_bytes),
        )


_SPEEDUP_HEADERS = (
    "configuration",
    "sim speedup",
    "wall speedup",
    "base ckp (Mb)",
    "cand ckp (Mb)",
)


def fig7(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Incremental vs full checkpointing (paper Figure 7, Harissa)."""
    count = _population(paper_scale, structures)
    result = ExperimentResult(
        "Figure 7",
        f"Speedup of incremental over full checkpointing ({count} structures, Harissa)",
        _SPEEDUP_HEADERS,
    )
    configs = []
    for ints in (1, 10):
        for length in (1, 5):
            for percent in PERCENTS:
                label = (
                    f"{ints} int/elt, len {length}, {_percent_label(percent)} modified"
                )
                configs.append(
                    (label, SyntheticConfig(count, 5, length, ints, percent))
                )
    _speedup_rows(result, configs, "full", "incremental", HARISSA)
    result.add_note(
        "paper: ~1 at 100% modified, rising to >3 at 25% with 10 ints/object"
    )
    return result


def fig8(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Specialization w.r.t. the object structure (paper Figure 8, Harissa)."""
    count = _population(paper_scale, structures)
    result = ExperimentResult(
        "Figure 8",
        f"Speedup of structure-specialized over incremental ({count} structures, Harissa)",
        _SPEEDUP_HEADERS,
    )
    configs = []
    for ints in (1, 10):
        for length in (1, 5):
            for percent in PERCENTS:
                label = (
                    f"{ints} int/elt, len {length}, {_percent_label(percent)} modified"
                )
                configs.append(
                    (label, SyntheticConfig(count, 5, length, ints, percent))
                )
    _speedup_rows(result, configs, "incremental", "spec_struct", HARISSA)
    result.add_note("paper: 1.5 (100%, 10 ints) up to ~3.5 (len 5, few modified, 1 int)")
    return result


def fig9(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Specialization w.r.t. structure + the set of lists that may contain
    modified elements (paper Figure 9, Harissa, lists of length 5)."""
    count = _population(paper_scale, structures)
    result = ExperimentResult(
        "Figure 9",
        f"Struct+mod-pattern speedup, restricted lists ({count} structures, Harissa)",
        _SPEEDUP_HEADERS,
    )
    configs = []
    for ints in (1, 10):
        for lists in (1, 3, 5):
            for percent in PERCENTS:
                label = (
                    f"{ints} int/elt, {lists} modifiable lists, "
                    f"{_percent_label(percent)} modified"
                )
                configs.append(
                    (
                        label,
                        SyntheticConfig(
                            count, 5, 5, ints, percent, modified_lists=lists
                        ),
                    )
                )
    _speedup_rows(result, configs, "incremental", "spec_struct_mod", HARISSA)
    result.add_note("paper: 2 to 9 with 1 int recorded; reduced by up to half with 10")
    return result


def fig10(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Specialization w.r.t. structure + last-element-only positions
    (paper Figure 10, Harissa)."""
    count = _population(paper_scale, structures)
    result = ExperimentResult(
        "Figure 10",
        f"Struct+position speedup, last element only ({count} structures, Harissa)",
        _SPEEDUP_HEADERS,
    )
    configs = []
    for ints in (1, 10):
        for length in (1, 5):
            for lists in (1, 3, 5):
                for percent in PERCENTS:
                    label = (
                        f"{ints} int/elt, len {length}, {lists} lists, "
                        f"{_percent_label(percent)} modified"
                    )
                    configs.append(
                        (
                            label,
                            SyntheticConfig(
                                count,
                                5,
                                length,
                                ints,
                                percent,
                                modified_lists=lists,
                                last_only=True,
                            ),
                        )
                    )
    _speedup_rows(result, configs, "incremental", "spec_struct_mod", HARISSA)
    result.add_note("paper: 5 to 15 with 1 int recorded, 2 to 11 with 10 (length 5)")
    return result


def fig11(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """The Figure 10 experiment on the Sun VMs (paper Figure 11a/11b)."""
    count = _population(paper_scale, structures)
    result = ExperimentResult(
        "Figure 11",
        f"Struct+position speedup on JDK 1.2 and HotSpot ({count} structures, len 5)",
        (
            "configuration",
            "JDK 1.2 JIT",
            "JDK 1.2 + HotSpot",
            "Harissa (ref)",
            "wall speedup",
        ),
    )
    for ints in (1, 10):
        for lists in (1, 3, 5):
            for percent in PERCENTS:
                config = SyntheticConfig(
                    count, 5, 5, ints, percent, modified_lists=lists, last_only=True
                )
                measured = _measure(config, ("incremental", "spec_struct_mod"))
                base, cand = measured["incremental"], measured["spec_struct_mod"]
                result.add_row(
                    f"{ints} int/elt, {lists} lists, {_percent_label(percent)}",
                    speedup(base, cand, JDK12_JIT),
                    speedup(base, cand, HOTSPOT),
                    speedup(base, cand, HARISSA),
                    speedup(base, cand),
                )
    result.add_note("paper: up to ~6 on JDK 1.2 (a), up to ~12 with HotSpot (b)")
    return result


def table2(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Absolute checkpoint times, unspecialized vs specialized, per VM
    (paper Table 2: 10 integers per element, last-element positions)."""
    count = _population(paper_scale, structures)
    scale = (PAPER_STRUCTURES / count) * EPOCH_SCALE
    result = ExperimentResult(
        "Table 2",
        "Checkpoint execution time (s), scaled to the paper's epoch "
        f"(20000 structures equivalent; measured on {count})",
        ("VM", "code", "lists", "100%", "50%", "25%"),
    )
    for profile in (JDK12_JIT, HOTSPOT, HARISSA):
        for code, variant in (("unspecialized", "incremental"), ("specialized", "spec_struct_mod")):
            for lists in (1, 5):
                times = []
                for percent in PERCENTS:
                    config = SyntheticConfig(
                        count, 5, 5, 10, percent, modified_lists=lists, last_only=True
                    )
                    measured = _measure(config, (variant,))[variant]
                    times.append(profile.seconds(measured.counts) * scale)
                result.add_row(profile.name, code, lists, *times)
    result.add_note(
        "simulated seconds = op counts x calibrated per-op cost x epoch scale "
        f"({EPOCH_SCALE:g}, mapping to the paper's 300 MHz UltraSPARC)"
    )
    result.add_note(
        "paper magnitudes: JDK 1.2 ~8-11 s, HotSpot ~1-3 s, Harissa ~2-4 s "
        "unspecialized at 100%"
    )
    return result


# ---------------------------------------------------------------------------
# Phase inference — declared vs statically-inferred specialization
# ---------------------------------------------------------------------------


def _hot_mutate(root) -> None:
    """The benchmark driver's first phase: rewrite the whole list0 chain."""
    node = root.list0
    while node is not None:
        node.v0 = node.v0 + 1
        node = node.next


def _tail_mutate(root) -> None:
    """The second phase: touch only the head element of list1."""
    root.list1.v0 = root.list1.v0 + 1


def _phase_inference_driver(root, session) -> None:
    """The driver the whole-program analysis reads its phases from."""
    session.base(roots=[root])
    node = root.list0
    while node is not None:
        node.v0 = node.v0 + 1
        node = node.next
    session.commit(phase="hot", roots=[root])
    root.list1.v0 = root.list1.v0 + 1
    session.commit(phase="tail", roots=[root])


def phase_inference(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Declared vs inferred specialization: bytes, setup time, skipped work.

    The driver above commits two labeled phases; whole-program inference
    derives their patterns from the program text alone, and each phase is
    checkpointed three ways on identical modification states — the
    generic incremental driver, a hand-declared specialization, and the
    inferred unguarded specialization. The inferred tier must be
    byte-identical to the generic driver while skipping the traversal of
    every quiescent subtree.
    """
    import time

    from repro.core.checkpoint import reset_flags
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime import CheckpointSession, InferredStrategy, SpecializedStrategy
    from repro.spec.effects.wholeprogram import infer_phases
    from repro.spec.modpattern import ModificationPattern
    from repro.spec.shape import Shape
    from repro.spec.specclass import SpecClass, SpecCompiler
    from repro.synthetic.structures import build_structures
    from repro.synthetic.workload import FlagSnapshot

    count = _population(paper_scale, structures)
    population = build_structures(count, 3, 4, 1)
    for compound in population:
        reset_flags(compound)
    shape = Shape.of(population[0])

    start = time.perf_counter()
    program = infer_phases(shape, _phase_inference_driver, roots=["root"])
    infer_seconds = time.perf_counter() - start
    bindable = program.bindable()

    declared_patterns = {
        "hot": ModificationPattern.subtrees(shape, [("list0",)]),
        "tail": ModificationPattern.only(shape, [("list1",)]),
    }
    mutators = {"hot": _hot_mutate, "tail": _tail_mutate}

    result = ExperimentResult(
        "Phase inference",
        f"Declared vs inferred specialization ({count} structures, "
        "3 lists x 4)",
        (
            "phase",
            "variant",
            "ckp bytes",
            "setup (s)",
            "skipped subtrees",
            "matches incremental",
        ),
    )

    for label in ("hot", "tail"):
        mutate = mutators[label]
        for compound in population:
            mutate(compound)
        snapshot = FlagSnapshot(population)

        start = time.perf_counter()
        declared_strategy = SpecializedStrategy.from_spec(
            SpecClass(
                shape, declared_patterns[label], name=f"declared_{label}"
            ),
            compiler=SpecCompiler(),
        )
        declared_seconds = time.perf_counter() - start

        start = time.perf_counter()
        inferred_strategy = InferredStrategy.from_inferred(
            bindable[label], compiler=SpecCompiler()
        )
        inferred_seconds = infer_seconds + (time.perf_counter() - start)

        variants = (
            ("incremental", "incremental", 0.0, None),
            ("declared", declared_strategy, declared_seconds,
             declared_patterns[label]),
            ("inferred", inferred_strategy, inferred_seconds,
             bindable[label].pattern),
        )
        baseline = None
        for name, strategy, setup, pattern in variants:
            snapshot.restore()
            registry = MetricsRegistry()
            session = CheckpointSession(
                roots=population, strategy=strategy, metrics=registry
            )
            committed = session.commit(phase=label)
            result.metrics[f"{label}/{name}"] = registry.snapshot()
            if baseline is None:
                baseline = committed.data
            skipped = len(pattern.skipped_subtrees()) if pattern else 0
            result.add_row(
                label,
                name,
                committed.size,
                round(setup, 4),
                skipped,
                committed.data == baseline,
            )
        snapshot.restore()
        session = CheckpointSession(roots=population)
        session.commit(phase=label)  # clear flags for the next phase

    result.add_note(
        f"pattern inference over the driver took {infer_seconds:.4f}s "
        f"({len(program.commit_sites)} commit sites, "
        f"{len(bindable)} bindable phases); setup = inference + compile"
    )
    result.add_note(
        "the inferred tier is compiled unguarded: the analysis proves the "
        "pattern sound, so no run-time pattern checks are emitted"
    )
    return result


# ---------------------------------------------------------------------------
# Fault recovery — robustness cost of the durable-storage path
# ---------------------------------------------------------------------------


def fault_recovery(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Crash-recovery soundness and the cost of repairing a damaged store.

    Two measurements the paper's evaluation leaves implicit:

    - the seeded crash-simulation matrix (every injected crash point must
      recover byte-identically to a fault-free run), grouped per write
      path, and
    - wall-clock cost of ``recover()``, ``fsck`` scan, and ``fsck``
      repair on a file store whose epoch count scales with the synthetic
      population.
    """
    import os
    import shutil
    import tempfile
    import time

    from repro.faults.crashsim import (
        BRANCH_PATH,
        REPLICA_PATH,
        BranchSim,
        CrashSim,
        ReplicaSim,
        build_matrix,
    )
    from repro.fsck.manager import RecoveryManager
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import MemoryExporter, Tracer

    count = _population(paper_scale, structures)
    workdir = tempfile.mkdtemp(prefix="bench-fault-recovery-")
    try:
        exporter = MemoryExporter()
        tracer = Tracer([exporter])
        scenarios = build_matrix()
        linear = [
            s for s in scenarios if s.path not in (BRANCH_PATH, REPLICA_PATH)
        ]
        branching = [s for s in scenarios if s.path == BRANCH_PATH]
        replicated = [s for s in scenarios if s.path == REPLICA_PATH]
        start = time.perf_counter()
        results = CrashSim(workdir, tracer=tracer).run_matrix(linear)
        results += BranchSim(
            os.path.join(workdir, BRANCH_PATH), tracer=tracer
        ).run_matrix(branching)
        results += ReplicaSim(
            os.path.join(workdir, REPLICA_PATH), tracer=tracer
        ).run_matrix(replicated)
        matrix_seconds = time.perf_counter() - start

        result = ExperimentResult(
            "Fault recovery",
            "Crash-simulation matrix and store repair cost "
            f"({len(results)} scenarios; store of {max(50, count // 10)} "
            "epochs)",
            ("measurement", "runs", "ok", "crashed", "wall (s)"),
        )
        for path in (
            "store", "sink", "background", BRANCH_PATH, REPLICA_PATH
        ):
            grouped = [r for r in results if r.path == path]
            result.add_row(
                f"crashsim [{path} path]",
                len(grouped),
                sum(1 for r in grouped if r.ok),
                sum(1 for r in grouped if r.crashed),
                "-",
            )
        result.add_row(
            "crashsim [all]",
            len(results),
            sum(1 for r in results if r.ok),
            sum(1 for r in results if r.crashed),
            round(matrix_seconds, 3),
        )

        # Repair cost on a store big enough for the numbers to mean
        # something; the population size scales the epoch count.
        from repro.core.storage import FileStore
        from repro.runtime.session import CheckpointSession
        from repro.synthetic.structures import build_structures, element_at

        epoch_count = max(50, count // 10)
        store_dir = os.path.join(workdir, "repair-cost")
        roots = build_structures(3, 2, 3, 1)
        registry = MetricsRegistry()
        session = CheckpointSession(
            roots=roots, sink=store_dir, metrics=registry
        )
        session.base()
        for step in range(1, epoch_count):
            element_at(roots[step % 3], step % 2, step % 3).v0 = step
            session.commit()
        result.metrics["repair-cost-session"] = registry.snapshot()
        result.metrics["crashsim-events"] = {
            etype: len(exporter.of_type(etype))
            for etype in ("crashsim.scenario.end", "fsck.repair", "fsck.scan")
        }

        store = FileStore(store_dir)
        start = time.perf_counter()
        store.recover()
        result.add_row(
            "recover() over the full chain", 1, 1, 0,
            round(time.perf_counter() - start, 4),
        )

        start = time.perf_counter()
        scan = RecoveryManager(store_dir).scan()
        result.add_row(
            "fsck scan (clean store)", len(scan.files), int(scan.consistent),
            0, round(time.perf_counter() - start, 4),
        )

        damaged_dir = os.path.join(workdir, "repair-cost-damaged")
        shutil.copytree(store_dir, damaged_dir)
        torn = os.path.join(damaged_dir, f"epoch-{epoch_count - 1:06d}.ckpt")
        with open(torn, "rb+") as handle:
            handle.truncate(9)
        start = time.perf_counter()
        repaired = RecoveryManager(damaged_dir).repair()
        result.add_row(
            "fsck repair (torn tail)", len(repaired.files),
            int(repaired.consistent), 0,
            round(time.perf_counter() - start, 4),
        )

        failures = [r.name for r in results if not r.ok]
        if failures:
            result.add_note(f"FAILED scenarios: {', '.join(failures)}")
        else:
            result.add_note(
                "every scenario recovered byte-identically to the "
                "fault-free reference and fsck reported the repaired "
                "store consistent"
            )
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Time travel — restore latency vs delta-chain depth
# ---------------------------------------------------------------------------


def time_travel(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Cost of materializing history: restore latency against chain depth.

    The lineage graph makes every epoch addressable, but restoring one
    replays its whole base chain; this experiment measures that replay
    cost as the chain deepens, then shows the two levers that bound it:
    compaction (folds the chain into a fresh base) and a full-epoch
    cadence (caps every chain at the policy's interval).
    """
    import os
    import shutil
    import tempfile
    import time

    from repro.core.restore import state_digest
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.session import CheckpointSession
    from repro.synthetic.structures import build_structures, element_at

    count = _population(paper_scale, structures)
    compounds = max(4, count // 250)
    depths = (1, 4, 16, 64)
    max_depth = max(depths)
    workdir = tempfile.mkdtemp(prefix="bench-time-travel-")

    def best_restore(session, target, repeats=3):
        walls = []
        for _ in range(repeats):
            start = time.perf_counter()
            session.restore(target)
            walls.append(time.perf_counter() - start)
        return min(walls)

    try:
        registry = MetricsRegistry()
        roots = build_structures(compounds, 2, 3, 1)
        session = CheckpointSession(
            roots=roots,
            sink=os.path.join(workdir, "deep"),
            metrics=registry,
        )
        result = ExperimentResult(
            "Time travel",
            "Restore latency vs delta-chain depth "
            f"({compounds} compound structures per epoch)",
            ("operation", "chain depth", "epochs replayed", "wall (s)"),
        )
        session.base()
        digests = {0: state_digest(roots[0])}
        for step in range(1, max_depth + 1):
            element_at(roots[step % compounds], step % 2, step % 3).v0 = step
            session.commit()
            digests[step] = state_digest(roots[0])

        for depth in depths:
            wall = best_restore(session, depth)
            identical = state_digest(session.roots()[0]) == digests[depth]
            result.add_row(
                "restore(epoch)" if identical else "restore(epoch) MISMATCH",
                depth,
                depth + 1,
                round(wall, 4),
            )

        # Lever 1: compaction folds the chain into a fresh full base.
        session.restore(max_depth)
        session.commit()  # anchor the restored chain so compact() may run
        new_base = session.compact()
        wall = best_restore(session, new_base)
        result.add_row("restore(compacted base)", 0, 1, round(wall, 4))

        # Lever 2: a periodic-full cadence caps every chain's depth.
        from repro.runtime.policy import EpochPolicy

        capped_roots = build_structures(compounds, 2, 3, 1)
        capped = CheckpointSession(
            roots=capped_roots,
            sink=os.path.join(workdir, "capped"),
            policy=EpochPolicy.periodic_full(8),
        )
        capped.base()
        for step in range(1, max_depth + 1):
            element_at(
                capped_roots[step % compounds], step % 2, step % 3
            ).v0 = step
            capped.commit()
        # max_depth itself lands on a full; the epoch before it sits at
        # the deepest point of its 8-epoch chain
        capped_target = max_depth - 1
        wall = best_restore(capped, capped_target)
        line = capped.sink.store.recovery_line(capped_target)
        result.add_row(
            "restore(deep, periodic_full(8))",
            capped_target,
            len(line),
            round(wall, 4),
        )

        # Branch bookkeeping cost: named pin and fork are O(1) appends.
        start = time.perf_counter()
        session.checkpoint("pin")
        pin_wall = time.perf_counter() - start
        result.add_row("checkpoint(name)", "-", 0, round(pin_wall, 4))
        start = time.perf_counter()
        session.fork(at="pin", branch="bench-fork")
        fork_wall = time.perf_counter() - start
        result.add_row("fork(at=pin)", 1, 2, round(fork_wall, 4))

        result.metrics["session"] = registry.snapshot()
        result.add_note(
            "every timed restore was verified byte-identical "
            "(state_digest) against the live state recorded at commit "
            "time; compaction and a full-epoch cadence both flatten the "
            "replay cost back to O(1) epochs"
        )
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Replication — quorum writes, scrubbing, and failover overhead
# ---------------------------------------------------------------------------


def replication(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Cost of replicated durability on the commit and repair paths.

    Measures, against a single-store baseline on the same workload:

    - commit wall-clock through a 3-replica quorum-2 store, a
      strict all-ack (quorum=3) store, and a 5-replica quorum-3 store
      (fan-out plus the end-to-end sha256 framing);
    - degraded commits: one replica dead, the breaker fencing it, the
      quorum absorbing the loss;
    - scrub cost, clean and with seeded divergence to detect and
      repair;
    - quorum recovery (checksum-verified majority read) vs single-store
      recovery.
    """
    import os
    import shutil
    import tempfile
    import time

    from repro.core.replica import ReplicatedStore, Scrubber
    from repro.core.storage import FileStore
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import MemoryExporter, Tracer
    from repro.runtime.session import CheckpointSession
    from repro.runtime.sink import StoreSink
    from repro.synthetic.structures import build_structures, element_at

    count = _population(paper_scale, structures)
    epoch_count = max(40, count // 25)
    workdir = tempfile.mkdtemp(prefix="bench-replication-")
    try:
        result = ExperimentResult(
            "Replication",
            "Quorum-replicated checkpoint storage: commit overhead, "
            f"scrub and failover cost ({epoch_count} epochs/run)",
            ("configuration", "epochs", "acked", "degraded", "wall (s)"),
        )

        def run_commits(sink_store, label, store_handle=None):
            roots = build_structures(3, 2, 3, 1)
            session = CheckpointSession(roots=roots, sink=StoreSink(sink_store))
            start = time.perf_counter()
            session.base()
            for step in range(1, epoch_count):
                element_at(roots[step % 3], step % 2, step % 3).v0 = step
                session.commit()
            session.flush()
            wall = time.perf_counter() - start
            handle = store_handle or sink_store
            last = getattr(handle, "last_commit", None) or {}
            status = (
                getattr(handle, "replica_status", lambda: [])() or []
            )
            degraded = sum(1 for s in status if s["state"] != "healthy")
            result.add_row(
                label,
                epoch_count,
                len(last.get("acked", [])) or "-",
                degraded,
                round(wall, 4),
            )
            return wall

        def replica_dirs(tag, n):
            return [
                os.path.join(workdir, f"{tag}-r{i}") for i in range(n)
            ]

        baseline = run_commits(
            FileStore(os.path.join(workdir, "single")), "single FileStore"
        )

        exporter = MemoryExporter()
        tracer = Tracer([exporter])
        metrics = MetricsRegistry()
        quorum_dirs = replica_dirs("q2", 3)
        quorum_store = ReplicatedStore([FileStore(d) for d in quorum_dirs])
        quorum_store.instrument(tracer, metrics)
        replicated = run_commits(quorum_store, "3 replicas, quorum 2")

        allack = ReplicatedStore(
            [FileStore(d) for d in replica_dirs("q3", 3)], quorum=3
        )
        run_commits(allack, "3 replicas, quorum 3 (all-ack)")

        wide = ReplicatedStore(
            [FileStore(d) for d in replica_dirs("w5", 5)]
        )
        run_commits(wide, "5 replicas, quorum 3")

        # Failover: one volume dies mid-run; the breaker fences it and
        # the quorum keeps every commit alive.
        from repro.faults.inject import ReplicaFaultStore
        from repro.faults.plan import KILL_REPLICA, FaultPlan, FaultSpec

        kill_plan = FaultPlan.single(
            FaultSpec(epoch_count // 2, KILL_REPLICA, replica=2)
        )
        failover = ReplicatedStore(
            [
                ReplicaFaultStore(FileStore(d), kill_plan, i)
                for i, d in enumerate(replica_dirs("kill", 3))
            ],
            fence_after=2,
        )
        run_commits(failover, "3 replicas, one dies mid-run")

        # Scrub: clean sweep, then a sweep over seeded divergence.
        scrubber = Scrubber(quorum_store)
        start = time.perf_counter()
        clean = scrubber.run_once()
        clean_wall = time.perf_counter() - start
        result.add_row(
            "scrub (clean)", clean.epochs_checked, "-",
            len(clean.repaired), round(clean_wall, 4),
        )

        victim = FileStore(quorum_dirs[1])
        for index in range(0, epoch_count, max(1, epoch_count // 8)):
            epoch = victim.epoch_map()[index]
            payload = bytearray(epoch.data)
            payload[len(payload) // 2] ^= 0xFF
            victim.put_epoch(epoch._replace(data=bytes(payload)), overwrite=True)
        start = time.perf_counter()
        dirty = quorum_store.scrub()
        dirty_wall = time.perf_counter() - start
        result.add_row(
            "scrub (seeded divergence)", dirty.epochs_checked, "-",
            len(dirty.repaired), round(dirty_wall, 4),
        )

        # Recovery: quorum read (checksum-verified majority) vs single.
        single_store = FileStore(os.path.join(workdir, "single"))
        start = time.perf_counter()
        single_store.recover()
        single_recover = time.perf_counter() - start
        result.add_row(
            "recover() single store", epoch_count, "-", 0,
            round(single_recover, 4),
        )
        start = time.perf_counter()
        quorum_store.recover()
        quorum_recover = time.perf_counter() - start
        result.add_row(
            "recover() quorum read", epoch_count, "-", 0,
            round(quorum_recover, 4),
        )

        result.metrics["replication"] = metrics.snapshot()
        result.metrics["events"] = {
            etype: len(exporter.of_type(etype))
            for etype in ("replica.append", "replica.state", "scrub.repair")
        }
        overhead = replicated / baseline if baseline > 0 else float("nan")
        result.add_note(
            f"3-way quorum-2 commit overhead vs single store: "
            f"{overhead:.2f}x wall-clock; scrub repaired "
            f"{len(dirty.repaired)} seeded divergence(s), quarantining "
            "every replaced record"
        )
        if not dirty.healed or len(dirty.repaired) == 0:
            result.add_note("FAILED: seeded divergence was not healed")
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Differential — block-skip commit path on a million-object population
# ---------------------------------------------------------------------------


def differential(
    paper_scale: bool = False,
    structures: Optional[int] = None,
    kernels: Optional[int] = None,
) -> ExperimentResult:
    """Commit-path cost of the block dirtiness tier at low modification density.

    A ~million-object population (default 10,000 compound structures of
    101 objects each) is mutated at ~1% object density and committed
    through three tiers on identical modification states:

    - ``incremental``: the paper's full flag walk (the baseline),
    - ``packed``: the same walk recording through the batched
      ``record_packed`` codec,
    - ``differential``: the block tier skipping clean blocks without
      traversal, over the packed codec.

    Every epoch the packed and differential tiers produce is asserted
    byte-identical to the baseline's. Two honesty rows bound the claim:
    a *scattered* workload (same density, one touched object per
    structure) dirties every block and collapses the differential win to
    the packed win, and a hash-``skip`` row shows the write-back trade
    (restore-equivalent, not byte-identical).
    """
    from repro.core.blocks import BlockTier
    from repro.core.checkpoint import reset_flags
    from repro.runtime import CheckpointSession
    from repro.runtime.strategy import DEFAULT_STRATEGIES, DifferentialStrategy
    from repro.synthetic.structures import build_structures, list_field_name
    from repro.vm.machine import MeteredMachine

    count = structures if structures is not None else (
        PAPER_STRUCTURES if paper_scale else 10000
    )
    num_lists, list_length, ints = 5, 20, 1
    objects_per = 1 + num_lists * list_length
    total_objects = count * objects_per
    cluster = max(1, count // 100)  # structures fully rewritten per trial
    trials = 3

    roots = build_structures(count, num_lists, list_length, ints)
    for compound in roots:
        reset_flags(compound)

    def touch(compound, value: int) -> None:
        for list_index in range(num_lists):
            node = getattr(compound, list_field_name(list_index))
            while node is not None:
                node.v0 = value
                node = node.next

    def clustered(trial: int) -> None:
        # ~1% of the population's objects, contiguous in root order: the
        # dirtied structures share a few blocks. Values depend only on the
        # trial index, so every tier sees (and writes) identical state.
        start = (trial * cluster) % count
        for compound in roots[start : start + cluster]:
            touch(compound, trial * 7 + 3)

    def scattered(trial: int) -> None:
        # The same number of touched objects, one per structure: every
        # block contains a flagged object.
        field = list_field_name(trial % num_lists)
        for compound in roots:
            getattr(compound, field).v0 = trial * 7 + 3

    def writeback(trial: int) -> None:
        # Flag writes that do not change any value (the hash-skip trade).
        start = (trial * cluster) % count
        for compound in roots[start : start + cluster]:
            for list_index in range(num_lists):
                node = getattr(compound, list_field_name(list_index))
                while node is not None:
                    node.v0 = node.v0
                    node = node.next

    def run_tier(strategy, mutate):
        session = CheckpointSession(roots=roots, strategy=strategy)
        session.commit()  # baseline: partitions the tier, clears flags
        walls, datas = [], []
        for trial in range(trials):
            mutate(trial)
            committed = session.commit()
            walls.append(committed.wall_seconds)
            datas.append(committed.data)
        return min(walls), datas, getattr(strategy, "last_stats", None)

    result = ExperimentResult(
        "differential",
        "Block-skip differential commit path "
        f"({count} structures, {total_objects} objects, ~1% density)",
        (
            "variant",
            "workload",
            "commit (s)",
            "speedup",
            "epoch (Mb)",
            "blocks walked/skipped",
            "byte-identical",
        ),
    )

    def block_cell(stats) -> str:
        if not stats:
            return "-"
        return f"{stats['walked']}/{stats['skipped']}"

    # -- clustered: the regime the tier exists for -------------------------
    base_wall, base_datas, _ = run_tier(
        DEFAULT_STRATEGIES.create("incremental"), clustered
    )
    result.add_row(
        "incremental",
        "clustered 1%",
        round(base_wall, 4),
        1.0,
        megabytes(len(base_datas[-1])),
        "-",
        "(reference)",
    )
    clustered_speedups = {}
    for name in ("packed", "differential", "differential-verify"):
        wall, datas, stats = run_tier(DEFAULT_STRATEGIES.create(name), clustered)
        identical = datas == base_datas
        clustered_speedups[name] = base_wall / wall
        result.add_row(
            name,
            "clustered 1%",
            round(wall, 4),
            round(base_wall / wall, 2),
            megabytes(len(datas[-1])),
            block_cell(stats),
            "yes" if identical else "NO",
        )

    # -- hash-skip: write-back elision (restore-equivalent) ----------------
    wall, datas, stats = run_tier(
        DifferentialStrategy(hash_mode="skip"), writeback
    )
    result.add_row(
        "differential-skip",
        "write-back",
        round(wall, 4),
        "-",
        megabytes(len(datas[-1])),
        block_cell(stats),
        "restore-equivalent",
    )

    # -- scattered honesty row: same density, every block dirty ------------
    scat_wall, scat_datas, _ = run_tier(
        DEFAULT_STRATEGIES.create("incremental"), scattered
    )
    result.add_row(
        "incremental",
        "scattered 1%",
        round(scat_wall, 4),
        1.0,
        megabytes(len(scat_datas[-1])),
        "-",
        "(reference)",
    )
    wall, datas, stats = run_tier(
        DEFAULT_STRATEGIES.create("differential"), scattered
    )
    result.add_row(
        "differential",
        "scattered 1%",
        round(wall, 4),
        round(scat_wall / wall, 2),
        megabytes(len(datas[-1])),
        block_cell(stats),
        "yes" if datas == scat_datas else "NO",
    )

    # -- simulated op-count speedups (abstract machine, Harissa) -----------
    sample = min(400, count)
    sample_cluster = max(1, sample // 100)
    sample_roots = roots[:sample]

    def sim_counts(kind: str) -> OpCounts:
        for compound in sample_roots:
            reset_flags(compound)
        tier = None
        if kind == "differential":
            tier = BlockTier()
            tier.partition(sample_roots)
            for block in tier.blocks:
                tier.mark_committed(block)
        for compound in sample_roots[:sample_cluster]:
            touch(compound, 1)
        machine = MeteredMachine()
        if kind == "incremental":
            for root in sample_roots:
                machine.run_incremental(root)
        elif kind == "packed":
            for root in sample_roots:
                machine.run_packed(root)
        else:
            machine.run_differential(tier)
        return machine.counts

    sim_base = HARISSA.seconds(sim_counts("incremental"))
    sim_packed = HARISSA.seconds(sim_counts("packed"))
    sim_diff = HARISSA.seconds(sim_counts("differential"))
    result.add_note(
        f"simulated (Harissa, {sample}-structure sample): packed "
        f"{sim_base / sim_packed:.2f}x, differential "
        f"{sim_base / sim_diff:.2f}x over the incremental flag walk"
    )
    result.add_note(
        f"clustered workload: {cluster} structures fully rewritten per "
        f"commit ({cluster * num_lists * list_length} of "
        f"{total_objects} objects, "
        f"{cluster * num_lists * list_length / total_objects:.2%})"
    )
    result.add_note(
        "every packed/differential epoch was asserted byte-identical to "
        "the incremental baseline on the same modification state; the "
        "skip row elides re-written content and is restore-equivalent "
        "only"
    )
    if clustered_speedups["differential"] < 5.0:
        result.add_note(
            "FAILED: differential clustered speedup "
            f"{clustered_speedups['differential']:.2f}x below the 5x target"
        )
    return result


ALL_EXPERIMENTS = {
    "table1": table1,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "table2": table2,
    "phase_inference": phase_inference,
    "differential": differential,
    "fault_recovery": fault_recovery,
    "time_travel": time_travel,
    "replication": replication,
}
