"""Side-effect analysis (paper section 4.1).

Computes, for every AST node, the sets of variables read and written by
the execution of that node's subtree — including the effects of called
functions, restricted to global variables (parameters are passed by value
and locals die with their frame). Function summaries are iterated to a
fixpoint over the (possibly recursive) call graph; each full pass over the
program is one *iteration*, after which the engine takes a checkpoint.

Results are written into each node's ``Attributes.se_entry`` as two sorted
identifier lists; writes happen only when a set actually changed, so the
modification flags trace fixpoint progress.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.analysis.attributes import AttributesTable
from repro.analysis.lang import astnodes as ast
from repro.analysis.symbols import Symbol, SymbolTable

Effects = Tuple[Set[int], Set[int]]  # (reads, writes)


class FunctionSummary:
    """Global-variable effects of calling one function."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Set[int] = set()
        self.writes: Set[int] = set()

    def update(self, reads: Set[int], writes: Set[int]) -> bool:
        changed = not (reads <= self.reads and writes <= self.writes)
        self.reads |= reads
        self.writes |= writes
        return changed


class SideEffectAnalysis:
    """Interprocedural read/write-set analysis."""

    def __init__(
        self,
        program: ast.Program,
        symbols: SymbolTable,
        attributes: AttributesTable,
    ) -> None:
        self.program = program
        self.symbols = symbols
        self.attributes = attributes
        self.summaries: Dict[str, FunctionSummary] = {
            func.name: FunctionSummary() for func in program.functions
        }
        self.iterations = 0

    def run(self, on_iteration: Optional[Callable[[int], None]] = None) -> int:
        """Iterate to fixpoint; returns the number of iterations.

        ``on_iteration`` is invoked after every full pass (the engine's
        checkpoint hook). At least two passes always run: the pass that
        reaches the fixpoint and the pass that verifies it.
        """
        while True:
            changed = self._pass()
            self.iterations += 1
            if on_iteration is not None:
                on_iteration(self.iterations)
            if not changed:
                return self.iterations

    # -- one pass ------------------------------------------------------------

    def _pass(self) -> bool:
        changed = False
        for decl in self.program.globals:
            reads: Set[int] = set()
            if decl.init is not None:
                expr_reads, _ = self._expr(decl.init)
                reads |= expr_reads
            if self.attributes.of(decl).set_side_effects(reads, {decl.symbol.symbol_id}):
                changed = True
        for func in self.program.functions:
            reads, writes = self._stmt(func.body)
            if self.attributes.of(func).set_side_effects(
                self._globals_only(reads), self._globals_only(writes)
            ):
                changed = True
            if self.summaries[func.name].update(
                self._globals_only(reads), self._globals_only(writes)
            ):
                changed = True
        return changed

    def _globals_only(self, ids: Set[int]) -> Set[int]:
        return {i for i in ids if self.symbols.symbol(i).kind == Symbol.GLOBAL}

    # -- statements -------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> Effects:
        if isinstance(stmt, ast.Block):
            reads: Set[int] = set()
            writes: Set[int] = set()
            for inner in stmt.body:
                inner_reads, inner_writes = self._stmt(inner)
                reads |= inner_reads
                writes |= inner_writes
        elif isinstance(stmt, ast.Decl):
            reads, writes = set(), {stmt.symbol.symbol_id}
            if stmt.init is not None:
                init_reads, init_writes = self._expr(stmt.init)
                reads |= init_reads
                writes |= init_writes
        elif isinstance(stmt, ast.Assign):
            reads, writes = self._expr(stmt.expr)
            if isinstance(stmt.target, ast.VarRef):
                writes = writes | {stmt.target.symbol.symbol_id}
                self._record(stmt.target, set(), {stmt.target.symbol.symbol_id})
            else:  # IndexRef: the index is read, the array written
                index_reads, index_writes = self._expr(stmt.target.index)
                reads |= index_reads
                writes = writes | index_writes | {stmt.target.array.symbol.symbol_id}
                self._record(
                    stmt.target,
                    index_reads,
                    {stmt.target.array.symbol.symbol_id},
                )
        elif isinstance(stmt, ast.If):
            reads, writes = self._expr(stmt.cond)
            then_reads, then_writes = self._stmt(stmt.then)
            reads |= then_reads
            writes |= then_writes
            if stmt.orelse is not None:
                else_reads, else_writes = self._stmt(stmt.orelse)
                reads |= else_reads
                writes |= else_writes
        elif isinstance(stmt, ast.While):
            reads, writes = self._expr(stmt.cond)
            body_reads, body_writes = self._stmt(stmt.body)
            reads |= body_reads
            writes |= body_writes
        elif isinstance(stmt, ast.For):
            reads, writes = set(), set()
            for part in (stmt.init, stmt.step):
                if part is not None:
                    part_reads, part_writes = self._stmt(part)
                    reads |= part_reads
                    writes |= part_writes
            if stmt.cond is not None:
                cond_reads, cond_writes = self._expr(stmt.cond)
                reads |= cond_reads
                writes |= cond_writes
            body_reads, body_writes = self._stmt(stmt.body)
            reads |= body_reads
            writes |= body_writes
        elif isinstance(stmt, ast.Return):
            reads, writes = (
                self._expr(stmt.value) if stmt.value is not None else (set(), set())
            )
        elif isinstance(stmt, ast.ExprStmt):
            reads, writes = self._expr(stmt.expr)
        else:  # pragma: no cover - parser produces no other statements
            raise TypeError(f"unknown statement {stmt!r}")
        self._record(stmt, reads, writes)
        return reads, writes

    # -- expressions --------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> Effects:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            reads, writes = set(), set()
        elif isinstance(expr, ast.VarRef):
            reads, writes = {expr.symbol.symbol_id}, set()
        elif isinstance(expr, ast.IndexRef):
            index_reads, index_writes = self._expr(expr.index)
            reads = index_reads | {expr.array.symbol.symbol_id}
            writes = index_writes
            self._record(expr.array, {expr.array.symbol.symbol_id}, set())
        elif isinstance(expr, ast.Unary):
            reads, writes = self._expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            left_reads, left_writes = self._expr(expr.left)
            right_reads, right_writes = self._expr(expr.right)
            reads = left_reads | right_reads
            writes = left_writes | right_writes
        elif isinstance(expr, ast.Call):
            reads, writes = set(), set()
            for arg in expr.args:
                arg_reads, arg_writes = self._expr(arg)
                reads |= arg_reads
                writes |= arg_writes
            summary = self.summaries[expr.name]
            reads |= summary.reads
            writes |= summary.writes
        else:  # pragma: no cover
            raise TypeError(f"unknown expression {expr!r}")
        self._record(expr, reads, writes)
        return reads, writes

    def _record(self, node: ast.Node, reads: Set[int], writes: Set[int]) -> None:
        self.attributes.of(node).set_side_effects(reads, writes)
