"""A program specializer for the simplified C, driven by the analyses.

This completes the Tempo analog: the side-effect, binding-time and
evaluation-time analyses of this package exist (as in the paper, section
4.1) to drive program specialization — and this module is the specializer
they drive. Given an analyzed program and its division of inputs, it
performs offline polyvariant partial evaluation:

- expressions certified ``EVAL`` by the evaluation-time analysis are
  computed at specialization time and replaced by literals;
- statically-controlled conditionals are decided; statically-bounded
  loops are unrolled (with a residual-size budget);
- fully static statements and calls are executed at specialization time
  (e.g. kernel-initialization code disappears into folded coefficients);
- dynamic calls are replaced by calls to *specialized versions* of their
  callees — one residual function per (callee, static-argument values)
  pair, cached, with dynamic arguments as the remaining parameters.

The result is a residual program in the same language, so it can be
re-parsed, re-analyzed, printed, and — crucially — *executed by the
reference interpreter*, which is how the test suite certifies the whole
analysis stack: for every dynamic input, the residual program's
observable state must equal the original's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.attributes import DYNAMIC, EVAL, STATIC, AttributesTable
from repro.analysis.bta import BindingTimeAnalysis
from repro.analysis.eta import EvaluationTimeAnalysis
from repro.analysis.interp import Interpreter, InterpreterError
from repro.analysis.lang import astnodes as ast
from repro.analysis.lang.printer import print_program
from repro.analysis.symbols import SymbolTable
from repro.core.errors import SpecializationError


class SpecializationBudgetError(SpecializationError):
    """Residual code grew past the configured budget (runaway unrolling)."""


class ResidualProgram:
    """The output of specialization."""

    def __init__(self, program: ast.Program, source: str) -> None:
        self.program = program
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResidualProgram({self.source.count(chr(10)) + 1} lines)"


class MiniCSpecializer:
    """Offline polyvariant partial evaluator for analyzed programs."""

    def __init__(
        self,
        program: ast.Program,
        symbols: SymbolTable,
        attributes: AttributesTable,
        bta: BindingTimeAnalysis,
        eta: EvaluationTimeAnalysis,
        side_effects=None,
        max_residual_statements: int = 50_000,
        fuel: int = 5_000_000,
    ) -> None:
        self.program = program
        self.symbols = symbols
        self.attributes = attributes
        self.bta = bta
        self.eta = eta
        self.side_effects = side_effects
        self.max_residual_statements = max_residual_statements
        self._emitted_statements = 0

        # The specialization-time evaluator: an interpreter whose global
        # state plays the role of the static store. EVAL-certified code
        # only ever touches static, definitely-initialized state, so the
        # dynamic globals' placeholder zeros in here are never consulted.
        self._interp = Interpreter(program, symbols, fuel=fuel)
        self._interp._init_globals()

        #: specialized function versions: cache key -> residual name
        self._version_names: Dict[Tuple, str] = {}
        self._version_funcs: List[ast.FuncDef] = []
        self._version_counter = 0

    # -- helpers -------------------------------------------------------------

    def _et(self, node: ast.Node) -> int:
        return self.attributes.of(node).et_entry.et.value

    def _bt(self, node: ast.Node) -> int:
        value = self.attributes.of(node).bt_entry.bt.value
        return DYNAMIC if value == DYNAMIC else STATIC

    def _budget(self, amount: int = 1) -> None:
        self._emitted_statements += amount
        if self._emitted_statements > self.max_residual_statements:
            raise SpecializationBudgetError(
                "residual program exceeds "
                f"{self.max_residual_statements} statements; a statically "
                "bounded loop is being unrolled too far — declare its "
                "bound dynamic in the Division"
            )

    def _eval(self, expr: ast.Expr, env: Dict[int, Any]) -> Any:
        try:
            return self._interp._eval(expr, env)
        except KeyError as exc:  # pragma: no cover - would be an ETA bug
            raise SpecializationError(
                f"evaluation-time analysis certified an expression whose "
                f"variable is missing at specialization time: {exc}"
            )

    @staticmethod
    def _literal(line: int, value: Any) -> ast.Expr:
        if isinstance(value, bool):  # bools are ints in this language
            return ast.IntLit(line, int(value))
        if isinstance(value, int):
            return ast.IntLit(line, value)
        if isinstance(value, float):
            return ast.FloatLit(line, value)
        raise SpecializationError(f"cannot residualize value {value!r}")

    # -- entry point ---------------------------------------------------------

    def specialize(self, entry: str = "main") -> ResidualProgram:
        """Specialize the program starting from ``entry``.

        The residual program keeps the dynamic globals (with their
        initializers), contains one specialized version per residual
        callee reached, and an ``entry``-named driver.
        """
        entry_func = self.symbols.functions.get(entry)
        if entry_func is None:
            raise SpecializationError(f"no function named {entry!r}")
        body = self._spec_stmt_list(entry_func.body.body, {})
        main_func = ast.FuncDef(
            0, entry_func.ret_type, entry, [], ast.Block(0, body)
        )

        globals_: List[ast.GlobalDecl] = []
        for decl in self.program.globals:
            if self.bta.bt[decl.symbol.symbol_id] == DYNAMIC:
                init = None
                if decl.init is not None:
                    init = self._residualize(decl.init, {})
                globals_.append(
                    ast.GlobalDecl(0, decl.type, decl.name, decl.size, init)
                )
        residual = ast.Program(globals_, self._version_funcs + [main_func])
        self._renumber(residual)
        return ResidualProgram(residual, print_program(residual))

    @staticmethod
    def _renumber(program: ast.Program) -> None:
        count = 0
        for node in program.walk():
            node.node_id = count
            count += 1
        program.node_count = count

    # -- statements -------------------------------------------------------------

    def _spec_stmt_list(
        self, stmts: List[ast.Stmt], env: Dict[int, Any]
    ) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        for stmt in stmts:
            out.extend(self._spec_stmt(stmt, env))
            # A statically decided return makes everything after it dead;
            # specializing it anyway would be wrong (and, for recursive
            # functions, non-terminating).
            if out and isinstance(out[-1], ast.Return):
                break
        return out

    def _spec_stmt(self, stmt: ast.Stmt, env: Dict[int, Any]) -> List[ast.Stmt]:
        if isinstance(stmt, ast.Block):
            # Blocks carry no scope of their own after specialization
            # (symbols were resolved already); flatten them away.
            return self._spec_stmt_list(stmt.body, env)

        if isinstance(stmt, ast.Decl):
            return self._spec_decl(stmt, env)

        if isinstance(stmt, ast.Assign):
            return self._spec_assign(stmt, env)

        if isinstance(stmt, ast.If):
            return self._spec_if(stmt, env)

        if isinstance(stmt, ast.While):
            return self._spec_while(stmt, env)

        if isinstance(stmt, ast.For):
            return self._spec_for(stmt, env)

        if isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = self._residualize(stmt.value, env)
            self._budget()
            return [ast.Return(stmt.line, value)]

        if isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if self._et(expr) == EVAL:
                self._eval(expr, env)  # executed at specialization time
                return []
            if isinstance(expr, ast.Call):
                self._budget()
                return [ast.ExprStmt(stmt.line, self._residual_call(expr, env))]
            # An effect-free residual expression statement is dead code.
            return []

        raise SpecializationError(f"cannot specialize {stmt!r}")  # pragma: no cover

    def _spec_decl(self, stmt: ast.Decl, env: Dict[int, Any]) -> List[ast.Stmt]:
        symbol = stmt.symbol
        static_var = self.bta.bt.get(symbol.symbol_id, STATIC) == STATIC
        if static_var and not symbol.is_array:
            # Executed at specialization time; later uses fold to literals.
            if stmt.init is not None and self._et(stmt) == EVAL:
                env[symbol.symbol_id] = self._eval(stmt.init, env)
            elif stmt.init is None:
                env[symbol.symbol_id] = 0.0 if stmt.type == ast.FLOAT else 0
            else:
                # Static variable whose initializer is not evaluable here
                # (dynamic context): it must live residually.
                self._budget()
                return [
                    ast.Decl(
                        stmt.line,
                        stmt.type,
                        stmt.name,
                        None,
                        self._residualize(stmt.init, env),
                    )
                ]
            return []
        if static_var and symbol.is_array:
            raise SpecializationError(
                f"static local array {stmt.name!r} is not supported; make "
                "it a global or declare it dynamic"
            )
        init = self._residualize(stmt.init, env) if stmt.init is not None else None
        self._budget()
        return [ast.Decl(stmt.line, stmt.type, stmt.name, stmt.size, init)]

    def _spec_assign(self, stmt: ast.Assign, env: Dict[int, Any]) -> List[ast.Stmt]:
        if self._et(stmt) == EVAL:
            value = self._eval(stmt.expr, env)
            target = stmt.target
            if isinstance(target, ast.VarRef):
                if target.symbol.kind == "global":
                    self._interp.globals[target.symbol.symbol_id] = value
                else:
                    env[target.symbol.symbol_id] = value
            else:  # static array element with a static index
                array = self._interp.globals.get(
                    target.array.symbol.symbol_id
                )
                if array is None:
                    raise SpecializationError(
                        f"static array {target.array.name!r} is not global"
                    )
                index = self._eval(target.index, env)
                array[index] = value
            return []
        rhs = self._residualize(stmt.expr, env)
        executed = self._execute_if_static_target(stmt.target, rhs, env)
        if executed:
            return []
        self._budget()
        return [
            ast.Assign(stmt.line, self._residual_target(stmt.target, env), rhs)
        ]

    def _execute_if_static_target(
        self, target: ast.Expr, rhs: ast.Expr, env: Dict[int, Any]
    ) -> bool:
        """Perform a folded assignment to static state at specialization time.

        The ETA can refuse to certify an assignment whose right-hand side
        later folds anyway (e.g. a pure call the purity rule evaluates).
        If the target is still static, the binding-time analysis
        guarantees the assignment is not under dynamic control, so
        executing it now is sound — and emitting it would reference a
        static variable absent from the residual program.
        """
        if not isinstance(rhs, (ast.IntLit, ast.FloatLit)):
            return False
        if isinstance(target, ast.VarRef):
            symbol = target.symbol
            if self.bta.bt.get(symbol.symbol_id, STATIC) != STATIC:
                return False
            if symbol.kind == "global":
                self._interp.globals[symbol.symbol_id] = rhs.value
            else:
                env[symbol.symbol_id] = rhs.value
            return True
        if isinstance(target, ast.IndexRef):
            symbol = target.array.symbol
            if self.bta.bt.get(symbol.symbol_id, STATIC) != STATIC:
                return False
            index = self._residualize(target.index, env)
            if not isinstance(index, ast.IntLit) or symbol.kind != "global":
                return False
            array = self._interp.globals[symbol.symbol_id]
            if not 0 <= index.value < len(array):
                return False
            array[index.value] = rhs.value
            return True
        return False

    def _spec_if(self, stmt: ast.If, env: Dict[int, Any]) -> List[ast.Stmt]:
        if self._et(stmt.cond) == EVAL and self._et(stmt) == EVAL:
            branch = (
                stmt.then
                if self._interp._truthy(self._eval(stmt.cond, env))
                else stmt.orelse
            )
            return self._spec_stmt(branch, env) if branch is not None else []
        cond = self._residualize(stmt.cond, env)
        if isinstance(cond, (ast.IntLit, ast.FloatLit)):
            # The condition folded to a constant after all (e.g. a pure
            # static call under dynamic control): decide the branch.
            branch = stmt.then if cond.value != 0 else stmt.orelse
            return self._spec_stmt(branch, env) if branch is not None else []
        then = ast.Block(stmt.line, self._spec_stmt(stmt.then, env))
        orelse = None
        if stmt.orelse is not None:
            orelse_body = self._spec_stmt(stmt.orelse, env)
            orelse = ast.Block(stmt.line, orelse_body) if orelse_body else None
        self._budget()
        return [ast.If(stmt.line, cond, then, orelse)]

    def _spec_while(self, stmt: ast.While, env: Dict[int, Any]) -> List[ast.Stmt]:
        if self._et(stmt.cond) == EVAL and self._bt(stmt.cond) == STATIC:
            # Statically bounded loop: unroll at specialization time.
            out: List[ast.Stmt] = []
            while self._interp._truthy(self._eval(stmt.cond, env)):
                out.extend(self._spec_stmt(stmt.body, env))
                if out and isinstance(out[-1], ast.Return):
                    return out  # a statically decided return ends the loop
            return out
        self._budget()
        body = ast.Block(stmt.line, self._spec_stmt(stmt.body, env))
        return [ast.While(stmt.line, self._residualize(stmt.cond, env), body)]

    def _spec_for(self, stmt: ast.For, env: Dict[int, Any]) -> List[ast.Stmt]:
        static_control = (
            (stmt.cond is None or
             (self._et(stmt.cond) == EVAL and self._bt(stmt.cond) == STATIC))
            and (stmt.init is None or self._et(stmt.init) == EVAL)
            and (stmt.step is None or self._et(stmt.step) == EVAL)
        )
        if static_control and stmt.cond is not None:
            out: List[ast.Stmt] = []
            if stmt.init is not None:
                out.extend(self._spec_stmt(stmt.init, env))
            while self._interp._truthy(self._eval(stmt.cond, env)):
                out.extend(self._spec_stmt(stmt.body, env))
                if out and isinstance(out[-1], ast.Return):
                    return out  # a statically decided return ends the loop
                if stmt.step is not None:
                    out.extend(self._spec_stmt(stmt.step, env))
            return out
        # Residual loop: init/step may still be executable or must be kept.
        out = []
        init = None
        if stmt.init is not None:
            residual_init = self._spec_stmt(stmt.init, env)
            if len(residual_init) == 1 and isinstance(residual_init[0], ast.Assign):
                init = residual_init[0]
            else:
                out.extend(residual_init)
        step = None
        if stmt.step is not None:
            residual_step = self._spec_stmt(stmt.step, env)
            if len(residual_step) == 1 and isinstance(residual_step[0], ast.Assign):
                step = residual_step[0]
            else:
                raise SpecializationError(
                    "for-step of a residual loop must stay an assignment"
                )
        cond = (
            self._residualize(stmt.cond, env) if stmt.cond is not None else None
        )
        body = ast.Block(stmt.line, self._spec_stmt(stmt.body, env))
        self._budget()
        out.append(ast.For(stmt.line, init, cond, step, body))
        return out

    # -- expressions --------------------------------------------------------------

    def _residual_target(self, target: ast.Expr, env: Dict[int, Any]) -> ast.Expr:
        if isinstance(target, ast.VarRef):
            return ast.VarRef(target.line, target.name)
        return ast.IndexRef(
            target.line,
            ast.VarRef(target.array.line, target.array.name),
            self._residualize(target.index, env),
        )

    def _residualize(self, expr: ast.Expr, env: Dict[int, Any]) -> ast.Expr:
        """Rebuild ``expr`` with every evaluable part folded to a literal."""
        if self._et(expr) == EVAL:
            return self._literal(expr.line, self._eval(expr, env))
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return self._literal(expr.line, expr.value)
        if isinstance(expr, ast.VarRef):
            # A static scalar referenced in a residual position whose value
            # is known folds here even though the ETA context was dynamic
            # (its value cannot change under dynamic control — BTA).
            symbol = expr.symbol
            if self.bta.bt.get(symbol.symbol_id, STATIC) == STATIC and not symbol.is_array:
                if symbol.symbol_id in env:
                    return self._literal(expr.line, env[symbol.symbol_id])
                if symbol.kind == "global":
                    return self._literal(
                        expr.line, self._interp.globals[symbol.symbol_id]
                    )
            return ast.VarRef(expr.line, expr.name)
        if isinstance(expr, ast.IndexRef):
            symbol = expr.array.symbol
            index = self._residualize(expr.index, env)
            if (
                self.bta.bt.get(symbol.symbol_id, STATIC) == STATIC
                and isinstance(index, ast.IntLit)
                and symbol.kind == "global"
            ):
                array = self._interp.globals[symbol.symbol_id]
                if 0 <= index.value < len(array):
                    return self._literal(expr.line, array[index.value])
            if self.bta.bt.get(symbol.symbol_id, STATIC) == STATIC:
                raise SpecializationError(
                    f"static array {expr.array.name!r} indexed dynamically; "
                    "declare it dynamic in the Division to keep it residual"
                )
            return ast.IndexRef(
                expr.line, ast.VarRef(expr.array.line, expr.array.name), index
            )
        if isinstance(expr, ast.Unary):
            return self._fold(
                ast.Unary(expr.line, expr.op, self._residualize(expr.operand, env))
            )
        if isinstance(expr, ast.Binary):
            return self._fold(
                ast.Binary(
                    expr.line,
                    expr.op,
                    self._residualize(expr.left, env),
                    self._residualize(expr.right, env),
                )
            )
        if isinstance(expr, ast.Call):
            folded = self._try_fold_call(expr, env)
            if folded is not None:
                return folded
            return self._residual_call(expr, env)
        raise SpecializationError(f"cannot residualize {expr!r}")  # pragma: no cover

    def _is_pure(self, name: str) -> bool:
        if self.side_effects is None:
            return False
        summary = self.side_effects.summaries.get(name)
        return summary is not None and not summary.writes

    def _try_fold_call(self, call: ast.Call, env) -> Optional[ast.Expr]:
        """Evaluate a pure, static call whose arguments all fold.

        Such a call is a constant even when it occurs under dynamic
        control (the ETA conservatively marked it residual there): purity
        means evaluating it once at specialization time has no effects,
        and a static binding time means it reads only static state.
        """
        if self._bt(call) != STATIC or not self._is_pure(call.name):
            return None
        values = []
        for arg in call.args:
            folded = self._residualize(arg, env)
            if not isinstance(folded, (ast.IntLit, ast.FloatLit)):
                return None
            values.append(folded.value)
        try:
            result = self._interp.call(call.name, values)
        except InterpreterError:
            return None  # let the residual program fault at run time
        return self._literal(call.line, result)

    def _fold(self, expr: ast.Expr) -> ast.Expr:
        """Constant-fold an operator node whose operands became literals.

        Folding happens when earlier residualization turned static
        variables into literals (e.g. unrolled induction variables inside
        residual expressions). Faulting operations (division by zero) are
        left residual so run-time semantics are preserved.
        """
        operands = (
            (expr.operand,) if isinstance(expr, ast.Unary) else (expr.left, expr.right)
        )
        if all(isinstance(o, (ast.IntLit, ast.FloatLit)) for o in operands):
            try:
                value = self._interp._eval(expr, {})
            except InterpreterError:
                return expr
            return self._literal(expr.line, value)
        if isinstance(expr, ast.Binary):
            return self._fold_identity(expr)
        return expr

    @staticmethod
    def _fold_identity(expr: ast.Binary) -> ast.Expr:
        """Integer identity simplifications (x+0, x*1, ...), safe for ints."""
        left, right = expr.left, expr.right
        if isinstance(right, ast.IntLit):
            if right.value == 0 and expr.op in ("+", "-"):
                return left
            if right.value == 1 and expr.op in ("*", "/"):
                return left
        if isinstance(left, ast.IntLit):
            if left.value == 0 and expr.op == "+":
                return right
            if left.value == 1 and expr.op == "*":
                return right
        return expr

    # -- polyvariant function specialization -----------------------------------------

    def _residual_call(self, call: ast.Call, env: Dict[int, Any]) -> ast.Call:
        callee = call.func
        static_bindings: List[Tuple[int, Any]] = []
        dynamic_args: List[ast.Expr] = []
        dynamic_params: List[ast.Param] = []
        for index, (arg, param) in enumerate(zip(call.args, callee.params)):
            if self.bta.bt.get(param.symbol.symbol_id, STATIC) == STATIC:
                # The parameter is static at *every* call site (BTA joins
                # them), so the argument must fold to a literal — even
                # when this call sits under dynamic control and the ETA
                # therefore marked the argument residual.
                folded = self._residualize(arg, env)
                if not isinstance(folded, (ast.IntLit, ast.FloatLit)):
                    raise SpecializationError(
                        f"argument {index} of {callee.name!r} is bound to a "
                        "static parameter but did not fold to a constant"
                    )
                static_bindings.append((index, folded.value))
            else:
                dynamic_args.append(self._residualize(arg, env))
                dynamic_params.append(param)
        version = self._version_for(callee, tuple(static_bindings), dynamic_params)
        return ast.Call(call.line, version, dynamic_args)

    def _static_global_digest(self) -> Tuple:
        values = []
        for name in sorted(self.symbols.globals):
            symbol = self.symbols.globals[name]
            if self.bta.bt.get(symbol.symbol_id, STATIC) == STATIC:
                value = self._interp.globals[symbol.symbol_id]
                values.append((name, tuple(value) if isinstance(value, list) else value))
        return tuple(values)

    def _version_for(
        self,
        callee: ast.FuncDef,
        static_bindings: Tuple,
        dynamic_params: List[ast.Param],
    ) -> str:
        key = (callee.name, static_bindings, self._static_global_digest())
        cached = self._version_names.get(key)
        if cached is not None:
            return cached
        self._version_counter += 1
        name = f"{callee.name}__s{self._version_counter}"
        self._version_names[key] = name  # registered first: recursion-safe

        callee_env: Dict[int, Any] = {}
        bound = dict(static_bindings)
        for index, param in enumerate(callee.params):
            if index in bound:
                callee_env[param.symbol.symbol_id] = bound[index]
        body = self._spec_stmt_list(callee.body.body, callee_env)
        params = [
            ast.Param(0, param.type, param.name) for param in dynamic_params
        ]
        self._version_funcs.append(
            ast.FuncDef(0, callee.ret_type, name, params, ast.Block(0, body))
        )
        return name


def specialize_program(engine, entry: str = "main", **kwargs) -> ResidualProgram:
    """Specialize the program an :class:`AnalysisEngine` has analyzed.

    The engine must have been run (its BTA/ETA annotations populated).
    """
    return MiniCSpecializer(
        engine.program,
        engine.symbols,
        engine.attributes,
        engine.bta,
        engine.eta,
        side_effects=engine.side_effects,
        **kwargs,
    ).specialize(entry)
