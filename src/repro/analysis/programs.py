"""Generated simplified-C programs for the analysis engine.

The paper analyses "a 750-line image manipulation program"; the exact
source was never published, so :func:`image_pipeline_source` generates a
program of the same size and flavour: global image buffers, convolution
kernels, and a pipeline of per-pixel passes (blur, sharpen, edge
detection, thresholding, histogram, normalization). The generator is
deterministic, and its size knobs let tests use small instances while the
benchmarks use the paper-scale one.

The natural division for specialization: image geometry and kernel
coefficients are static, pixel data is dynamic — so loop control is
static while pixel arithmetic is dynamic, giving the analyses real work.
"""

from __future__ import annotations

from typing import List

from repro.analysis.bta import Division

#: deterministic coefficient table for generated kernels
_COEFFS = (1, 2, 1, 2, 4, 2, 1, 2, 1, 0, -1, 0, -1, 5, -1, 0, -1, 0, -1, -2)


def image_division() -> Division:
    """The division used when *analyzing* the generated image programs.

    Geometry and thresholds static, pixel data dynamic — a realistic
    division that gives the analyses a meaningful static/dynamic split.
    """
    return Division(
        static_globals={"width", "height", "levels", "threshold_level"},
        dynamic_globals={"img"},
    )


def specialization_division(kernels: int = 4) -> Division:
    """The division used when *specializing* the generated image programs.

    For residual-code generation the pixel loops must stay loops, so the
    image geometry is declared dynamic while the convolution kernels stay
    static — the classic "specialize the filter to its coefficients"
    setup. (With :func:`image_division`, width/height would be static and
    the specializer would try to fully unroll 64x64 pixel loops.)
    """
    static = {"levels", "threshold_level"}
    for index in range(kernels):
        static.add(f"kernel{index}")
        static.add(f"kdiv{index}")
    return Division(
        static_globals=static,
        dynamic_globals={
            "width", "height", "img", "tmp", "out", "hist",
            "min_value", "max_value", "total_luma",
        },
    )


def tiny_source() -> str:
    """A small program exercising every language construct (for tests)."""
    return """\
int width = 8;
int img[64];
int total = 0;

int clamp(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

int weigh(int x) {
    return clamp(x * 2, 0, 255);
}

void accumulate() {
    int x;
    for (x = 0; x < width; x = x + 1) {
        total = total + weigh(img[x]);
    }
}

void main() {
    int i = 0;
    while (i < width * width) {
        img[i] = i % 7;
        i = i + 1;
    }
    accumulate();
}
"""


def image_pipeline_source(kernels: int = 4, unrolled_inits: int = 6) -> str:
    """The paper-scale image manipulation program (~750 lines).

    ``kernels`` controls how many 3x3 convolution kernels (and passes)
    are generated; ``unrolled_inits`` pads with straight-line kernel
    initialisation code, as hand-written image code tends to have.
    """
    lines: List[str] = []
    emit = lines.append

    emit("// generated image manipulation pipeline")
    emit("int width = 64;")
    emit("int height = 64;")
    emit("int levels = 256;")
    emit("int threshold_level = 128;")
    emit("int img[4096];")
    emit("int tmp[4096];")
    emit("int out[4096];")
    emit("int hist[256];")
    emit("int min_value = 0;")
    emit("int max_value = 0;")
    emit("int total_luma = 0;")
    for k in range(kernels):
        emit(f"int kernel{k}[9];")
        emit(f"int kdiv{k} = 1;")
    emit("")

    emit("int clamp(int v, int lo, int hi) {")
    emit("    if (v < lo) { return lo; }")
    emit("    if (v > hi) { return hi; }")
    emit("    return v;")
    emit("}")
    emit("")
    emit("int at(int x, int y) {")
    emit("    return y * width + x;")
    emit("}")
    emit("")
    emit("int get_img(int x, int y) {")
    emit("    return img[at(clamp(x, 0, width - 1), clamp(y, 0, height - 1))];")
    emit("}")
    emit("")
    emit("int get_tmp(int x, int y) {")
    emit("    return tmp[at(clamp(x, 0, width - 1), clamp(y, 0, height - 1))];")
    emit("}")
    emit("")

    for k in range(kernels):
        emit(f"void init_kernel{k}() {{")
        total = 0
        for cell in range(9):
            coeff = _COEFFS[(k * 3 + cell) % len(_COEFFS)]
            total += coeff
            emit(f"    kernel{k}[{cell}] = {coeff};")
        emit(f"    kdiv{k} = {max(total, 1)};")
        for pad in range(unrolled_inits):
            emit(f"    kernel{k}[{pad % 9}] = kernel{k}[{pad % 9}] * 1;")
        emit("}")
        emit("")

    for k in range(kernels):
        emit(f"int apply_kernel{k}(int x, int y) {{")
        emit("    int acc = 0;")
        emit("    int dx;")
        emit("    int dy;")
        emit("    for (dy = 0; dy < 3; dy = dy + 1) {")
        emit("        for (dx = 0; dx < 3; dx = dx + 1) {")
        emit(
            f"            acc = acc + kernel{k}[dy * 3 + dx] * "
            "get_img(x + dx - 1, y + dy - 1);"
        )
        emit("        }")
        emit("    }")
        emit(f"    return clamp(acc / kdiv{k}, 0, levels - 1);")
        emit("}")
        emit("")
        emit(f"void convolve{k}() {{")
        emit("    int x;")
        emit("    int y;")
        emit("    for (y = 0; y < height; y = y + 1) {")
        emit("        for (x = 0; x < width; x = x + 1) {")
        emit(f"            tmp[at(x, y)] = apply_kernel{k}(x, y);")
        emit("        }")
        emit("    }")
        emit("    for (y = 0; y < height; y = y + 1) {")
        emit("        for (x = 0; x < width; x = x + 1) {")
        emit("            img[at(x, y)] = tmp[at(x, y)];")
        emit("        }")
        emit("    }")
        emit("}")
        emit("")

    emit("void compute_histogram() {")
    emit("    int i;")
    emit("    for (i = 0; i < levels; i = i + 1) {")
    emit("        hist[i] = 0;")
    emit("    }")
    emit("    for (i = 0; i < width * height; i = i + 1) {")
    emit("        hist[clamp(img[i], 0, levels - 1)] = "
         "hist[clamp(img[i], 0, levels - 1)] + 1;")
    emit("    }")
    emit("}")
    emit("")
    emit("void find_extrema() {")
    emit("    int i;")
    emit("    min_value = levels - 1;")
    emit("    max_value = 0;")
    emit("    for (i = 0; i < width * height; i = i + 1) {")
    emit("        if (img[i] < min_value) { min_value = img[i]; }")
    emit("        if (img[i] > max_value) { max_value = img[i]; }")
    emit("    }")
    emit("}")
    emit("")
    emit("void normalize_image() {")
    emit("    int i;")
    emit("    int span;")
    emit("    find_extrema();")
    emit("    span = max_value - min_value;")
    emit("    if (span < 1) { span = 1; }")
    emit("    for (i = 0; i < width * height; i = i + 1) {")
    emit("        img[i] = (img[i] - min_value) * (levels - 1) / span;")
    emit("    }")
    emit("}")
    emit("")
    emit("void apply_threshold() {")
    emit("    int i;")
    emit("    for (i = 0; i < width * height; i = i + 1) {")
    emit("        if (img[i] < threshold_level) {")
    emit("            out[i] = 0;")
    emit("        } else {")
    emit("            out[i] = levels - 1;")
    emit("        }")
    emit("    }")
    emit("}")
    emit("")
    emit("void measure_luma() {")
    emit("    int i;")
    emit("    total_luma = 0;")
    emit("    for (i = 0; i < width * height; i = i + 1) {")
    emit("        total_luma = total_luma + img[i];")
    emit("    }")
    emit("}")
    emit("")
    emit("void load_test_image() {")
    emit("    int x;")
    emit("    int y;")
    emit("    for (y = 0; y < height; y = y + 1) {")
    emit("        for (x = 0; x < width; x = x + 1) {")
    emit("            img[at(x, y)] = (x * 31 + y * 17) % levels;")
    emit("        }")
    emit("    }")
    emit("}")
    emit("")
    emit("void main() {")
    emit("    load_test_image();")
    for k in range(kernels):
        emit(f"    init_kernel{k}();")
    for k in range(kernels):
        emit(f"    convolve{k}();")
    emit("    compute_histogram();")
    emit("    normalize_image();")
    emit("    measure_luma();")
    emit("    apply_threshold();")
    emit("}")
    emit("")
    return "\n".join(lines)


def paper_scale_source() -> str:
    """The configuration whose size matches the paper's 750-line program."""
    return image_pipeline_source(kernels=11, unrolled_inits=15)
