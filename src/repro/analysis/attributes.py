"""Checkpointable analysis results (paper Figures 2 and 4).

Each AST node of the analyzed program carries one :class:`Attributes`
structure with a field for the results of each analysis phase:

- :class:`SEEntry` records the side-effect analysis result — the two
  lists of variable identifiers read and written ("records both lists");
- :class:`BTEntry` holds a :class:`BT` annotation (static/dynamic);
- :class:`ETEntry` holds an :class:`ET` annotation
  (specialization-time-evaluable/residual).

All of them extend the abstract :class:`Entry`, which — exactly like the
paper's Figure 2 — contributes no local state of its own, only the
checkpointing plumbing (here inherited from
:class:`~repro.core.checkpointable.Checkpointable`).
"""

from __future__ import annotations

from repro.core.checkpointable import Checkpointable
from repro.core.fields import child, child_list, scalar, scalar_list

#: binding-time / evaluation-time annotation codes
UNSET = -1
STATIC = 0
DYNAMIC = 1
EVAL = 0
RESIDUAL = 1


class Entry(Checkpointable):
    """Abstract base of every per-phase entry (no local state)."""


class SEEntry(Entry):
    """Side-effect result: variable ids read and written by the node."""

    reads = scalar_list("int")
    writes = scalar_list("int")


class BT(Checkpointable):
    """A binding-time annotation (``STATIC``/``DYNAMIC``, ``UNSET`` initially)."""

    value = scalar("int")

    def __init__(self, **fields) -> None:
        fields.setdefault("value", UNSET)
        super().__init__(**fields)


class BTEntry(Entry):
    """Binding-time result for one node."""

    bt = child(BT)


class ET(Checkpointable):
    """An evaluation-time annotation (``EVAL``/``RESIDUAL``, ``UNSET`` initially)."""

    value = scalar("int")

    def __init__(self, **fields) -> None:
        fields.setdefault("value", UNSET)
        super().__init__(**fields)


class ETEntry(Entry):
    """Evaluation-time result for one node."""

    et = child(ET)


class Attributes(Entry):
    """Per-AST-node bundle of analysis results (paper Figure 4)."""

    node_id = scalar("int")
    se_entry = child(SEEntry)
    bt_entry = child(BTEntry)
    et_entry = child(ETEntry)

    @classmethod
    def fresh(cls, node_id: int) -> "Attributes":
        """A fully wired Attributes tree for one AST node."""
        return cls(
            node_id=node_id,
            se_entry=SEEntry(),
            bt_entry=BTEntry(bt=BT()),
            et_entry=ETEntry(et=ET()),
        )

    # -- update helpers used by the analyses -------------------------------
    # Analyses only write when the value actually changes, so modification
    # flags faithfully reflect fixpoint progress — this is what makes
    # incremental checkpointing shrink as the analysis converges.

    def set_side_effects(self, reads, writes) -> bool:
        """Install side-effect sets; returns True when something changed."""
        entry = self.se_entry
        changed = False
        reads = sorted(reads)
        writes = sorted(writes)
        if entry.reads.as_list() != reads:
            entry.reads = reads
            changed = True
        if entry.writes.as_list() != writes:
            entry.writes = writes
            changed = True
        return changed

    def set_bt(self, value: int) -> bool:
        """Install a binding-time annotation; returns True when it changed."""
        bt = self.bt_entry.bt
        if bt.value != value:
            bt.value = value
            return True
        return False

    def set_et(self, value: int) -> bool:
        """Install an evaluation-time annotation; returns True when it changed."""
        et = self.et_entry.et
        if et.value != value:
            et.value = value
            return True
        return False


class AttributesTable(Checkpointable):
    """Root object owning the Attributes of every node of one program.

    A single checkpointable root makes crash recovery of the whole engine
    state a one-root restore.
    """

    program_nodes = scalar("int")
    entries = child_list(Attributes)

    @classmethod
    def for_program(cls, node_count: int) -> "AttributesTable":
        table = cls(program_nodes=node_count)
        table.entries.extend(Attributes.fresh(i) for i in range(node_count))
        return table

    def of(self, node) -> Attributes:
        """The Attributes of an AST node (by its ``node_id``)."""
        return self.entries[node.node_id]
