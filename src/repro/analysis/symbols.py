"""Symbol resolution for the simplified C.

Assigns a program-wide numeric identifier to every distinct variable
(globals, and each function's parameters and locals) and links variable
references, declarations and calls to their symbols. The numeric ids are
what the side-effect analysis records in the checkpointable ``SEEntry``
lists (the paper's "Id" boxes in Figure 4).

Scoping is C-like: one global scope, one flat scope per function (block
shadowing is rejected rather than silently supported — the analyses are
simpler, and the generated benchmark programs never shadow).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.lang import astnodes as ast


class SemanticError(Exception):
    """Raised when a program fails symbol resolution or simple type checks."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class Symbol:
    """One named variable (scalar or array) of the analyzed program."""

    __slots__ = ("symbol_id", "name", "type", "kind", "is_array", "function")

    GLOBAL = "global"
    PARAM = "param"
    LOCAL = "local"

    def __init__(
        self,
        symbol_id: int,
        name: str,
        type_name: str,
        kind: str,
        is_array: bool,
        function: Optional[str],
    ) -> None:
        self.symbol_id = symbol_id
        self.name = name
        self.type = type_name
        self.kind = kind
        self.is_array = is_array
        self.function = function  # owning function name, None for globals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = self.function or "<global>"
        return f"Symbol({self.symbol_id}, {scope}.{self.name}, {self.kind})"


class SymbolTable:
    """All symbols of one program, plus the function index."""

    def __init__(self) -> None:
        self.symbols: List[Symbol] = []
        self.globals: Dict[str, Symbol] = {}
        self.functions: Dict[str, ast.FuncDef] = {}
        self._per_function: Dict[str, Dict[str, Symbol]] = {}

    def _new_symbol(
        self,
        name: str,
        type_name: str,
        kind: str,
        is_array: bool,
        function: Optional[str],
    ) -> Symbol:
        symbol = Symbol(len(self.symbols), name, type_name, kind, is_array, function)
        self.symbols.append(symbol)
        return symbol

    def symbol(self, symbol_id: int) -> Symbol:
        return self.symbols[symbol_id]

    def function_scope(self, name: str) -> Dict[str, Symbol]:
        return self._per_function[name]

    def global_ids(self) -> List[int]:
        return [s.symbol_id for s in self.globals.values()]

    def __len__(self) -> int:
        return len(self.symbols)


def resolve(program: ast.Program) -> SymbolTable:
    """Resolve every name of ``program``; returns the populated table.

    Raises :class:`SemanticError` on duplicate declarations, unknown
    names, calls to undefined functions, arity mismatches, indexing of
    non-arrays, or assignment to whole arrays.
    """
    table = SymbolTable()

    for decl in program.globals:
        if decl.name in table.globals:
            raise SemanticError(f"duplicate global {decl.name!r}", decl.line)
        symbol = table._new_symbol(
            decl.name, decl.type, Symbol.GLOBAL, decl.size is not None, None
        )
        table.globals[decl.name] = symbol
        decl.symbol = symbol

    for func in program.functions:
        if func.name in table.functions:
            raise SemanticError(f"duplicate function {func.name!r}", func.line)
        if func.name in table.globals:
            raise SemanticError(
                f"{func.name!r} is both a global and a function", func.line
            )
        table.functions[func.name] = func

    for func in program.functions:
        scope: Dict[str, Symbol] = {}
        table._per_function[func.name] = scope
        for param in func.params:
            if param.name in scope:
                raise SemanticError(f"duplicate parameter {param.name!r}", param.line)
            symbol = table._new_symbol(
                param.name, param.type, Symbol.PARAM, False, func.name
            )
            scope[param.name] = symbol
            param.symbol = symbol
        _resolve_stmt(func.body, func, scope, table)

    # Resolve initializers of globals (they may only use literals and
    # previously declared globals).
    for decl in program.globals:
        if decl.init is not None:
            _resolve_expr(decl.init, None, {}, table)

    return table


def _resolve_stmt(
    stmt: ast.Stmt,
    func: ast.FuncDef,
    scope: Dict[str, Symbol],
    table: SymbolTable,
) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.body:
            _resolve_stmt(inner, func, scope, table)
    elif isinstance(stmt, ast.Decl):
        if stmt.name in scope:
            raise SemanticError(
                f"duplicate local {stmt.name!r} in {func.name}", stmt.line
            )
        symbol = table._new_symbol(
            stmt.name, stmt.type, Symbol.LOCAL, stmt.size is not None, func.name
        )
        scope[stmt.name] = symbol
        stmt.symbol = symbol
        if stmt.init is not None:
            _resolve_expr(stmt.init, func, scope, table)
    elif isinstance(stmt, ast.Assign):
        _resolve_expr(stmt.target, func, scope, table)
        _resolve_expr(stmt.expr, func, scope, table)
        if isinstance(stmt.target, ast.VarRef) and stmt.target.symbol.is_array:
            raise SemanticError(
                f"cannot assign to whole array {stmt.target.name!r}", stmt.line
            )
    elif isinstance(stmt, ast.If):
        _resolve_expr(stmt.cond, func, scope, table)
        _resolve_stmt(stmt.then, func, scope, table)
        if stmt.orelse is not None:
            _resolve_stmt(stmt.orelse, func, scope, table)
    elif isinstance(stmt, ast.While):
        _resolve_expr(stmt.cond, func, scope, table)
        _resolve_stmt(stmt.body, func, scope, table)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            _resolve_stmt(stmt.init, func, scope, table)
        if stmt.cond is not None:
            _resolve_expr(stmt.cond, func, scope, table)
        if stmt.step is not None:
            _resolve_stmt(stmt.step, func, scope, table)
        _resolve_stmt(stmt.body, func, scope, table)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            _resolve_expr(stmt.value, func, scope, table)
        if func.ret_type == ast.VOID and stmt.value is not None:
            raise SemanticError(f"{func.name} returns void", stmt.line)
    elif isinstance(stmt, ast.ExprStmt):
        _resolve_expr(stmt.expr, func, scope, table)
    else:  # pragma: no cover - parser produces no other statements
        raise SemanticError(f"unknown statement {stmt!r}", stmt.line)


def _resolve_expr(
    expr: ast.Expr,
    func: Optional[ast.FuncDef],
    scope: Dict[str, Symbol],
    table: SymbolTable,
) -> None:
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return
    if isinstance(expr, ast.VarRef):
        symbol = scope.get(expr.name) or table.globals.get(expr.name)
        if symbol is None:
            where = func.name if func is not None else "<global initializer>"
            raise SemanticError(f"unknown variable {expr.name!r} in {where}", expr.line)
        expr.symbol = symbol
        return
    if isinstance(expr, ast.IndexRef):
        _resolve_expr(expr.array, func, scope, table)
        if not expr.array.symbol.is_array:
            raise SemanticError(
                f"{expr.array.name!r} is not an array", expr.line
            )
        _resolve_expr(expr.index, func, scope, table)
        return
    if isinstance(expr, ast.Unary):
        _resolve_expr(expr.operand, func, scope, table)
        return
    if isinstance(expr, ast.Binary):
        _resolve_expr(expr.left, func, scope, table)
        _resolve_expr(expr.right, func, scope, table)
        return
    if isinstance(expr, ast.Call):
        callee = table.functions.get(expr.name)
        if callee is None:
            raise SemanticError(f"call to undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(callee.params):
            raise SemanticError(
                f"{expr.name} expects {len(callee.params)} arguments, "
                f"got {len(expr.args)}",
                expr.line,
            )
        expr.func = callee
        for arg in expr.args:
            _resolve_expr(arg, func, scope, table)
        return
    raise SemanticError(f"unknown expression {expr!r}", expr.line)
