"""Binding-time analysis (paper section 4.1).

Classifies every expression of the analyzed program as *static*
(computable at specialization time from the inputs declared static) or
*dynamic*, given a :class:`Division` of the program's global variables.
The analysis is monovariant and flow-iterated: binding times only move
from static to dynamic, and passes repeat until no annotation changes —
loops and (mutually) recursive functions therefore converge. Each full
pass is one *iteration*, after which the engine takes a checkpoint (the
paper's binding-time analysis required nine iterations on its example).

Dynamic control is handled classically: an assignment under a
dynamic-condition branch or loop makes its target dynamic, since the
specializer cannot decide at specialization time whether it executes.

Results go to ``Attributes.bt_entry.bt`` per node; the side-effect phase's
results are read (call-induced global effects) but never written —
exactly the phase discipline the specialized checkpointing exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.analysis.attributes import DYNAMIC, STATIC, AttributesTable
from repro.analysis.lang import astnodes as ast
from repro.analysis.sideeffect import SideEffectAnalysis
from repro.analysis.symbols import SymbolTable


@dataclass
class Division:
    """Which inputs are static: the programmer-supplied division.

    Globals with a literal initializer default to static; everything else
    (notably uninitialized arrays — the program's real inputs) defaults to
    dynamic. Explicit sets override the defaults.
    """

    static_globals: Set[str] = field(default_factory=set)
    dynamic_globals: Set[str] = field(default_factory=set)

    def initial_bt(self, decl: ast.GlobalDecl) -> int:
        if decl.name in self.dynamic_globals:
            return DYNAMIC
        if decl.name in self.static_globals:
            return STATIC
        return STATIC if decl.init is not None else DYNAMIC


class BindingTimeAnalysis:
    """Monovariant, flow-iterated binding-time analysis."""

    def __init__(
        self,
        program: ast.Program,
        symbols: SymbolTable,
        attributes: AttributesTable,
        side_effects: SideEffectAnalysis,
        division: Optional[Division] = None,
    ) -> None:
        self.program = program
        self.symbols = symbols
        self.attributes = attributes
        self.side_effects = side_effects
        self.division = division or Division()
        #: symbol id -> binding time (monotone: STATIC may become DYNAMIC)
        self.bt: Dict[int, int] = {}
        #: function name -> binding time of its return value
        self.returns: Dict[str, int] = {
            func.name: STATIC for func in program.functions
        }
        #: functions that may be invoked under dynamic control; their
        #: bodies are analyzed in a dynamic context, so their writes to
        #: static state are correctly dynamized (the specializer cannot
        #: know how many times such a call runs)
        self.dynamic_callers = set()
        self.iterations = 0
        # Entry context of the function currently being analyzed: DYNAMIC
        # when the function may be invoked under dynamic control. Kept
        # separate from the *internal* context threaded through _stmt so
        # that return-value binding times reflect only internal control
        # (the caller applies its own context at the call site).
        self._entry_context = STATIC
        self._seed()

    def _seed(self) -> None:
        for decl in self.program.globals:
            self.bt[decl.symbol.symbol_id] = self.division.initial_bt(decl)
        for func in self.program.functions:
            for param in func.params:
                self.bt[param.symbol.symbol_id] = STATIC
            for name, symbol in self.symbols.function_scope(func.name).items():
                self.bt.setdefault(symbol.symbol_id, STATIC)

    # -- driver ----------------------------------------------------------------

    def run(self, on_iteration: Optional[Callable[[int], None]] = None) -> int:
        """Iterate to fixpoint; returns the number of iterations."""
        while True:
            changed = self._pass()
            self.iterations += 1
            if on_iteration is not None:
                on_iteration(self.iterations)
            if not changed:
                return self.iterations

    def _pass(self) -> bool:
        changed = False
        for decl in self.program.globals:
            if decl.init is not None:
                changed |= self._annotate_expr(decl.init)
                if self._expr(decl.init) == DYNAMIC:
                    changed |= self._raise_symbol(decl.symbol.symbol_id, DYNAMIC)
            if self.attributes.of(decl).set_bt(self.bt[decl.symbol.symbol_id]):
                changed = True
        for func in self.program.functions:
            self._entry_context = (
                DYNAMIC if func.name in self.dynamic_callers else STATIC
            )
            if self._stmt(func.body, STATIC):
                changed = True
            self._entry_context = STATIC
            body_bt = self._node_bt(func.body)
            if self.attributes.of(func).set_bt(body_bt):
                changed = True
        return changed

    def _mark_dynamic_calls(self, expr: ast.Expr, context: int) -> bool:
        """Record callees reached from a dynamic context (transitive via
        re-iteration: a marked function marks its own callees next pass)."""
        if context != DYNAMIC:
            return False
        changed = False
        for node in expr.walk():
            if isinstance(node, ast.Call) and node.name not in self.dynamic_callers:
                self.dynamic_callers.add(node.name)
                changed = True
        return changed

    def _raise_symbol(self, symbol_id: int, bt: int) -> bool:
        if bt == DYNAMIC and self.bt.get(symbol_id, STATIC) != DYNAMIC:
            self.bt[symbol_id] = DYNAMIC
            return True
        return False

    def _node_bt(self, node: ast.Node) -> int:
        value = self.attributes.of(node).bt_entry.bt.value
        return DYNAMIC if value == DYNAMIC else STATIC

    # -- statements: return True when any annotation or symbol changed ----------

    def _stmt(self, stmt: ast.Stmt, context: int) -> bool:
        changed = False
        if isinstance(stmt, ast.Block):
            joined = context
            for inner in stmt.body:
                changed |= self._stmt(inner, context)
                joined = max(joined, self._node_bt(inner))
            changed |= self.attributes.of(stmt).set_bt(joined)
        elif isinstance(stmt, ast.Decl):
            # A declaration without an initializer assigns nothing: it
            # contributes no binding time of its own (its default value is
            # a constant), even under dynamic control.
            bt = STATIC
            if stmt.init is not None:
                effective = max(context, self._entry_context)
                changed |= self._annotate_expr(stmt.init)
                changed |= self._mark_dynamic_calls(stmt.init, effective)
                bt = max(effective, self._expr(stmt.init))
            changed |= self._raise_symbol(stmt.symbol.symbol_id, bt)
            changed |= self.attributes.of(stmt).set_bt(
                self.bt[stmt.symbol.symbol_id]
            )
        elif isinstance(stmt, ast.Assign):
            effective = max(context, self._entry_context)
            changed |= self._annotate_expr(stmt.expr)
            changed |= self._mark_dynamic_calls(stmt.expr, effective)
            rhs = max(self._expr(stmt.expr), effective)
            if isinstance(stmt.target, ast.VarRef):
                target_id = stmt.target.symbol.symbol_id
            else:
                changed |= self._annotate_expr(stmt.target.index)
                changed |= self._mark_dynamic_calls(stmt.target.index, effective)
                rhs = max(rhs, self._expr(stmt.target.index))
                target_id = stmt.target.array.symbol.symbol_id
            changed |= self._raise_symbol(target_id, rhs)
            changed |= self._annotate_expr(stmt.target)
            changed |= self.attributes.of(stmt).set_bt(self.bt[target_id])
        elif isinstance(stmt, ast.If):
            changed |= self._annotate_expr(stmt.cond)
            changed |= self._mark_dynamic_calls(
                stmt.cond, max(context, self._entry_context)
            )
            cond = self._expr(stmt.cond)
            inner_context = max(context, cond)
            changed |= self._stmt(stmt.then, inner_context)
            joined = max(cond, self._node_bt(stmt.then))
            if stmt.orelse is not None:
                changed |= self._stmt(stmt.orelse, inner_context)
                joined = max(joined, self._node_bt(stmt.orelse))
            changed |= self.attributes.of(stmt).set_bt(joined)
        elif isinstance(stmt, ast.While):
            changed |= self._annotate_expr(stmt.cond)
            changed |= self._mark_dynamic_calls(
                stmt.cond, max(context, self._entry_context)
            )
            cond = self._expr(stmt.cond)
            inner_context = max(context, cond)
            changed |= self._stmt(stmt.body, inner_context)
            changed |= self.attributes.of(stmt).set_bt(
                max(cond, self._node_bt(stmt.body))
            )
        elif isinstance(stmt, ast.For):
            # A self-contained static for (static init/cond/step over one
            # induction variable) keeps static control even under dynamic
            # context: the specializer unrolls it once per residualization
            # of the enclosing region, identically on every dynamic
            # iteration, so its control never depends on dynamic state.
            exempt = self.self_static_for(stmt)
            joined = context
            if stmt.init is not None:
                changed |= self._induction_stmt(stmt.init, context, exempt)
                joined = max(joined, self._node_bt(stmt.init))
            cond = STATIC
            if stmt.cond is not None:
                changed |= self._annotate_expr(stmt.cond)
                changed |= self._mark_dynamic_calls(
                    stmt.cond, max(context, self._entry_context)
                )
                cond = self._expr(stmt.cond)
            inner_context = max(context, cond)
            if stmt.step is not None:
                changed |= self._induction_stmt(stmt.step, inner_context, exempt)
                joined = max(joined, self._node_bt(stmt.step))
            changed |= self._stmt(stmt.body, inner_context)
            joined = max(joined, cond, self._node_bt(stmt.body))
            changed |= self.attributes.of(stmt).set_bt(joined)
        elif isinstance(stmt, ast.Return):
            bt = context
            if stmt.value is not None:
                changed |= self._annotate_expr(stmt.value)
                changed |= self._mark_dynamic_calls(
                    stmt.value, max(context, self._entry_context)
                )
                bt = max(bt, self._expr(stmt.value))
            function = self._enclosing_function(stmt)
            if function is not None and bt == DYNAMIC:
                if self.returns[function] != DYNAMIC:
                    self.returns[function] = DYNAMIC
                    changed = True
            changed |= self.attributes.of(stmt).set_bt(bt)
        elif isinstance(stmt, ast.ExprStmt):
            changed |= self._annotate_expr(stmt.expr)
            changed |= self._mark_dynamic_calls(
                stmt.expr, max(context, self._entry_context)
            )
            changed |= self.attributes.of(stmt).set_bt(self._expr(stmt.expr))
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {stmt!r}")
        return changed

    def _induction_stmt(self, stmt: ast.Stmt, context: int, exempt: bool) -> bool:
        """Analyze a for-loop's init/step assignment.

        For a self-static loop, the unrolling argument holds regardless of
        how the enclosing function is reached, so both the local and the
        entry context are neutralized for the induction code.
        """
        if not exempt:
            return self._stmt(stmt, context)
        saved_entry = self._entry_context
        self._entry_context = STATIC
        try:
            return self._stmt(stmt, STATIC)
        finally:
            self._entry_context = saved_entry

    def self_static_for(self, stmt: ast.For) -> bool:
        """Is this a self-contained static for-loop?

        Requires one induction variable assigned by both init and step,
        currently classified static, with static init/cond/step
        expressions. Any other (dynamic-context) assignment to the
        variable elsewhere dynamizes it through the normal rules and
        switches the exemption off — monotonically.
        """
        if stmt.init is None or stmt.cond is None or stmt.step is None:
            return False
        if not isinstance(stmt.init.target, ast.VarRef):
            return False
        if not isinstance(stmt.step.target, ast.VarRef):
            return False
        induction = stmt.init.target.symbol.symbol_id
        if stmt.step.target.symbol.symbol_id != induction:
            return False
        if self.bt.get(induction, STATIC) == DYNAMIC:
            return False
        return (
            self._expr(stmt.init.expr) == STATIC
            and self._expr(stmt.cond) == STATIC
            and self._expr(stmt.step.expr) == STATIC
        )

    def _enclosing_function(self, stmt: ast.Return) -> Optional[str]:
        # Return statements record into the return summary of the function
        # whose body contains them; node ids are assigned in parse order,
        # so the owning function is the last one starting before the node.
        owner = None
        for func in self.program.functions:
            if func.node_id < stmt.node_id:
                owner = func.name
        return owner

    # -- expressions --------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> int:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return STATIC
        if isinstance(expr, ast.VarRef):
            return self.bt.get(expr.symbol.symbol_id, STATIC)
        if isinstance(expr, ast.IndexRef):
            return max(
                self.bt.get(expr.array.symbol.symbol_id, STATIC),
                self._expr(expr.index),
            )
        if isinstance(expr, ast.Unary):
            return self._expr(expr.operand)
        if isinstance(expr, ast.Binary):
            return max(self._expr(expr.left), self._expr(expr.right))
        if isinstance(expr, ast.Call):
            bt = self.returns[expr.name]
            for arg, param in zip(expr.args, expr.func.params):
                arg_bt = self._expr(arg)
                bt = max(bt, arg_bt)
                self._raise_symbol(param.symbol.symbol_id, arg_bt)
            # A call whose callee reads a dynamic global is dynamic.
            for read in self.side_effects.summaries[expr.name].reads:
                bt = max(bt, self.bt.get(read, STATIC))
            return bt
        raise TypeError(f"unknown expression {expr!r}")

    def _annotate_expr(self, expr: ast.Expr) -> bool:
        """Record annotations for an expression tree; True when changed."""
        changed = self.attributes.of(expr).set_bt(self._expr(expr))
        for inner in expr.children():
            changed |= self._annotate_expr(inner)
        return changed
