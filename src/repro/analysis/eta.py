"""Evaluation-time analysis (paper section 4.1).

"Evaluation-time analysis ensures that variables referenced by the
specialized program are properly initialized": a *static* expression may
only be evaluated at specialization time if every variable it reads is
*definitely* assigned a specialization-time value on every path reaching
it. This module implements that as a forward must-analysis over each
function body — the set of symbols definitely initialized with static
values — with branch intersection and loop iteration to fixpoint.

Each expression is annotated ``EVAL`` (safe to evaluate at specialization
time) or ``RESIDUAL``. Dynamic expressions are always residual; a static
expression under dynamic control is residual too (the specializer cannot
know it executes).

The analysis reads the binding-time phase's annotations and writes only
``Attributes.et_entry.et`` — the third and last phase of the engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.analysis.attributes import DYNAMIC, EVAL, RESIDUAL, STATIC, AttributesTable
from repro.analysis.bta import BindingTimeAnalysis
from repro.analysis.lang import astnodes as ast
from repro.analysis.symbols import SymbolTable

_MAX_LOOP_PASSES = 64


class EvaluationTimeAnalysis:
    """Definite-static-initialization analysis over static expressions."""

    def __init__(
        self,
        program: ast.Program,
        symbols: SymbolTable,
        attributes: AttributesTable,
        bta: BindingTimeAnalysis,
    ) -> None:
        self.program = program
        self.symbols = symbols
        self.attributes = attributes
        self.bta = bta
        #: function name -> is a static call to it evaluable at spec time
        self.callable_summaries: Dict[str, bool] = {
            func.name: True for func in program.functions
        }
        self.iterations = 0

    def run(self, on_iteration: Optional[Callable[[int], None]] = None) -> int:
        """Iterate passes until no annotation changes; returns the count."""
        while True:
            changed = self._pass()
            self.iterations += 1
            if on_iteration is not None:
                on_iteration(self.iterations)
            if not changed:
                return self.iterations

    # -- one pass ------------------------------------------------------------

    def _initial_defined(self) -> Set[int]:
        # Every static global is definitely initialized at specialization
        # time: explicit initializers are static expressions, and globals
        # without one (including arrays) hold the language's well-defined
        # zero default.
        return {
            decl.symbol.symbol_id
            for decl in self.program.globals
            if self.bta.bt.get(decl.symbol.symbol_id, STATIC) == STATIC
        }

    def _pass(self) -> bool:
        changed = False
        base = self._initial_defined()
        for decl in self.program.globals:
            et = EVAL if decl.symbol.symbol_id in base else RESIDUAL
            changed |= self.attributes.of(decl).set_et(et)
            if decl.init is not None:
                changed |= self._annotate_expr(decl.init, base, STATIC)
        for func in self.program.functions:
            defined = set(base)
            # Static parameters are supplied by the specializer itself.
            evaluable_params = True
            for param in func.params:
                if self.bta.bt.get(param.symbol.symbol_id, STATIC) == STATIC:
                    defined.add(param.symbol.symbol_id)
                else:
                    evaluable_params = False
            # A function reachable from dynamic control must not execute
            # anything at specialization time (mirrors the binding-time
            # analysis' dynamic_callers seeding).
            base_context = (
                DYNAMIC if func.name in self.bta.dynamic_callers else STATIC
            )
            out = self._stmt(func.body, defined, base_context)
            changed |= self.attributes.of(func).set_et(
                EVAL if self.callable_summaries[func.name] else RESIDUAL
            )
            summary = (
                evaluable_params
                and self.bta.returns[func.name] == STATIC
                and self._body_evaluable(func.body)
            )
            if summary != self.callable_summaries[func.name]:
                self.callable_summaries[func.name] = summary
                changed = True
            del out
        return changed

    def _body_evaluable(self, body: ast.Block) -> bool:
        """A function is spec-time callable only if its body is fully EVAL."""
        for node in body.walk():
            attrs = self.attributes.of(node)
            if attrs.et_entry.et.value == RESIDUAL:
                return False
        return True

    # -- statements: thread the defined-set, annotate, return the out-set -----

    def _stmt(self, stmt: ast.Stmt, defined: Set[int], context: int) -> Set[int]:
        if isinstance(stmt, ast.Block):
            out = set(defined)
            all_eval = True
            for inner in stmt.body:
                out = self._stmt(inner, out, context)
                if self.attributes.of(inner).et_entry.et.value == RESIDUAL:
                    all_eval = False
            self._set(stmt, EVAL if all_eval and context == STATIC else RESIDUAL)
            return out
        if isinstance(stmt, ast.Decl):
            out = set(defined)
            et = RESIDUAL
            if stmt.init is not None:
                self._annotate_expr(stmt.init, defined, context)
                init_et = self.attributes.of(stmt.init).et_entry.et.value
                if (
                    init_et == EVAL
                    and context == STATIC
                    and self.bta.bt.get(stmt.symbol.symbol_id, STATIC) == STATIC
                ):
                    out.add(stmt.symbol.symbol_id)
                    et = EVAL
                else:
                    out.discard(stmt.symbol.symbol_id)
            self._set(stmt, et)
            return out
        if isinstance(stmt, ast.Assign):
            out = set(defined)
            self._annotate_expr(stmt.expr, defined, context)
            rhs_et = self.attributes.of(stmt.expr).et_entry.et.value
            if isinstance(stmt.target, ast.VarRef):
                target_id = stmt.target.symbol.symbol_id
                self._annotate_expr(stmt.target, defined | {target_id}, context)
            else:
                self._annotate_expr(stmt.target.index, defined, context)
                self._annotate_expr(stmt.target, defined, context)
                target_id = stmt.target.array.symbol.symbol_id
            static_target = self.bta.bt.get(target_id, STATIC) == STATIC
            if rhs_et == EVAL and static_target and context == STATIC:
                out.add(target_id)
                self._set(stmt, EVAL)
            else:
                out.discard(target_id)
                self._set(stmt, RESIDUAL)
            return out
        if isinstance(stmt, ast.If):
            self._annotate_expr(stmt.cond, defined, context)
            cond_et = self.attributes.of(stmt.cond).et_entry.et.value
            cond_bt = self._bt_of(stmt.cond)
            inner_context = max(context, cond_bt)
            then_out = self._stmt(stmt.then, defined, inner_context)
            if stmt.orelse is not None:
                else_out = self._stmt(stmt.orelse, defined, inner_context)
            else:
                else_out = set(defined)
            self._set(stmt, EVAL if cond_et == EVAL and inner_context == STATIC else RESIDUAL)
            return then_out & else_out
        if isinstance(stmt, ast.While):
            return self._loop(stmt, defined, context, stmt.cond, stmt.body)
        if isinstance(stmt, ast.For):
            # Mirror the binding-time analysis' self-static-for exemption:
            # the control of a self-contained static loop is evaluable at
            # specialization time even under dynamic context (the
            # specializer unrolls it), so init/cond/step are certified in
            # a static control context.
            exempt = self.bta.self_static_for(stmt)
            out = set(defined)
            if stmt.init is not None:
                out = self._stmt(stmt.init, out, STATIC if exempt else context)
            return self._loop(
                stmt,
                out,
                context,
                stmt.cond,
                stmt.body,
                step=stmt.step,
                exempt=exempt,
            )
        if isinstance(stmt, ast.Return):
            et = EVAL if context == STATIC else RESIDUAL
            if stmt.value is not None:
                self._annotate_expr(stmt.value, defined, context)
                if self.attributes.of(stmt.value).et_entry.et.value == RESIDUAL:
                    et = RESIDUAL
            self._set(stmt, et)
            return set(defined)
        if isinstance(stmt, ast.ExprStmt):
            self._annotate_expr(stmt.expr, defined, context)
            self._set(stmt, self.attributes.of(stmt.expr).et_entry.et.value)
            return set(defined)
        raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover

    def _loop(
        self,
        stmt: ast.Stmt,
        defined: Set[int],
        context: int,
        cond: Optional[ast.Expr],
        body: ast.Stmt,
        step: Optional[ast.Stmt] = None,
        exempt: bool = False,
    ) -> Set[int]:
        ctrl_context = STATIC if exempt else context
        cond_bt = self._bt_of(cond) if cond is not None else STATIC
        inner_context = max(context, cond_bt)
        step_context = STATIC if exempt else inner_context
        # Iterate the loop body until the defined-set stabilizes; it only
        # shrinks (intersection with the entry state), so this terminates.
        current = set(defined)
        for _ in range(_MAX_LOOP_PASSES):
            if cond is not None:
                self._annotate_expr(cond, current, ctrl_context)
            after = set(current)
            after = self._stmt(body, after, inner_context)
            if step is not None:
                after = self._stmt(step, after, step_context)
            merged = current & after
            if merged == current:
                break
            current = merged
        cond_et = (
            self.attributes.of(cond).et_entry.et.value if cond is not None else EVAL
        )
        parts = (body,) if step is None else (body, step)
        body_eval = all(
            self.attributes.of(part).et_entry.et.value == EVAL for part in parts
        )
        self._set(
            stmt,
            EVAL
            if cond_et == EVAL and body_eval and inner_context == STATIC
            else RESIDUAL,
        )
        return current

    # -- expressions --------------------------------------------------------------

    def _bt_of(self, node: ast.Node) -> int:
        value = self.attributes.of(node).bt_entry.bt.value
        return DYNAMIC if value == DYNAMIC else STATIC

    def _annotate_expr(self, expr: ast.Expr, defined: Set[int], context: int) -> bool:
        changed = False
        for inner in expr.children():
            changed |= self._annotate_expr(inner, defined, context)
        changed |= self._set(expr, self._expr_et(expr, defined, context))
        return changed

    def _expr_et(self, expr: ast.Expr, defined: Set[int], context: int) -> int:
        if self._bt_of(expr) == DYNAMIC or context == DYNAMIC:
            return RESIDUAL
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return EVAL
        if isinstance(expr, ast.VarRef):
            return EVAL if expr.symbol.symbol_id in defined else RESIDUAL
        if isinstance(expr, ast.IndexRef):
            array_ok = expr.array.symbol.symbol_id in defined
            index_et = self._expr_et(expr.index, defined, context)
            return EVAL if array_ok and index_et == EVAL else RESIDUAL
        if isinstance(expr, ast.Unary):
            return self._expr_et(expr.operand, defined, context)
        if isinstance(expr, ast.Binary):
            left = self._expr_et(expr.left, defined, context)
            right = self._expr_et(expr.right, defined, context)
            return EVAL if left == EVAL and right == EVAL else RESIDUAL
        if isinstance(expr, ast.Call):
            if not self.callable_summaries[expr.name]:
                return RESIDUAL
            for arg in expr.args:
                if self._expr_et(arg, defined, context) == RESIDUAL:
                    return RESIDUAL
            return EVAL
        raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _set(self, node: ast.Node, value: int) -> bool:
        return self.attributes.of(node).set_et(value)
