"""The paper's realistic application: a program analysis engine (section 4).

A Python implementation of the analyses a partial evaluator such as Tempo
performs over a simplified C:

- **side-effect analysis** — the sets of variables read and written by
  every statement (interprocedural, to fixpoint);
- **binding-time analysis** — which expressions are static (computable
  from the inputs declared static) and which are dynamic;
- **evaluation-time analysis** — which static expressions reference
  variables that are definitely initialized at specialization time.

The analyses run in phases, each phase iterating over the abstract syntax
tree to a fixpoint; every AST node carries a checkpointable
:class:`~repro.analysis.attributes.Attributes` structure (paper Figure 4)
holding one entry per phase, and the engine takes a checkpoint at the end
of every iteration. Because each phase writes only its own entry and
merely reads the earlier phases' results, phase-specific specialized
checkpointing removes the traversal of everything except the live entry —
the paper's headline application.
"""

from repro.analysis.bta import Division
from repro.analysis.engine import AnalysisEngine, EngineReport
from repro.analysis.interp import Interpreter, run_program
from repro.analysis.specializer import MiniCSpecializer, specialize_program

__all__ = [
    "AnalysisEngine",
    "EngineReport",
    "Division",
    "Interpreter",
    "run_program",
    "MiniCSpecializer",
    "specialize_program",
]
