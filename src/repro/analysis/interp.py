"""A reference interpreter for the simplified C.

Executes analyzed programs directly, for two purposes:

1. it defines the language's semantics precisely (C-like: truncating
   integer division, short-circuit logical operators producing 0/1,
   zero-initialized globals and arrays), and
2. it is the oracle for the mini-C specializer: the residual program must
   compute exactly the same observable state as the original on every
   dynamic input (tested, including property-based).

Execution is bounded by a fuel counter so runaway loops fail fast with
:class:`InterpreterError` instead of hanging the test suite.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis.lang import astnodes as ast
from repro.analysis.symbols import SymbolTable, resolve


class InterpreterError(Exception):
    """Raised on semantic errors at run time (or fuel exhaustion)."""


class _Return(Exception):
    """Internal control flow for ``return``."""

    def __init__(self, value: Any) -> None:
        self.value = value


def _zero(type_name: str) -> Any:
    return 0.0 if type_name == ast.FLOAT else 0


class Interpreter:
    """Evaluate a program from its ``main`` function."""

    def __init__(
        self,
        program: ast.Program,
        symbols: Optional[SymbolTable] = None,
        fuel: int = 5_000_000,
    ) -> None:
        self.program = program
        self.symbols = symbols or resolve(program)
        self.fuel = fuel
        #: symbol id -> value (arrays are Python lists)
        self.globals: Dict[int, Any] = {}

    # -- public API ----------------------------------------------------------

    def run(
        self, inputs: Optional[Dict[str, Any]] = None, entry: str = "main"
    ) -> Dict[str, Any]:
        """Initialize globals, apply ``inputs``, execute ``entry``.

        Returns the final global state as ``{name: value}`` (arrays as
        lists) — the program's observable behaviour.
        """
        self._init_globals()
        for name, value in (inputs or {}).items():
            symbol = self.symbols.globals.get(name)
            if symbol is None:
                raise InterpreterError(f"no global named {name!r}")
            if symbol.is_array:
                current = self.globals[symbol.symbol_id]
                if len(value) > len(current):
                    raise InterpreterError(
                        f"input for {name!r} exceeds its declared size"
                    )
                current[: len(value)] = list(value)
            else:
                self.globals[symbol.symbol_id] = value
        self.call(entry, [])
        return self.global_state()

    def global_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {}
        for name, symbol in self.symbols.globals.items():
            value = self.globals[symbol.symbol_id]
            state[name] = list(value) if symbol.is_array else value
        return state

    def call(self, name: str, args: List[Any]) -> Any:
        """Invoke a function by name with evaluated arguments."""
        func = self.symbols.functions.get(name)
        if func is None:
            raise InterpreterError(f"no function named {name!r}")
        if len(args) != len(func.params):
            raise InterpreterError(
                f"{name} expects {len(func.params)} arguments, got {len(args)}"
            )
        frame: Dict[int, Any] = {}
        for param, value in zip(func.params, args):
            frame[param.symbol.symbol_id] = value
        try:
            self._exec(func.body, frame)
        except _Return as ret:
            return ret.value
        return None

    # -- initialization ----------------------------------------------------------

    def _init_globals(self) -> None:
        self.globals.clear()
        for decl in self.program.globals:
            symbol = decl.symbol
            if symbol.is_array:
                self.globals[symbol.symbol_id] = [
                    _zero(decl.type) for _ in range(decl.size)
                ]
            elif decl.init is not None:
                self.globals[symbol.symbol_id] = self._eval(decl.init, {})
            else:
                self.globals[symbol.symbol_id] = _zero(decl.type)

    # -- statements -------------------------------------------------------------

    def _burn(self) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise InterpreterError("fuel exhausted (infinite loop?)")

    def _exec(self, stmt: ast.Stmt, frame: Dict[int, Any]) -> None:
        self._burn()
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._exec(inner, frame)
        elif isinstance(stmt, ast.Decl):
            symbol = stmt.symbol
            if symbol.is_array:
                frame[symbol.symbol_id] = [_zero(stmt.type) for _ in range(stmt.size)]
            elif stmt.init is not None:
                frame[symbol.symbol_id] = self._eval(stmt.init, frame)
            else:
                frame[symbol.symbol_id] = _zero(stmt.type)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.expr, frame)
            self._store(stmt.target, value, frame)
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.cond, frame)):
                self._exec(stmt.then, frame)
            elif stmt.orelse is not None:
                self._exec(stmt.orelse, frame)
        elif isinstance(stmt, ast.While):
            while self._truthy(self._eval(stmt.cond, frame)):
                self._burn()
                self._exec(stmt.body, frame)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._exec(stmt.init, frame)
            while stmt.cond is None or self._truthy(self._eval(stmt.cond, frame)):
                self._burn()
                self._exec(stmt.body, frame)
                if stmt.step is not None:
                    self._exec(stmt.step, frame)
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, frame) if stmt.value is not None else None
            raise _Return(value)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, frame)
        else:  # pragma: no cover - parser produces no other statements
            raise InterpreterError(f"cannot execute {stmt!r}")

    def _store(self, target: ast.Expr, value: Any, frame: Dict[int, Any]) -> None:
        if isinstance(target, ast.VarRef):
            store = self._storage_for(target.symbol, frame)
            store[target.symbol.symbol_id] = value
            return
        # IndexRef
        array = self._lookup(target.array.symbol, frame)
        index = self._eval(target.index, frame)
        self._check_index(target, array, index)
        array[index] = value

    # -- expressions --------------------------------------------------------------

    def _storage_for(self, symbol, frame: Dict[int, Any]) -> Dict[int, Any]:
        if symbol.symbol_id in frame:
            return frame
        if symbol.symbol_id in self.globals:
            return self.globals
        # A local declared later in the function but assigned first cannot
        # occur (declaration precedes use by symbol resolution), so:
        return frame

    def _lookup(self, symbol, frame: Dict[int, Any]) -> Any:
        if symbol.symbol_id in frame:
            return frame[symbol.symbol_id]
        if symbol.symbol_id in self.globals:
            return self.globals[symbol.symbol_id]
        raise InterpreterError(
            f"variable {symbol.name!r} used before its declaration executed"
        )

    @staticmethod
    def _truthy(value: Any) -> bool:
        return value != 0

    def _check_index(self, node: ast.Node, array: List[Any], index: Any) -> None:
        if not isinstance(index, int):
            raise InterpreterError(f"line {node.line}: array index must be int")
        if not 0 <= index < len(array):
            raise InterpreterError(
                f"line {node.line}: index {index} out of bounds "
                f"(size {len(array)})"
            )

    def _eval(self, expr: ast.Expr, frame: Dict[int, Any]) -> Any:
        self._burn()
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.VarRef):
            return self._lookup(expr.symbol, frame)
        if isinstance(expr, ast.IndexRef):
            array = self._lookup(expr.array.symbol, frame)
            index = self._eval(expr.index, frame)
            self._check_index(expr, array, index)
            return array[index]
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -value
            return 0 if self._truthy(value) else 1
        if isinstance(expr, ast.Binary):
            return self._binary(expr, frame)
        if isinstance(expr, ast.Call):
            args = [self._eval(a, frame) for a in expr.args]
            return self.call(expr.name, args)
        raise InterpreterError(f"cannot evaluate {expr!r}")  # pragma: no cover

    def _binary(self, expr: ast.Binary, frame: Dict[int, Any]) -> Any:
        op = expr.op
        if op == "&&":
            if not self._truthy(self._eval(expr.left, frame)):
                return 0
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        if op == "||":
            if self._truthy(self._eval(expr.left, frame)):
                return 1
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpreterError(f"line {expr.line}: division by zero")
            if isinstance(left, int) and isinstance(right, int):
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError(f"line {expr.line}: modulo by zero")
            # C semantics: result has the sign of the dividend.
            remainder = abs(left) % abs(right)
            return remainder if left >= 0 else -remainder
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        return 1 if left >= right else 0


def run_program(
    source: str, inputs: Optional[Dict[str, Any]] = None, fuel: int = 5_000_000
) -> Dict[str, Any]:
    """Parse, resolve and execute a program; returns the final global state."""
    from repro.analysis.lang.parser import parse

    program = parse(source)
    return Interpreter(program, fuel=fuel).run(inputs)
