"""Lexer for the simplified C."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

KEYWORDS = ("int", "float", "void", "if", "else", "while", "for", "return")

# Multi-character punctuation must be tried before single characters.
PUNCT = (
    "==", "!=", "<=", ">=", "&&", "||",
    "(", ")", "{", "}", "[", "]", ";", ",", "=",
    "+", "-", "*", "/", "%", "<", ">", "!",
)


class LexError(Exception):
    """Raised on an unrecognized character, with its location."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class Token(NamedTuple):
    kind: str  # "ident", "intlit", "floatlit", a keyword, punctuation, "eof"
    value: str
    line: int


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; the result always ends with an ``eof`` token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    position = 0
    line = 1
    length = len(source)
    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end == -1 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end == -1:
                raise LexError("unterminated comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue
        if char.isdigit():
            start = position
            while position < length and source[position].isdigit():
                position += 1
            if position < length and source[position] == ".":
                position += 1
                while position < length and source[position].isdigit():
                    position += 1
                yield Token("floatlit", source[start:position], line)
            else:
                yield Token("intlit", source[start:position], line)
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (
                source[position].isalnum() or source[position] == "_"
            ):
                position += 1
            word = source[start:position]
            yield Token(word if word in KEYWORDS else "ident", word, line)
            continue
        for punct in PUNCT:
            if source.startswith(punct, position):
                yield Token(punct, punct, line)
                position += len(punct)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line)
    yield Token("eof", "", line)
