"""Recursive-descent parser for the simplified C.

Produces a :class:`~repro.analysis.lang.astnodes.Program` with every node
numbered (``node_id``) in parse order, which the analysis engine relies on
when attaching per-node :class:`~repro.analysis.attributes.Attributes`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.lang import astnodes as ast
from repro.analysis.lang.lexer import Token, tokenize


class ParseError(Exception):
    """Raised on a syntax error, with its location."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


# Binary operators by increasing precedence level.
_PRECEDENCE = (
    ("||",),
    ("&&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._position += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._current.kind == kind

    def _accept(self, kind: str) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str) -> Token:
        if self._check(kind):
            return self._advance()
        token = self._current
        raise ParseError(
            f"expected {kind!r}, found {token.kind!r} ({token.value!r})", token.line
        )

    # -- top level ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.FuncDef] = []
        while not self._check("eof"):
            type_token = self._expect_type()
            name = self._expect("ident")
            if self._check("("):
                functions.append(self._function(type_token, name))
            else:
                globals_.append(self._global_decl(type_token, name))
        program = ast.Program(globals_, functions)
        self._number(program)
        return program

    def _expect_type(self) -> Token:
        token = self._current
        if token.kind not in ast.TYPES:
            raise ParseError(f"expected a type, found {token.value!r}", token.line)
        return self._advance()

    def _global_decl(self, type_token: Token, name: Token) -> ast.GlobalDecl:
        if type_token.kind == ast.VOID:
            raise ParseError("a variable cannot have type void", type_token.line)
        size = None
        init = None
        if self._accept("["):
            size_token = self._expect("intlit")
            size = int(size_token.value)
            if size <= 0:
                raise ParseError("array size must be positive", size_token.line)
            self._expect("]")
        elif self._accept("="):
            init = self._expression()
        self._expect(";")
        return ast.GlobalDecl(type_token.line, type_token.kind, name.value, size, init)

    def _function(self, type_token: Token, name: Token) -> ast.FuncDef:
        self._expect("(")
        params: List[ast.Param] = []
        if not self._check(")"):
            while True:
                param_type = self._expect_type()
                if param_type.kind == ast.VOID:
                    raise ParseError(
                        "a parameter cannot have type void", param_type.line
                    )
                param_name = self._expect("ident")
                params.append(
                    ast.Param(param_type.line, param_type.kind, param_name.value)
                )
                if not self._accept(","):
                    break
        self._expect(")")
        body = self._block()
        return ast.FuncDef(type_token.line, type_token.kind, name.value, params, body)

    # -- statements -------------------------------------------------------------

    def _block(self) -> ast.Block:
        open_token = self._expect("{")
        body: List[ast.Stmt] = []
        while not self._check("}"):
            if self._check("eof"):
                raise ParseError("unterminated block", open_token.line)
            body.append(self._statement())
        self._expect("}")
        return ast.Block(open_token.line, body)

    def _statement(self) -> ast.Stmt:
        token = self._current
        if token.kind == "{":
            return self._block()
        if token.kind in (ast.INT, ast.FLOAT):
            return self._local_decl()
        if token.kind == "if":
            return self._if()
        if token.kind == "while":
            return self._while()
        if token.kind == "for":
            return self._for()
        if token.kind == "return":
            self._advance()
            value = None if self._check(";") else self._expression()
            self._expect(";")
            return ast.Return(token.line, value)
        return self._simple_statement_semicolon()

    def _local_decl(self) -> ast.Decl:
        type_token = self._advance()
        name = self._expect("ident")
        size = None
        init = None
        if self._accept("["):
            size_token = self._expect("intlit")
            size = int(size_token.value)
            if size <= 0:
                raise ParseError("array size must be positive", size_token.line)
            self._expect("]")
        elif self._accept("="):
            init = self._expression()
        self._expect(";")
        return ast.Decl(type_token.line, type_token.kind, name.value, size, init)

    def _if(self) -> ast.If:
        token = self._advance()
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        then = self._statement()
        orelse = self._statement() if self._accept("else") else None
        return ast.If(token.line, cond, then, orelse)

    def _while(self) -> ast.While:
        token = self._advance()
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        body = self._statement()
        return ast.While(token.line, cond, body)

    def _for(self) -> ast.For:
        token = self._advance()
        self._expect("(")
        init = None if self._check(";") else self._simple_statement()
        self._expect(";")
        cond = None if self._check(";") else self._expression()
        self._expect(";")
        step = None if self._check(")") else self._simple_statement()
        self._expect(")")
        body = self._statement()
        if init is not None and not isinstance(init, ast.Assign):
            raise ParseError("for-init must be an assignment", token.line)
        if step is not None and not isinstance(step, ast.Assign):
            raise ParseError("for-step must be an assignment", token.line)
        return ast.For(token.line, init, cond, step, body)

    def _simple_statement_semicolon(self) -> ast.Stmt:
        statement = self._simple_statement()
        self._expect(";")
        return statement

    def _simple_statement(self) -> ast.Stmt:
        """An assignment or an expression statement (no trailing ';')."""
        start = self._position
        token = self._current
        expr = self._expression()
        if self._check("="):
            if not isinstance(expr, (ast.VarRef, ast.IndexRef)):
                raise ParseError(
                    "assignment target must be a variable or array element",
                    token.line,
                )
            self._advance()
            value = self._expression()
            return ast.Assign(token.line, expr, value)
        if isinstance(expr, ast.Call):
            return ast.ExprStmt(token.line, expr)
        self._position = start
        raise ParseError(
            "expected an assignment or a call statement", token.line
        )

    # -- expressions --------------------------------------------------------------

    def _expression(self, level: int = 0) -> ast.Expr:
        if level == len(_PRECEDENCE):
            return self._unary()
        left = self._expression(level + 1)
        operators = _PRECEDENCE[level]
        while self._current.kind in operators:
            op = self._advance()
            right = self._expression(level + 1)
            left = ast.Binary(op.line, op.kind, left, right)
        return left

    def _unary(self) -> ast.Expr:
        token = self._current
        if token.kind in ("-", "!"):
            self._advance()
            return ast.Unary(token.line, token.kind, self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind == "intlit":
            return ast.IntLit(token.line, int(token.value))
        if token.kind == "floatlit":
            return ast.FloatLit(token.line, float(token.value))
        if token.kind == "(":
            expr = self._expression()
            self._expect(")")
            return expr
        if token.kind == "ident":
            if self._accept("("):
                args: List[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept(","):
                            break
                self._expect(")")
                return ast.Call(token.line, token.value, args)
            var = ast.VarRef(token.line, token.value)
            if self._accept("["):
                index = self._expression()
                self._expect("]")
                return ast.IndexRef(token.line, var, index)
            return var
        raise ParseError(f"unexpected token {token.value!r}", token.line)

    # -- numbering -------------------------------------------------------------

    @staticmethod
    def _number(program: ast.Program) -> None:
        count = 0
        for node in program.walk():
            node.node_id = count
            count += 1
        program.node_count = count


def parse(source: str) -> ast.Program:
    """Parse simplified-C source into a numbered AST."""
    program = _Parser(tokenize(source)).parse_program()
    program.source_lines = source.count("\n") + 1
    return program
