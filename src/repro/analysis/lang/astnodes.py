"""Abstract syntax tree of the simplified C treated by the analysis engine.

The language mirrors the "simplified version of C" of the paper's
prototype: global scalar and one-dimensional array declarations, function
definitions over ``int``/``float``/``void``, structured control flow
(``if``/``while``/``for``), assignments, and side-effect-free expressions
plus calls. No pointers, no structs, no casts.

Every node gets a program-wide sequential ``node_id`` (assigned by the
parser) and an ``attrs`` slot where the engine installs the node's
checkpointable :class:`~repro.analysis.attributes.Attributes`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

INT = "int"
FLOAT = "float"
VOID = "void"
TYPES = (INT, FLOAT, VOID)


class Node:
    """Base class of all AST nodes."""

    __slots__ = ("node_id", "line", "attrs")

    def __init__(self, line: int) -> None:
        self.node_id = -1  # assigned by the parser, unique per Program
        self.line = line
        self.attrs = None  # Attributes, installed by the engine

    def children(self) -> Tuple["Node", ...]:
        return ()

    def walk(self) -> Iterator["Node"]:
        """Preorder traversal of this subtree."""
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} line={self.line}>"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, line: int, value: int) -> None:
        super().__init__(line)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, line: int, value: float) -> None:
        super().__init__(line)
        self.value = value


class VarRef(Expr):
    """A variable use; ``symbol`` is filled by symbol resolution."""

    __slots__ = ("name", "symbol")

    def __init__(self, line: int, name: str) -> None:
        super().__init__(line)
        self.name = name
        self.symbol = None  # Symbol, set by repro.analysis.symbols


class IndexRef(Expr):
    """``array[index]`` — the array is always a named variable."""

    __slots__ = ("array", "index")

    def __init__(self, line: int, array: VarRef, index: Expr) -> None:
        super().__init__(line)
        self.array = array
        self.index = index

    def children(self) -> Tuple[Node, ...]:
        return (self.array, self.index)


class Unary(Expr):
    __slots__ = ("op", "operand")

    OPS = ("-", "!")

    def __init__(self, line: int, op: str, operand: Expr) -> None:
        super().__init__(line)
        self.op = op
        self.operand = operand

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    OPS = ("||", "&&", "==", "!=", "<", ">", "<=", ">=", "+", "-", "*", "/", "%")

    def __init__(self, line: int, op: str, left: Expr, right: Expr) -> None:
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)


class Call(Expr):
    __slots__ = ("name", "args", "func")

    def __init__(self, line: int, name: str, args: List[Expr]) -> None:
        super().__init__(line)
        self.name = name
        self.args = args
        self.func = None  # FuncDef, set by symbol resolution

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.args)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("body",)

    def __init__(self, line: int, body: List[Stmt]) -> None:
        super().__init__(line)
        self.body = body

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.body)


class Decl(Stmt):
    """Local declaration ``type name [= init];`` or ``type name[size];``."""

    __slots__ = ("type", "name", "size", "init", "symbol")

    def __init__(
        self,
        line: int,
        type_name: str,
        name: str,
        size: Optional[int] = None,
        init: Optional[Expr] = None,
    ) -> None:
        super().__init__(line)
        self.type = type_name
        self.name = name
        self.size = size  # array size, None for scalars
        self.init = init
        self.symbol = None

    def children(self) -> Tuple[Node, ...]:
        return (self.init,) if self.init is not None else ()


class Assign(Stmt):
    """``target = expr;`` where target is a variable or array element."""

    __slots__ = ("target", "expr")

    def __init__(self, line: int, target: Expr, expr: Expr) -> None:
        super().__init__(line)
        self.target = target  # VarRef or IndexRef
        self.expr = expr

    def children(self) -> Tuple[Node, ...]:
        return (self.target, self.expr)


class If(Stmt):
    __slots__ = ("cond", "then", "orelse")

    def __init__(
        self, line: int, cond: Expr, then: Stmt, orelse: Optional[Stmt]
    ) -> None:
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.orelse = orelse

    def children(self) -> Tuple[Node, ...]:
        if self.orelse is None:
            return (self.cond, self.then)
        return (self.cond, self.then, self.orelse)


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, line: int, cond: Expr, body: Stmt) -> None:
        super().__init__(line)
        self.cond = cond
        self.body = body

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, self.body)


class For(Stmt):
    """``for (init; cond; step) body`` — init/step are assignments."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(
        self,
        line: int,
        init: Optional[Assign],
        cond: Optional[Expr],
        step: Optional[Assign],
        body: Stmt,
    ) -> None:
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body

    def children(self) -> Tuple[Node, ...]:
        parts: List[Node] = []
        for part in (self.init, self.cond, self.step, self.body):
            if part is not None:
                parts.append(part)
        return tuple(parts)


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, line: int, value: Optional[Expr]) -> None:
        super().__init__(line)
        self.value = value

    def children(self) -> Tuple[Node, ...]:
        return (self.value,) if self.value is not None else ()


class ExprStmt(Stmt):
    """An expression evaluated for effect (in practice: a call)."""

    __slots__ = ("expr",)

    def __init__(self, line: int, expr: Expr) -> None:
        super().__init__(line)
        self.expr = expr

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


class Param(Node):
    __slots__ = ("type", "name", "symbol")

    def __init__(self, line: int, type_name: str, name: str) -> None:
        super().__init__(line)
        self.type = type_name
        self.name = name
        self.symbol = None


class GlobalDecl(Node):
    """Global scalar or array declaration."""

    __slots__ = ("type", "name", "size", "init", "symbol")

    def __init__(
        self,
        line: int,
        type_name: str,
        name: str,
        size: Optional[int] = None,
        init: Optional[Expr] = None,
    ) -> None:
        super().__init__(line)
        self.type = type_name
        self.name = name
        self.size = size
        self.init = init
        self.symbol = None

    def children(self) -> Tuple[Node, ...]:
        return (self.init,) if self.init is not None else ()


class FuncDef(Node):
    __slots__ = ("ret_type", "name", "params", "body")

    def __init__(
        self,
        line: int,
        ret_type: str,
        name: str,
        params: List[Param],
        body: Block,
    ) -> None:
        super().__init__(line)
        self.ret_type = ret_type
        self.name = name
        self.params = params
        self.body = body

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.params) + (self.body,)


class Program(Node):
    __slots__ = ("globals", "functions", "node_count", "source_lines")

    def __init__(self, globals_: List[GlobalDecl], functions: List[FuncDef]) -> None:
        super().__init__(0)
        self.globals = globals_
        self.functions = functions
        self.node_count = 0  # filled by the parser
        self.source_lines = 0

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.globals) + tuple(self.functions)

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")
