"""Simplified-C front end: lexer, parser, AST, and symbol resolution."""

from repro.analysis.lang.astnodes import Program
from repro.analysis.lang.lexer import LexError, tokenize
from repro.analysis.lang.parser import ParseError, parse

__all__ = ["tokenize", "LexError", "parse", "ParseError", "Program"]
