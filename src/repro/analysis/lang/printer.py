"""Pretty printer: simplified-C AST back to source text.

Used by the mini-C specializer to emit residual programs, and generally
handy for debugging. The output reparses to a structurally identical
program (tested).
"""

from __future__ import annotations

from typing import List

from repro.analysis.lang import astnodes as ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    ">": 4,
    "<=": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_UNARY_LEVEL = 7


def print_program(program: ast.Program) -> str:
    """Render a whole program as source text."""
    chunks: List[str] = []
    for decl in program.globals:
        chunks.append(_global_decl(decl))
    if program.globals:
        chunks.append("")
    for func in program.functions:
        chunks.append(_function(func))
        chunks.append("")
    return "\n".join(chunks).rstrip() + "\n"


def print_expr(expr: ast.Expr) -> str:
    """Render one expression."""
    return _expr(expr, 0)


def print_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    """Render one statement (or block)."""
    return "\n".join(_stmt(stmt, indent))


def _global_decl(decl: ast.GlobalDecl) -> str:
    if decl.size is not None:
        return f"{decl.type} {decl.name}[{decl.size}];"
    if decl.init is not None:
        return f"{decl.type} {decl.name} = {_expr(decl.init, 0)};"
    return f"{decl.type} {decl.name};"


def _function(func: ast.FuncDef) -> str:
    params = ", ".join(f"{p.type} {p.name}" for p in func.params)
    lines = [f"{func.ret_type} {func.name}({params}) {{"]
    for stmt in func.body.body:
        lines.extend(_stmt(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def _stmt(stmt: ast.Stmt, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(stmt, ast.Block):
        lines = [f"{pad}{{"]
        for inner in stmt.body:
            lines.extend(_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Decl):
        if stmt.size is not None:
            return [f"{pad}{stmt.type} {stmt.name}[{stmt.size}];"]
        if stmt.init is not None:
            return [f"{pad}{stmt.type} {stmt.name} = {_expr(stmt.init, 0)};"]
        return [f"{pad}{stmt.type} {stmt.name};"]
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{_expr(stmt.target, 0)} = {_expr(stmt.expr, 0)};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({_expr(stmt.cond, 0)})"]
        lines.extend(_braced(stmt.then, indent))
        if stmt.orelse is not None:
            lines.append(f"{pad}else")
            lines.extend(_braced(stmt.orelse, indent))
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({_expr(stmt.cond, 0)})"]
        lines.extend(_braced(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.For):
        init = _inline_assign(stmt.init)
        cond = _expr(stmt.cond, 0) if stmt.cond is not None else ""
        step = _inline_assign(stmt.step)
        lines = [f"{pad}for ({init}; {cond}; {step})"]
        lines.extend(_braced(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {_expr(stmt.value, 0)};"]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{_expr(stmt.expr, 0)};"]
    raise TypeError(f"cannot print statement {stmt!r}")  # pragma: no cover


def _inline_assign(stmt) -> str:
    if stmt is None:
        return ""
    return f"{_expr(stmt.target, 0)} = {_expr(stmt.expr, 0)}"


def _braced(stmt: ast.Stmt, indent: int) -> List[str]:
    """Render a sub-statement as a braced block (normalizes layout)."""
    if isinstance(stmt, ast.Block):
        return _stmt(stmt, indent)
    pad = "    " * indent
    return [f"{pad}{{"] + _stmt(stmt, indent + 1) + [f"{pad}}}"]


def _expr(expr: ast.Expr, parent_level: int) -> str:
    if isinstance(expr, ast.IntLit):
        # Negative literals only arise from constant folding; parenthesize
        # so "x - -1" style output stays parseable as unary minus.
        return str(expr.value) if expr.value >= 0 else f"(0 - {-expr.value})"
    if isinstance(expr, ast.FloatLit):
        if expr.value >= 0:
            return repr(float(expr.value))
        return f"(0.0 - {repr(-float(expr.value))})"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.IndexRef):
        return f"{expr.array.name}[{_expr(expr.index, 0)}]"
    if isinstance(expr, ast.Unary):
        inner = _expr(expr.operand, _UNARY_LEVEL)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_level > _UNARY_LEVEL else text
    if isinstance(expr, ast.Binary):
        level = _PRECEDENCE[expr.op]
        left = _expr(expr.left, level)
        # Right operand gets a higher threshold: our operators are parsed
        # left-associatively, so equal-precedence on the right needs parens.
        right = _expr(expr.right, level + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_level > level else text
    if isinstance(expr, ast.Call):
        args = ", ".join(_expr(a, 0) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot print expression {expr!r}")  # pragma: no cover
