"""Command line for the analysis engine and the mini-C specializer.

Usage::

    python -m repro.analysis analyze  program.c [--static g1,g2] [--dynamic g3]
    python -m repro.analysis specialize program.c [--static ...] [--entry main]
    python -m repro.analysis run      program.c [--set name=value ...]

``analyze`` prints per-phase iteration counts, checkpoint statistics and
a binding-time summary. ``specialize`` prints the residual program.
``run`` executes the program with the reference interpreter and prints
the final global state.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.attributes import DYNAMIC, STATIC
from repro.analysis.bta import Division
from repro.analysis.engine import AnalysisEngine
from repro.analysis.interp import run_program
from repro.analysis.lang import astnodes as ast
from repro.analysis.specializer import specialize_program


def _division(args) -> Division:
    def names(raw):
        return {n for n in (raw or "").split(",") if n}

    return Division(static_globals=names(args.static), dynamic_globals=names(args.dynamic))


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_analyze(args) -> int:
    engine = AnalysisEngine(
        _read(args.program),
        division=_division(args),
        strategy=args.strategy,
    )
    report = engine.run()
    print(f"program: {engine.program.source_lines} lines, "
          f"{engine.program.node_count} AST nodes, "
          f"{len(engine.program.functions)} functions")
    print(f"iterations: {report.phase_iterations}")
    if args.strategy != "none":
        print(f"base checkpoint: {report.base_bytes} bytes")
        for phase in ("SE", "BTA", "ETA"):
            sizes = [r.checkpoint_bytes for r in report.phase_records(phase)]
            print(f"  {phase}: incremental checkpoints {sizes} bytes")
    static = dynamic = 0
    for node in engine.program.walk():
        if isinstance(node, ast.Expr):
            value = engine.attributes.of(node).bt_entry.bt.value
            if value == STATIC:
                static += 1
            elif value == DYNAMIC:
                dynamic += 1
    print(f"binding times: {static} static / {dynamic} dynamic expressions")
    if engine.bta.dynamic_callers:
        print(f"functions under dynamic control: "
              f"{', '.join(sorted(engine.bta.dynamic_callers))}")
    return 0


def cmd_specialize(args) -> int:
    engine = AnalysisEngine(
        _read(args.program), division=_division(args), strategy="none"
    )
    engine.run()
    residual = specialize_program(
        engine,
        entry=args.entry,
        max_residual_statements=args.budget,
    )
    print(residual.source, end="")
    return 0


def cmd_run(args) -> int:
    inputs = {}
    for setting in args.set or ():
        name, _, raw = setting.partition("=")
        if not _:
            print(f"--set expects name=value, got {setting!r}", file=sys.stderr)
            return 2
        if "," in raw:
            inputs[name] = [int(v) for v in raw.split(",") if v]
        else:
            inputs[name] = float(raw) if "." in raw else int(raw)
    state = run_program(_read(args.program), inputs, fuel=args.fuel)
    for name in sorted(state):
        value = state[name]
        if isinstance(value, list) and len(value) > 16:
            shown = ", ".join(str(v) for v in value[:16])
            print(f"{name} = [{shown}, ... {len(value)} total]")
        else:
            print(f"{name} = {value}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.analysis")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run the three analyses")
    analyze.add_argument("program")
    analyze.add_argument("--static", help="comma-separated static globals")
    analyze.add_argument("--dynamic", help="comma-separated dynamic globals")
    analyze.add_argument(
        "--strategy",
        default="incremental",
        choices=("none", "full", "incremental", "reflective", "specialized"),
    )
    analyze.set_defaults(func=cmd_analyze)

    spec = sub.add_parser("specialize", help="partially evaluate the program")
    spec.add_argument("program")
    spec.add_argument("--static")
    spec.add_argument("--dynamic")
    spec.add_argument("--entry", default="main")
    spec.add_argument("--budget", type=int, default=50_000)
    spec.set_defaults(func=cmd_specialize)

    run = sub.add_parser("run", help="execute with the reference interpreter")
    run.add_argument("program")
    run.add_argument("--set", action="append", metavar="NAME=VALUE")
    run.add_argument("--fuel", type=int, default=50_000_000)
    run.set_defaults(func=cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
