"""Entry point for ``python -m repro.fsck``."""

import sys

from repro.fsck.cli import main

sys.exit(main())
