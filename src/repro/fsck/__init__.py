"""Crash-consistent checking and repair of checkpoint directories.

- :class:`~repro.fsck.manager.RecoveryManager` — classify every file in
  a :class:`~repro.core.storage.FileStore` directory, compute the last
  consistent epoch prefix, quarantine damage;
- ``python -m repro.fsck`` — the CLI over it (human or JSON reports).
"""

from repro.fsck.manager import (
    CORRUPT,
    FOREIGN,
    INTACT,
    ORPHAN_TMP,
    TORN,
    UNREACHABLE,
    FileReport,
    FsckReport,
    RecoveryManager,
)

__all__ = [
    "RecoveryManager",
    "FsckReport",
    "FileReport",
    "INTACT",
    "TORN",
    "CORRUPT",
    "ORPHAN_TMP",
    "UNREACHABLE",
    "FOREIGN",
]
