"""``python -m repro.fsck``: scan/repair checkpoint directories.

Examples::

    python -m repro.fsck ckpts/                 # human-readable scan
    python -m repro.fsck ckpts/ --json          # machine-readable scan
    python -m repro.fsck ckpts/ --repair        # quarantine damage, exit 0
    python -m repro.fsck ckpts/ --quarantine q/ # custom quarantine dir
    python -m repro.fsck r0/ r1/ r2/ --scrub    # replica set: byte-compare
                                                # against the quorum copy,
                                                # quarantine + read-repair

With one directory the tool behaves (and emits JSON) exactly as it
always has. With several directories they are treated as replicas of
one replicated store: each is scanned (or repaired) individually, and
``--scrub`` additionally runs the
:meth:`~repro.core.replica.ReplicatedStore.scrub` sweep — every record
is byte-compared against a checksum-valid quorum copy; divergent or
unreadable records are quarantined (never deleted) and rewritten from
healthy peers.

Exit codes: ``0`` — every directory is consistent (or was repaired into
consistency) and, under ``--scrub``, every detected divergence was
healed; ``1`` — inconsistencies or unrepairable records remain; ``2`` —
usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.errors import StorageError
from repro.fsck.manager import RecoveryManager


def _human(report, out) -> None:
    print(report.summary(), file=out)
    for entry in report.files:
        line = f"  {entry.name}: {entry.status}"
        if entry.kind:
            line += f" [{entry.kind}]"
        if entry.detail:
            line += f" — {entry.detail}"
        if entry.action != "kept":
            line += f" -> {entry.action}"
        print(line, file=out)
    for branch, head in sorted(report.branches.items()):
        print(f"  branch {branch}: head epoch {head}", file=out)
    for name, index in sorted(report.named.items()):
        print(f"  named checkpoint {name!r}: epoch {index}", file=out)
    for branch in report.orphan_branches:
        print(f"  ! orphan branch {branch!r}: base chain broken", file=out)
    if not report.manifest_supported:
        print(
            f"  ! manifest format_version {report.format_version!r} "
            "not supported by this tool",
            file=out,
        )
    for action in report.actions:
        print(f"  * {action}", file=out)


def _human_scrub(scrub, out) -> None:
    print(
        f"scrub: {len(scrub.replicas)} replica(s), "
        f"{scrub.epochs_checked} epoch(s) checked, "
        f"{len(scrub.repaired)} repaired, "
        f"{len(scrub.quarantined)} quarantined, "
        f"{len(scrub.unrepairable)} unrepairable",
        file=out,
    )
    for entry in scrub.repaired:
        print(
            f"  * {entry['replica']}: epoch {entry['index']} "
            f"{entry['action']} from quorum copy",
            file=out,
        )
    for token in scrub.quarantined:
        print(f"  * quarantined {token}", file=out)
    for index in scrub.unrepairable:
        print(
            f"  ! epoch {index}: no checksum-valid copy on any replica",
            file=out,
        )
    for error in scrub.errors:
        print(f"  ! repair failed: {error}", file=out)


def _run_scrub(directories):
    from repro.core.replica import ReplicatedStore
    from repro.core.storage import FileStore

    store = ReplicatedStore(
        [FileStore(directory) for directory in directories],
        names=list(directories),
    )
    return store.scrub()


def main(argv=None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fsck",
        description=(
            "Check (and repair) FileStore checkpoint directories; several "
            "directories are treated as replicas of one replicated store."
        ),
    )
    parser.add_argument(
        "directories",
        nargs="+",
        metavar="directory",
        help="checkpoint director(ies) to check",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine damaged/stranded files so the store is consistent",
    )
    parser.add_argument(
        "--scrub",
        action="store_true",
        help=(
            "byte-compare every record against the checksum-valid quorum "
            "copy across the given replicas; quarantine divergent records "
            "and rewrite them from healthy peers"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--quarantine",
        default=None,
        metavar="DIR",
        help="where quarantined files go (default: DIRECTORY/quarantine)",
    )
    args = parser.parse_args(argv)

    if args.quarantine is not None and len(args.directories) > 1:
        print(
            "fsck: --quarantine applies to a single directory; replicas "
            "quarantine into their own quarantine/ subdirectories",
            file=sys.stderr,
        )
        return 2

    # Scrub first: the per-directory reports below then describe the
    # *healed* state, and a record the scrub quarantined+rewrote no
    # longer counts against a replica's consistency.
    scrub = None
    if args.scrub:
        try:
            scrub = _run_scrub(args.directories)
        except StorageError as exc:
            print(f"fsck: scrub: {exc}", file=sys.stderr)
            return 2

    reports = {}
    for directory in args.directories:
        manager = RecoveryManager(directory, quarantine_dir=args.quarantine)
        try:
            reports[directory] = (
                manager.repair() if args.repair else manager.scan()
            )
        except StorageError as exc:
            print(f"fsck: {directory}: {exc}", file=sys.stderr)
            return 2

    consistent = all(report.consistent for report in reports.values())
    if scrub is not None:
        consistent = consistent and scrub.healed

    if len(args.directories) == 1 and scrub is None:
        # the legacy single-directory contract: the report *is* the output
        report = reports[args.directories[0]]
        if args.json:
            print(report.to_json(), file=out)
        else:
            _human(report, out)
        return 0 if report.consistent else 1

    if args.json:
        payload = {
            "replicas": {
                directory: report.to_dict()
                for directory, report in reports.items()
            },
            "scrub": scrub.to_dict() if scrub is not None else None,
            "consistent": consistent,
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        for directory, report in reports.items():
            print(f"== {directory} ==", file=out)
            _human(report, out)
        if scrub is not None:
            _human_scrub(scrub, out)
    return 0 if consistent else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
