"""``python -m repro.fsck``: scan/repair a checkpoint directory.

Examples::

    python -m repro.fsck ckpts/                 # human-readable scan
    python -m repro.fsck ckpts/ --json          # machine-readable scan
    python -m repro.fsck ckpts/ --repair        # quarantine damage, exit 0
    python -m repro.fsck ckpts/ --quarantine q/ # custom quarantine dir

Exit codes: ``0`` — directory is consistent (or was repaired into
consistency); ``1`` — inconsistencies found and not repaired (or repair
left the store unrecoverable); ``2`` — usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.errors import StorageError
from repro.fsck.manager import RecoveryManager


def _human(report, out) -> None:
    print(report.summary(), file=out)
    for entry in report.files:
        line = f"  {entry.name}: {entry.status}"
        if entry.kind:
            line += f" [{entry.kind}]"
        if entry.detail:
            line += f" — {entry.detail}"
        if entry.action != "kept":
            line += f" -> {entry.action}"
        print(line, file=out)
    for branch, head in sorted(report.branches.items()):
        print(f"  branch {branch}: head epoch {head}", file=out)
    for name, index in sorted(report.named.items()):
        print(f"  named checkpoint {name!r}: epoch {index}", file=out)
    for branch in report.orphan_branches:
        print(f"  ! orphan branch {branch!r}: base chain broken", file=out)
    if not report.manifest_supported:
        print(
            f"  ! manifest format_version {report.format_version!r} "
            "not supported by this tool",
            file=out,
        )
    for action in report.actions:
        print(f"  * {action}", file=out)


def main(argv=None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fsck",
        description="Check (and repair) a FileStore checkpoint directory.",
    )
    parser.add_argument("directory", help="checkpoint directory to check")
    parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine damaged/stranded files so the store is consistent",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--quarantine",
        default=None,
        metavar="DIR",
        help="where quarantined files go (default: DIRECTORY/quarantine)",
    )
    args = parser.parse_args(argv)

    manager = RecoveryManager(args.directory, quarantine_dir=args.quarantine)
    try:
        report = manager.repair() if args.repair else manager.scan()
    except StorageError as exc:
        print(f"fsck: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(report.to_json(), file=out)
    else:
        _human(report, out)

    if report.consistent:
        return 0
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
