"""Crash-consistent recovery of a checkpoint directory.

After a crash a :class:`~repro.core.storage.FileStore` directory can
hold, besides intact epochs: a torn final epoch (the crash interrupted
the write), silently corrupt epochs (media bit rot the CRC catches),
orphaned ``*.tmp`` files (crash between temp write and atomic rename),
and — after partial cleanup — *holes* in the index sequence that strand
later epochs outside any recovery line.

:class:`RecoveryManager` turns that mess back into a store the runtime
can trust:

1. **scan** — classify every file (``intact`` / ``torn`` / ``corrupt`` /
   ``orphan-tmp`` / ``unreachable`` / ``foreign``) and compute the last
   consistent epoch prefix (contiguous intact epochs from the lowest
   index, stopping at the first damaged file or index hole);
2. **repair** — quarantine everything outside that prefix into
   ``quarantine/`` and re-verify, leaving a directory whose every
   remaining epoch participates in a valid recovery line.

The recovery invariant, checked by the fault-injection suite: after
``repair()``, ``FileStore(directory).recover()`` yields exactly the
state of the last durable epoch of the fault-free execution.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import StorageError
from repro.core.storage import (
    _COMPRESSED_NAMES,
    _HEADER,
    _KIND_NAMES,
    _MAGIC,
    _VERSION,
    FULL,
)
from repro.obs.tracer import NULL_TRACER

INTACT = "intact"
TORN = "torn"
CORRUPT = "corrupt"
ORPHAN_TMP = "orphan-tmp"
UNREACHABLE = "unreachable"
FOREIGN = "foreign"
MANIFEST = "manifest"


@dataclass
class FileReport:
    """Classification of one file in the checkpoint directory."""

    name: str
    status: str
    #: epoch index for epoch files, None otherwise
    index: Optional[int] = None
    #: epoch kind when the frame was readable
    kind: Optional[str] = None
    #: why the file got its status
    detail: str = ""
    #: what repair did with it ("kept", "quarantined")
    action: str = "kept"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "index": self.index,
            "kind": self.kind,
            "detail": self.detail,
            "action": self.action,
        }


@dataclass
class FsckReport:
    """The outcome of one scan or repair pass."""

    directory: str
    files: List[FileReport] = field(default_factory=list)
    #: intact, contiguous, line-forming epoch indices (the durable prefix)
    durable_epochs: List[int] = field(default_factory=list)
    #: whether every non-quarantined file participates in that prefix
    consistent: bool = False
    #: whether the durable prefix contains a full checkpoint (recovery base)
    recoverable: bool = False
    #: whether the manifest is present and well-formed
    manifest_ok: bool = False
    #: True when this report describes a repair pass
    repaired: bool = False
    #: human-readable notes of what scan/repair did
    actions: List[str] = field(default_factory=list)

    def by_status(self, status: str) -> List[FileReport]:
        return [entry for entry in self.files if entry.status == status]

    def to_dict(self) -> dict:
        return {
            "directory": self.directory,
            "consistent": self.consistent,
            "recoverable": self.recoverable,
            "manifest_ok": self.manifest_ok,
            "repaired": self.repaired,
            "durable_epochs": list(self.durable_epochs),
            "files": [entry.to_dict() for entry in self.files],
            "actions": list(self.actions),
            "counts": {
                status: len(self.by_status(status))
                for status in (
                    INTACT,
                    TORN,
                    CORRUPT,
                    ORPHAN_TMP,
                    UNREACHABLE,
                    FOREIGN,
                )
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        counts = self.to_dict()["counts"]
        parts = [f"{n} {status}" for status, n in counts.items() if n]
        state = "consistent" if self.consistent else "INCONSISTENT"
        base = "recoverable" if self.recoverable else "no recovery base"
        return (
            f"{self.directory}: {state}, {base}, "
            f"{len(self.durable_epochs)} durable epoch(s)"
            + (f" ({', '.join(parts)})" if parts else "")
        )


def _classify_epoch_file(path: str) -> tuple:
    """``(status, kind, detail)`` of one ``epoch-*.ckpt`` file."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return TORN, None, f"unreadable: {exc}"
    if len(raw) < _HEADER.size:
        return TORN, None, f"only {len(raw)} of {_HEADER.size} header bytes"
    magic, version, kind_code, length, crc = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        return CORRUPT, None, f"bad magic {magic!r}"
    if version != _VERSION:
        return CORRUPT, None, f"unknown format version {version}"
    known = kind_code in _KIND_NAMES or kind_code in _COMPRESSED_NAMES
    if not known:
        return CORRUPT, None, f"unknown kind code {kind_code}"
    kind = _KIND_NAMES.get(kind_code) or _COMPRESSED_NAMES[kind_code]
    payload = raw[_HEADER.size : _HEADER.size + length]
    if len(payload) < length:
        return TORN, kind, f"payload {len(payload)} of {length} bytes"
    if zlib.crc32(payload) != crc:
        return CORRUPT, kind, "CRC mismatch"
    if kind_code in _COMPRESSED_NAMES:
        try:
            zlib.decompress(payload)
        except zlib.error:
            return CORRUPT, kind, "CRC intact but deflate stream invalid"
    if len(raw) > _HEADER.size + length:
        # Trailing garbage past the frame: the frame itself is usable.
        return INTACT, kind, f"{len(raw) - _HEADER.size - length} trailing bytes"
    return INTACT, kind, ""


class RecoveryManager:
    """Scan and repair one checkpoint directory (see module docstring)."""

    def __init__(
        self,
        directory: str,
        quarantine_dir: Optional[str] = None,
        tracer=None,
    ) -> None:
        self.directory = directory
        self.quarantine_dir = quarantine_dir or os.path.join(
            directory, "quarantine"
        )
        #: observability hook; the no-op singleton unless one is supplied
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- scanning ----------------------------------------------------------

    def scan(self) -> FsckReport:
        """Classify every file; compute the durable prefix. Read-only."""
        report = FsckReport(directory=self.directory)
        if not os.path.isdir(self.directory):
            raise StorageError(
                f"{self.directory!r} is not a checkpoint directory"
            )
        entries: List[FileReport] = []
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if os.path.isdir(path):
                continue  # quarantine/ and other directories
            entries.append(self._classify(name, path))
        report.files = entries
        self._resolve_sequence(report)
        self._check_manifest(report)
        report.consistent = not [
            entry
            for entry in entries
            if entry.status in (TORN, CORRUPT, ORPHAN_TMP, UNREACHABLE)
        ]
        if self.tracer.enabled:
            self.tracer.event(
                "fsck.scan",
                directory=self.directory,
                files=len(entries),
                durable_epochs=len(report.durable_epochs),
                consistent=report.consistent,
                recoverable=report.recoverable,
            )
        return report

    def _classify(self, name: str, path: str) -> FileReport:
        if name.endswith(".tmp"):
            return FileReport(
                name,
                ORPHAN_TMP,
                detail="temporary left by an interrupted write",
            )
        if name == "manifest.json":
            return FileReport(name, MANIFEST)
        if name.startswith("epoch-") and name.endswith(".ckpt"):
            try:
                index = int(name[len("epoch-") : -len(".ckpt")])
            except ValueError:
                return FileReport(
                    name, FOREIGN, detail="epoch-like name, unparsable index"
                )
            status, kind, detail = _classify_epoch_file(path)
            return FileReport(name, status, index=index, kind=kind, detail=detail)
        return FileReport(name, FOREIGN, detail="not a store file")

    def _resolve_sequence(self, report: FsckReport) -> None:
        """The durable prefix: contiguous intact epochs from the lowest index.

        The first torn/corrupt epoch — or the first hole in the index
        sequence — ends the prefix; every *intact* epoch past that point
        can never join a recovery line (deltas cannot apply across a
        hole) and is reclassified ``unreachable``.
        """
        epoch_entries = sorted(
            (entry for entry in report.files if entry.index is not None),
            key=lambda entry: entry.index,
        )
        durable: List[int] = []
        broken = False
        expected = epoch_entries[0].index if epoch_entries else 0
        for entry in epoch_entries:
            if broken:
                if entry.status == INTACT:
                    entry.status = UNREACHABLE
                    entry.detail = "intact but stranded past a hole"
                continue
            if entry.index != expected:
                broken = True  # an index hole strands everything after it
                if entry.status == INTACT:
                    entry.status = UNREACHABLE
                    entry.detail = (
                        f"index gap: expected epoch {expected}, "
                        f"found {entry.index}"
                    )
                continue
            if entry.status != INTACT:
                broken = True
                continue
            durable.append(entry.index)
            expected = entry.index + 1
        report.durable_epochs = durable
        kinds = {
            entry.index: entry.kind
            for entry in epoch_entries
            if entry.index in durable
        }
        report.recoverable = any(kinds[index] == FULL for index in durable)

    def _check_manifest(self, report: FsckReport) -> None:
        path = os.path.join(self.directory, "manifest.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            report.manifest_ok = isinstance(manifest.get("classes"), dict)
        except (OSError, json.JSONDecodeError):
            report.manifest_ok = False
        if not report.manifest_ok:
            report.actions.append("manifest missing or malformed")

    # -- repairing ---------------------------------------------------------

    def repair(self) -> FsckReport:
        """Quarantine everything outside the durable prefix; re-verify.

        Truncates the epoch *sequence*, never a file's bytes: damaged and
        stranded epochs are moved (with their evidence intact) into the
        quarantine directory, so forensics stay possible while the store
        itself becomes consistent. Returns the post-repair report.
        """
        report = self.scan()
        moved = 0
        for entry in report.files:
            if entry.status in (TORN, CORRUPT, ORPHAN_TMP, UNREACHABLE):
                if self._quarantine(entry.name):
                    entry.action = "quarantined"
                    moved += 1
        if moved:
            report.actions.append(f"quarantined {moved} file(s)")
        verify = self.scan()
        report.durable_epochs = verify.durable_epochs
        report.recoverable = verify.recoverable
        report.consistent = verify.consistent
        report.manifest_ok = verify.manifest_ok
        report.repaired = True
        if self.tracer.enabled:
            self.tracer.event(
                "fsck.repair",
                directory=self.directory,
                quarantined=moved,
                durable_epochs=len(report.durable_epochs),
                consistent=report.consistent,
                recoverable=report.recoverable,
            )
        return report

    def _quarantine(self, name: str) -> bool:
        source = os.path.join(self.directory, name)
        target = os.path.join(self.quarantine_dir, name)
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            if os.path.exists(target):
                suffix = 0
                while os.path.exists(f"{target}.{suffix}"):
                    suffix += 1
                target = f"{target}.{suffix}"
            os.replace(source, target)
        except OSError:
            return False
        return True
