"""Crash-consistent recovery of a checkpoint directory.

After a crash a :class:`~repro.core.storage.FileStore` directory can
hold, besides intact epochs: a torn final epoch (the crash interrupted
the write), silently corrupt epochs (media bit rot the CRC catches),
orphaned ``*.tmp`` files (crash between temp write and atomic rename),
and — after partial cleanup — *holes* in the index sequence that strand
later epochs outside any recovery line.

:class:`RecoveryManager` turns that mess back into a store the runtime
can trust:

1. **scan** — classify every file (``intact`` / ``torn`` / ``corrupt`` /
   ``orphan-tmp`` / ``unreachable`` / ``foreign``) and walk the epoch
   *lineage graph* from the manifest: an epoch is durable iff its file
   is intact and every ancestor down to its nearest full checkpoint is
   intact too. Stores written before the manifest carried a lineage map
   get the implied linear lineage (parent = index − 1), which reproduces
   the historical contiguous-prefix semantics exactly;
2. **repair** — quarantine everything damaged or chain-broken into
   ``quarantine/`` and re-verify, leaving a directory whose every
   remaining epoch materializes through an intact base+delta chain.
   Orphan *branches* (a fork whose base chain was destroyed) are
   quarantined with their bytes intact, never deleted.

A manifest with an unknown ``format_version`` is a classified finding:
the scan reports it and marks the directory inconsistent (the CLI exits
nonzero) instead of guessing at lineage written by a newer tool.

The recovery invariant, checked by the fault-injection suite: after
``repair()``, every epoch still present materializes byte-identically
to the fault-free execution at the same epoch index.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import StorageError
from repro.core.lineage import MAIN_BRANCH
from repro.core.storage import (
    _COMPRESSED_NAMES,
    _HEADER,
    _KIND_NAMES,
    _MAGIC,
    _SUPPORTED_MANIFESTS,
    _VERSION,
    _implied_lineage,
    FULL,
)
from repro.obs.tracer import NULL_TRACER

INTACT = "intact"
TORN = "torn"
CORRUPT = "corrupt"
ORPHAN_TMP = "orphan-tmp"
UNREACHABLE = "unreachable"
FOREIGN = "foreign"
MANIFEST = "manifest"


@dataclass
class FileReport:
    """Classification of one file in the checkpoint directory."""

    name: str
    status: str
    #: epoch index for epoch files, None otherwise
    index: Optional[int] = None
    #: epoch kind when the frame was readable
    kind: Optional[str] = None
    #: why the file got its status
    detail: str = ""
    #: what repair did with it ("kept", "quarantined")
    action: str = "kept"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "index": self.index,
            "kind": self.kind,
            "detail": self.detail,
            "action": self.action,
        }


@dataclass
class FsckReport:
    """The outcome of one scan or repair pass."""

    directory: str
    files: List[FileReport] = field(default_factory=list)
    #: intact epoch indices whose whole base chain is intact (sorted)
    durable_epochs: List[int] = field(default_factory=list)
    #: whether every non-quarantined file participates in an intact chain
    consistent: bool = False
    #: whether any durable epoch materializes (a full checkpoint survives)
    recoverable: bool = False
    #: whether the manifest is present and well-formed
    manifest_ok: bool = False
    #: False when the manifest declares a format_version this tool
    #: does not understand (a classified finding, not a traceback)
    manifest_supported: bool = True
    #: the manifest's declared format_version, when one was readable
    format_version: Optional[object] = None
    #: True when this report describes a repair pass
    repaired: bool = False
    #: human-readable notes of what scan/repair did
    actions: List[str] = field(default_factory=list)
    #: branch name → newest durable epoch index on that branch
    branches: Dict[str, int] = field(default_factory=dict)
    #: checkpoint name → durable epoch index it pins
    named: Dict[str, int] = field(default_factory=dict)
    #: branches whose every epoch was stranded by a broken base chain
    orphan_branches: List[str] = field(default_factory=list)

    def by_status(self, status: str) -> List[FileReport]:
        return [entry for entry in self.files if entry.status == status]

    def to_dict(self) -> dict:
        return {
            "directory": self.directory,
            "consistent": self.consistent,
            "recoverable": self.recoverable,
            "manifest_ok": self.manifest_ok,
            "manifest_supported": self.manifest_supported,
            "format_version": self.format_version,
            "repaired": self.repaired,
            "durable_epochs": list(self.durable_epochs),
            "branches": dict(self.branches),
            "named": dict(self.named),
            "orphan_branches": list(self.orphan_branches),
            "files": [entry.to_dict() for entry in self.files],
            "actions": list(self.actions),
            "counts": {
                status: len(self.by_status(status))
                for status in (
                    INTACT,
                    TORN,
                    CORRUPT,
                    ORPHAN_TMP,
                    UNREACHABLE,
                    FOREIGN,
                )
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        counts = self.to_dict()["counts"]
        parts = [f"{n} {status}" for status, n in counts.items() if n]
        state = "consistent" if self.consistent else "INCONSISTENT"
        base = "recoverable" if self.recoverable else "no recovery base"
        return (
            f"{self.directory}: {state}, {base}, "
            f"{len(self.durable_epochs)} durable epoch(s)"
            + (f" ({', '.join(parts)})" if parts else "")
        )


def _classify_epoch_file(path: str) -> tuple:
    """``(status, kind, detail)`` of one ``epoch-*.ckpt`` file."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return TORN, None, f"unreadable: {exc}"
    if len(raw) < _HEADER.size:
        return TORN, None, f"only {len(raw)} of {_HEADER.size} header bytes"
    magic, version, kind_code, length, crc = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        return CORRUPT, None, f"bad magic {magic!r}"
    if version != _VERSION:
        return CORRUPT, None, f"unknown format version {version}"
    known = kind_code in _KIND_NAMES or kind_code in _COMPRESSED_NAMES
    if not known:
        return CORRUPT, None, f"unknown kind code {kind_code}"
    kind = _KIND_NAMES.get(kind_code) or _COMPRESSED_NAMES[kind_code]
    payload = raw[_HEADER.size : _HEADER.size + length]
    if len(payload) < length:
        return TORN, kind, f"payload {len(payload)} of {length} bytes"
    if zlib.crc32(payload) != crc:
        return CORRUPT, kind, "CRC mismatch"
    if kind_code in _COMPRESSED_NAMES:
        try:
            zlib.decompress(payload)
        except zlib.error:
            return CORRUPT, kind, "CRC intact but deflate stream invalid"
    if len(raw) > _HEADER.size + length:
        # Trailing garbage past the frame: the frame itself is usable.
        return INTACT, kind, f"{len(raw) - _HEADER.size - length} trailing bytes"
    return INTACT, kind, ""


class RecoveryManager:
    """Scan and repair one checkpoint directory (see module docstring)."""

    def __init__(
        self,
        directory: str,
        quarantine_dir: Optional[str] = None,
        tracer=None,
    ) -> None:
        self.directory = directory
        self.quarantine_dir = quarantine_dir or os.path.join(
            directory, "quarantine"
        )
        #: observability hook; the no-op singleton unless one is supplied
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- scanning ----------------------------------------------------------

    def scan(self) -> FsckReport:
        """Classify every file; compute the durable prefix. Read-only."""
        report = FsckReport(directory=self.directory)
        if not os.path.isdir(self.directory):
            raise StorageError(
                f"{self.directory!r} is not a checkpoint directory"
            )
        entries: List[FileReport] = []
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if os.path.isdir(path):
                continue  # quarantine/ and other directories
            entries.append(self._classify(name, path))
        report.files = entries
        lineage_meta = self._check_manifest(report)
        self._resolve_sequence(report, lineage_meta)
        report.consistent = report.manifest_supported and not [
            entry
            for entry in entries
            if entry.status in (TORN, CORRUPT, ORPHAN_TMP, UNREACHABLE)
        ]
        if self.tracer.enabled:
            self.tracer.event(
                "fsck.scan",
                directory=self.directory,
                files=len(entries),
                durable_epochs=len(report.durable_epochs),
                consistent=report.consistent,
                recoverable=report.recoverable,
            )
        return report

    def _classify(self, name: str, path: str) -> FileReport:
        if name.endswith(".tmp"):
            return FileReport(
                name,
                ORPHAN_TMP,
                detail="temporary left by an interrupted write",
            )
        if name == "manifest.json":
            return FileReport(name, MANIFEST)
        if name.startswith("epoch-") and name.endswith(".ckpt"):
            try:
                index = int(name[len("epoch-") : -len(".ckpt")])
            except ValueError:
                return FileReport(
                    name, FOREIGN, detail="epoch-like name, unparsable index"
                )
            status, kind, detail = _classify_epoch_file(path)
            return FileReport(name, status, index=index, kind=kind, detail=detail)
        return FileReport(name, FOREIGN, detail="not a store file")

    def _resolve_sequence(
        self, report: FsckReport, lineage_meta: Dict[int, dict]
    ) -> None:
        """Durable epochs: intact epochs whose whole base chain is intact.

        Lineage-graph semantics: walk each epoch's parent pointers down
        to its nearest full checkpoint; a damaged or missing ancestor
        reclassifies the (file-intact) epoch ``unreachable``, because no
        recovery line can materialize it. Epochs without a manifest
        lineage entry get the implied linear lineage (parent = index−1,
        branch ``main``), which reproduces the historical
        contiguous-prefix behaviour on pre-lineage stores. An intact
        epoch on a non-main branch whose chain is broken is an *orphan
        branch* — reported as such, and quarantined (never deleted) by
        :meth:`repair`.
        """
        epoch_entries = sorted(
            (entry for entry in report.files if entry.index is not None),
            key=lambda entry: entry.index,
        )
        by_index = {entry.index: entry for entry in epoch_entries}

        def meta_of(index: int) -> dict:
            meta = lineage_meta.get(index)
            return meta if meta is not None else _implied_lineage(index)

        chain_ok: Dict[int, bool] = {}

        def walk(index: int) -> bool:
            trail: List[int] = []
            visited = set()
            current = index
            while True:
                if current in chain_ok:
                    verdict = chain_ok[current]
                    break
                if current in visited:
                    verdict = False  # a lineage cycle materializes nothing
                    break
                visited.add(current)
                entry = by_index.get(current)
                if entry is None or entry.status != INTACT:
                    verdict = False
                    break
                trail.append(current)
                if entry.kind == FULL:
                    verdict = True  # a full is its own base
                    break
                parent = meta_of(current).get("parent")
                if parent is None:
                    # A parentless delta: nothing above it to lose. It is
                    # durable (its bytes are sound) but contributes no
                    # recovery base — ``recoverable`` stays with fulls.
                    verdict = True
                    break
                current = parent
            for i in trail:
                chain_ok[i] = verdict
            chain_ok[index] = verdict
            return verdict

        durable: List[int] = []
        orphans: Dict[str, bool] = {}
        branches: Dict[str, int] = {}
        named: Dict[str, int] = {}
        for entry in epoch_entries:
            meta = meta_of(entry.index)
            branch = meta.get("branch") or MAIN_BRANCH
            if entry.status != INTACT:
                continue
            if walk(entry.index):
                durable.append(entry.index)
                branches[branch] = entry.index
                orphans.setdefault(branch, False)
                name = meta.get("name")
                if name:
                    named[name] = entry.index
            else:
                entry.status = UNREACHABLE
                if branch != MAIN_BRANCH:
                    entry.detail = (
                        "intact but its base chain is broken "
                        f"(orphan branch {branch!r})"
                    )
                    orphans.setdefault(branch, True)
                else:
                    entry.detail = "intact but its base chain is broken"
        report.durable_epochs = durable
        report.branches = branches
        report.named = named
        report.orphan_branches = sorted(
            branch for branch, orphaned in orphans.items() if orphaned
        )
        report.recoverable = any(
            by_index[index].kind == FULL for index in durable
        )

    def _check_manifest(self, report: FsckReport) -> Dict[int, dict]:
        """Validate the manifest; return its epoch lineage map (if any)."""
        path = os.path.join(self.directory, "manifest.json")
        lineage_meta: Dict[int, dict] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            manifest = None
        if manifest is None or not isinstance(manifest.get("classes"), dict):
            report.manifest_ok = False
            report.actions.append("manifest missing or malformed")
            return lineage_meta
        version = manifest.get("format_version", 1)
        report.format_version = version
        if version not in _SUPPORTED_MANIFESTS:
            # A newer (or garbage) manifest format: classify, do not guess.
            report.manifest_ok = False
            report.manifest_supported = False
            report.actions.append(
                f"unsupported manifest format_version {version!r} (this "
                f"tool understands {sorted(_SUPPORTED_MANIFESTS)}); "
                "refusing to interpret the epoch lineage"
            )
            for entry in report.files:
                if entry.name == "manifest.json":
                    entry.detail = (
                        f"unsupported format_version {version!r}"
                    )
            return lineage_meta
        report.manifest_ok = True
        raw = manifest.get("lineage")
        if isinstance(raw, dict):
            for key, value in raw.items():
                try:
                    index = int(key)
                except (TypeError, ValueError):
                    continue
                if isinstance(value, dict):
                    lineage_meta[index] = value
        return lineage_meta

    # -- repairing ---------------------------------------------------------

    def repair(self) -> FsckReport:
        """Quarantine everything outside the durable prefix; re-verify.

        Truncates the epoch *sequence*, never a file's bytes: damaged and
        stranded epochs are moved (with their evidence intact) into the
        quarantine directory, so forensics stay possible while the store
        itself becomes consistent. Returns the post-repair report.
        """
        report = self.scan()
        if not report.manifest_supported:
            # Lineage semantics come from the manifest; with a manifest
            # this tool cannot read, any quarantine decision would be a
            # guess. Leave every byte where it is.
            report.actions.append(
                "repair refused: manifest format unsupported, no file moved"
            )
            report.repaired = True
            return report
        moved = 0
        for entry in report.files:
            if entry.status in (TORN, CORRUPT, ORPHAN_TMP, UNREACHABLE):
                if self._quarantine(entry.name):
                    entry.action = "quarantined"
                    moved += 1
        if moved:
            report.actions.append(f"quarantined {moved} file(s)")
        verify = self.scan()
        report.durable_epochs = verify.durable_epochs
        report.recoverable = verify.recoverable
        report.consistent = verify.consistent
        report.manifest_ok = verify.manifest_ok
        report.manifest_supported = verify.manifest_supported
        report.format_version = verify.format_version
        report.branches = verify.branches
        report.named = verify.named
        report.orphan_branches = verify.orphan_branches
        report.repaired = True
        if self.tracer.enabled:
            self.tracer.event(
                "fsck.repair",
                directory=self.directory,
                quarantined=moved,
                durable_epochs=len(report.durable_epochs),
                consistent=report.consistent,
                recoverable=report.recoverable,
            )
        return report

    def _quarantine(self, name: str) -> bool:
        source = os.path.join(self.directory, name)
        target = os.path.join(self.quarantine_dir, name)
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            if os.path.exists(target):
                suffix = 0
                while os.path.exists(f"{target}.{suffix}"):
                    suffix += 1
                target = f"{target}.{suffix}"
            os.replace(source, target)
        except OSError:
            return False
        return True
