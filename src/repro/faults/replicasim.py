"""Replica-loss and replica-corruption scenarios for the crash matrix.

:class:`ReplicaSim` is the :class:`~repro.faults.crashsim.CrashSim`
analog for the replicated store: the same deterministic workload commits
through a :class:`~repro.core.replica.ReplicatedStore` over N file-backed
replicas, with faults armed *per replica* — a volume dies mid-run, a
record silently rots on one copy, a write tears after it was acked — or
on the fan-out stream itself (process crash mid-commit, transient
errors, stalls, via the generic :class:`~repro.faults.inject.FaultyStore`
kinds on replica 0).

After the run the simulator simulates a restart: fresh
:class:`~repro.core.storage.FileStore` handles over the replica
directories (a dead volume comes back readable — its *content* is still
whatever it held at death), one scrub pass, then recovery through the
quorum view. It demands:

1. whenever a write quorum survived, the recovered table is
   **byte-identical** to the fault-free reference at the same durable
   epoch count — and even after a quorum *loss*, the surviving prefix
   recovers byte-identically;
2. the scrub pass heals every replica (no unrepairable epochs, no
   repair errors) and quarantines — never deletes — divergent records;
3. after scrub, every replica directory passes ``fsck`` and holds
   byte-identical epoch files;
4. a fenced replica never blocks commits while the quorum holds.
"""

from __future__ import annotations

import filecmp
import os
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.errors import StorageError
from repro.core.ids import DEFAULT_ALLOCATOR
from repro.core.replica import ReplicatedStore
from repro.core.retry import RetryPolicy
from repro.core.storage import FileStore
from repro.faults.inject import FaultyStore, InjectedCrash, ReplicaFaultStore
from repro.faults.plan import (
    KILL_REPLICA,
    REPLICA_KINDS,
    SESSION_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.fsck.manager import RecoveryManager
from repro.obs.tracer import NULL_TRACER
from repro.runtime.sink import StoreSink

#: the replicated-store path, handled by :class:`ReplicaSim`
REPLICA_PATH = "replica"


@dataclass
class ReplicaScenario:
    """One replicated-store fault run.

    ``plan`` may mix replica-scoped kinds (each spec's ``replica``
    ordinal picks its target) with generic append-stream kinds, which
    are armed on replica 0 through a
    :class:`~repro.faults.inject.FaultyStore`.
    """

    name: str
    plan: FaultPlan
    replicas: int = 3
    quorum: Optional[int] = None
    retry: Optional[RetryPolicy] = None
    path: str = REPLICA_PATH

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise StorageError("a replica scenario needs >= 1 replica")
        for spec in self.plan:
            if spec.kind in SESSION_KINDS:
                raise StorageError(
                    f"fault kind {spec.kind!r} has no session here"
                )
            if spec.kind in REPLICA_KINDS and not (
                0 <= spec.replica < self.replicas
            ):
                raise StorageError(
                    f"fault targets replica {spec.replica} but the "
                    f"scenario has {self.replicas}"
                )

    @property
    def killed(self) -> int:
        """Distinct replicas a kill-replica spec takes down."""
        return len(
            {s.replica for s in self.plan if s.kind == KILL_REPLICA}
        )

    @property
    def quorum_size(self) -> int:
        return self.quorum or (self.replicas // 2 + 1)

    @property
    def quorum_survives(self) -> bool:
        """Whether enough replicas outlive the plan to keep committing."""
        return (self.replicas - self.killed) >= self.quorum_size


class ReplicaSim:
    """Run the workload over replicated storage under per-replica faults.

    Shares :class:`~repro.faults.crashsim.CrashSim`'s reference
    discipline: one fault-free single-store run fingerprints the
    recovered table per durable-epoch count, and every scenario's
    post-scrub quorum recovery must match at its own durable count.
    """

    def __init__(
        self,
        root_dir: str,
        workload=None,
        retry: Optional[RetryPolicy] = None,
        tracer=None,
    ) -> None:
        from repro.faults.crashsim import CrashSim, default_workload

        self.root_dir = root_dir
        self.workload = workload or default_workload()
        self.retry = retry or RetryPolicy(
            max_attempts=4, base_delay=0.0005, max_delay=0.002
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        os.makedirs(root_dir, exist_ok=True)
        # reuse CrashSim's reference machinery (same workload, same
        # id-pinning) rather than growing a second copy of it
        self._refsim = CrashSim(
            os.path.join(root_dir, "single-reference"),
            workload=self.workload,
            retry=self.retry,
            tracer=self.tracer,
        )
        self._id_base = self._refsim._id_base
        self._id_high = self._id_base

    def reference(self) -> Dict[int, bytes]:
        return self._refsim.reference()

    def _pin_ids(self) -> None:
        self._id_high = max(self._id_high, self._refsim._id_high)
        DEFAULT_ALLOCATOR.reset(self._id_base)

    def _release_ids(self) -> None:
        self._id_high = max(self._id_high, DEFAULT_ALLOCATOR.last_allocated)
        self._refsim._id_high = max(self._refsim._id_high, self._id_high)
        DEFAULT_ALLOCATOR.advance_past(self._id_high)

    # -- scenario runs -----------------------------------------------------

    # ReplicaSim also accepts plain crashsim Scenarios routed to the
    # "replica" path (generic crash/transient kinds on the fan-out
    # stream); those carry no replica-count field, so default to 3.

    @staticmethod
    def _replica_count(scenario) -> int:
        return getattr(scenario, "replicas", 3)

    def _replica_dirs(self, scenario, base: str) -> List[str]:
        return [
            os.path.join(base, f"replica-{i}")
            for i in range(self._replica_count(scenario))
        ]

    def _build_store(self, scenario, dirs: Sequence[str]) -> ReplicatedStore:
        replica_plan = FaultPlan(
            [s for s in scenario.plan if s.kind in REPLICA_KINDS]
        )
        stream_plan = FaultPlan(
            [s for s in scenario.plan if s.kind not in REPLICA_KINDS]
        )
        children = []
        for ordinal, directory in enumerate(dirs):
            child = FileStore(directory)
            if ordinal == 0 and len(stream_plan):
                child = FaultyStore(child, stream_plan)
            children.append(ReplicaFaultStore(child, replica_plan, ordinal))
        return ReplicatedStore(
            children,
            quorum=getattr(scenario, "quorum", None),
            retry=scenario.retry or self.retry,
            # tight breaker so a six-epoch workload exercises
            # fence + probe, not just suspicion
            suspect_after=1,
            fence_after=2,
            probe_after=2,
            probe_jitter=1,
        )

    def run_scenario(self, scenario: ReplicaScenario):
        with self.tracer.span(
            "crashsim.replica", name=scenario.name
        ) as span:
            result = self._run_scenario(scenario)
            span.add(
                crashed=result.crashed,
                durable_epochs=result.durable_epochs,
                ok=result.ok,
            )
        return result

    def _run_scenario(self, scenario: ReplicaScenario):
        from repro.faults.crashsim import ScenarioResult, table_fingerprint

        base = os.path.join(self.root_dir, f"run-{scenario.name}")
        shutil.rmtree(base, ignore_errors=True)
        os.makedirs(base, exist_ok=True)
        reference = self.reference()
        dirs = self._replica_dirs(scenario, base)
        crashed = False
        detail = ""
        store_cell: List[ReplicatedStore] = []

        def make_sink():
            store_cell.append(self._build_store(scenario, dirs))
            return StoreSink(store_cell[0])

        self._pin_ids()
        try:
            self.workload.run(make_sink)
        except (InjectedCrash, StorageError, OSError) as exc:
            crashed = True
            detail = f"{type(exc).__name__}: {exc}"
        finally:
            self._release_ids()

        injected: List[str] = []
        if store_cell:
            for state in store_cell[0].replica_status():
                if state["state"] != "healthy" or state["behind"]:
                    injected.append(
                        f"{state['name']}: {state['state']}"
                        + (" behind" if state["behind"] else "")
                    )
            for rep_state in store_cell[0]._states:
                wrapper = rep_state.store
                injected.extend(getattr(wrapper, "injected", []))
                inner = getattr(wrapper, "backing", None)
                injected.extend(getattr(inner, "injected", []))

        # -- simulated restart: plain stores over the same directories --
        # (a killed volume comes back *readable*; its content is whatever
        # it held at death — behind and possibly damaged)
        restarted = ReplicatedStore(
            [FileStore(d) for d in dirs],
            quorum=getattr(scenario, "quorum", None),
        )
        scrub = restarted.scrub()
        healed = scrub.healed

        fsck_consistent = True
        for directory in dirs:
            RecoveryManager(directory, tracer=self.tracer).repair()
            if not RecoveryManager(
                directory, tracer=self.tracer
            ).scan().consistent:
                fsck_consistent = False
                detail += f"; fsck inconsistent: {os.path.basename(directory)}"

        # after a heal, every replica must hold byte-identical epoch files
        if healed and not self._replicas_identical(dirs):
            healed = False
            detail += "; replicas differ after scrub"

        epochs = restarted.epochs()
        durable = len(epochs)
        if durable == 0:
            recovered = b""
        else:
            self._pin_ids()
            try:
                recovered = table_fingerprint(restarted.recover())
            finally:
                self._release_ids()
        expected = reference.get(durable)
        identical = expected is not None and recovered == expected
        if expected is None:
            detail += f"; no reference for {durable} durable epochs"
        # A replica loss the quorum absorbs must never surface as a
        # failed commit (a process-crash fault is a different story:
        # the process dying is exactly what it injects).
        replicas = self._replica_count(scenario)
        quorum = getattr(scenario, "quorum", None) or (replicas // 2 + 1)
        killed = len(
            {s.replica for s in scenario.plan if s.kind == KILL_REPLICA}
        )
        quorum_survives = (replicas - killed) >= quorum
        expect_commit_ok = quorum_survives and not any(
            s.crashes for s in scenario.plan
        )
        if expect_commit_ok and crashed:
            identical = False
            detail += "; commit stalled although the write quorum survived"
        if scrub.repaired:
            injected.append(
                f"scrub repaired {len(scrub.repaired)} record(s), "
                f"quarantined {len(scrub.quarantined)}"
            )
        return ScenarioResult(
            name=scenario.name,
            path=scenario.path,
            crashed=crashed,
            durable_epochs=durable,
            recovered_identical=identical,
            fsck_consistent=fsck_consistent and healed,
            injected=injected,
            detail=detail,
        )

    @staticmethod
    def _replicas_identical(dirs: Sequence[str]) -> bool:
        names = sorted(
            name
            for name in os.listdir(dirs[0])
            if name.startswith("epoch-") and name.endswith(".ckpt")
        )
        for other in dirs[1:]:
            other_names = sorted(
                name
                for name in os.listdir(other)
                if name.startswith("epoch-") and name.endswith(".ckpt")
            )
            if other_names != names:
                return False
            match, mismatch, errors = filecmp.cmpfiles(
                dirs[0], other, names, shallow=False
            )
            if mismatch or errors:
                return False
        return True

    def run_matrix(self, scenarios: Sequence[ReplicaScenario]):
        return [self.run_scenario(scenario) for scenario in scenarios]


def build_replica_matrix(epochs: int = 6) -> List[ReplicaScenario]:
    """The replica acceptance scenarios.

    Every replica dies at every interesting op; silent corruption and
    torn acked writes on each replica; combined loss+rot; quorum loss;
    all-ack quorums; a wider 5-replica group. Every scenario where the
    write quorum survives must recover byte-identically.
    """
    from repro.faults.plan import CORRUPT_REPLICA, TORN_REPLICA, TRANSIENT

    scenarios: List[ReplicaScenario] = []

    # A pulled volume: each replica, early / middle / last op.
    for replica in range(3):
        for op in (0, epochs // 2, epochs - 1):
            scenarios.append(
                ReplicaScenario(
                    name=f"replica-kill-r{replica}-op{op}",
                    plan=FaultPlan.single(
                        FaultSpec(op, KILL_REPLICA, replica=replica)
                    ),
                )
            )

    # Silent bit rot through the child store's own framing: only the
    # end-to-end sha256 can see it. Header-ish and payload offsets.
    for replica in range(3):
        for offset in (5, 100):
            scenarios.append(
                ReplicaScenario(
                    name=f"replica-corrupt-r{replica}-b{offset}",
                    plan=FaultPlan.single(
                        FaultSpec(
                            epochs // 2,
                            CORRUPT_REPLICA,
                            param=offset,
                            replica=replica,
                        )
                    ),
                )
            )

    # A torn write the replica acked before the power failed.
    for replica in range(3):
        scenarios.append(
            ReplicaScenario(
                name=f"replica-torn-r{replica}",
                plan=FaultPlan.single(
                    FaultSpec(
                        epochs - 1, TORN_REPLICA, param=10, replica=replica
                    )
                ),
            )
        )

    # Loss and rot together, quorum still intact.
    scenarios.append(
        ReplicaScenario(
            name="replica-kill-r0-corrupt-r2",
            plan=FaultPlan(
                [
                    FaultSpec(1, KILL_REPLICA, replica=0),
                    FaultSpec(3, CORRUPT_REPLICA, param=40, replica=2),
                ]
            ),
        )
    )
    scenarios.append(
        ReplicaScenario(
            name="replica-kill-r1-torn-r2",
            plan=FaultPlan(
                [
                    FaultSpec(2, KILL_REPLICA, replica=1),
                    FaultSpec(4, TORN_REPLICA, param=8, replica=2),
                ]
            ),
        )
    )

    # Quorum loss: two of three volumes die; commits must stop, and the
    # surviving prefix must still recover byte-identically.
    scenarios.append(
        ReplicaScenario(
            name="replica-quorum-loss",
            plan=FaultPlan(
                [
                    FaultSpec(1, KILL_REPLICA, replica=1),
                    FaultSpec(3, KILL_REPLICA, replica=2),
                ]
            ),
        )
    )

    # quorum=N (all must ack): a single death fails commits...
    scenarios.append(
        ReplicaScenario(
            name="replica-allack-kill",
            plan=FaultPlan.single(FaultSpec(2, KILL_REPLICA, replica=1)),
            quorum=3,
        )
    )
    # ...while transient blips on the fan-out stream are absorbed.
    scenarios.append(
        ReplicaScenario(
            name="replica-allack-transient",
            plan=FaultPlan.single(FaultSpec(1, TRANSIENT, attempts=2)),
            quorum=3,
        )
    )

    # A wider group: five replicas, majority quorum, two deaths survive.
    scenarios.append(
        ReplicaScenario(
            name="replica-5wide-kill2",
            plan=FaultPlan(
                [
                    FaultSpec(1, KILL_REPLICA, replica=0),
                    FaultSpec(2, KILL_REPLICA, replica=4),
                ]
            ),
            replicas=5,
        )
    )
    scenarios.append(
        ReplicaScenario(
            name="replica-5wide-rot3",
            plan=FaultPlan(
                [
                    FaultSpec(1, CORRUPT_REPLICA, param=12, replica=1),
                    FaultSpec(3, TORN_REPLICA, param=6, replica=2),
                    FaultSpec(4, CORRUPT_REPLICA, param=80, replica=3),
                ]
            ),
            replicas=5,
        )
    )

    return scenarios
