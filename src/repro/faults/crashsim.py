"""The crash simulator: prove recovery, don't assume it.

:class:`CrashSim` runs one deterministic session workload twice. The
*reference* run commits into a clean :class:`~repro.core.storage.FileStore`
and records, for every epoch-count prefix, a byte fingerprint of the
recovered object table. Each *scenario* then replays the same workload
(same structures, same mutation schedule, same object identifiers — the
id allocator is pinned) against a fault-injected store, "crashes"
wherever the plan says, repairs the directory with
:class:`~repro.fsck.manager.RecoveryManager`, recovers from a fresh
store, and demands:

1. the recovered object table is **byte-identical** to the reference
   fingerprint at the same durable epoch count (the recovery invariant);
2. a post-repair ``fsck`` scan reports the directory consistent;
3. with a retry policy, transient faults lose **zero** epochs.

:func:`build_matrix` generates the seeded scenario matrix (crash points,
torn-write offsets through the whole header and into the payload, bit
flips, transient bursts, stalls) across the three write paths: plain
store, session sink, and background writer.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.checkpointable import Checkpointable
from repro.core.errors import StorageError
from repro.core.ids import DEFAULT_ALLOCATOR
from repro.core.restore import ObjectTable
from repro.core.retry import RetryPolicy
from repro.core.storage import BackgroundWriter, FileStore
from repro.core.streams import DataOutputStream
from repro.faults.inject import FaultySink, FaultyStore, InjectedCrash
from repro.faults.plan import (
    BITFLIP,
    CRASH_AFTER,
    CRASH_BEFORE,
    CRASH_TMP,
    STALL,
    TORN,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.fsck.manager import RecoveryManager
from repro.obs.tracer import NULL_TRACER
from repro.runtime.session import CheckpointSession
from repro.runtime.sink import StoreSink

#: the three commit paths the matrix must cover
PATHS = ("store", "sink", "background")

#: size of the epoch frame header, for torn-write offset sweeps
HEADER_SIZE = 14


def table_fingerprint(table: ObjectTable) -> bytes:
    """A canonical byte image of a recovered object table.

    Objects are re-recorded in identifier order — two tables with the
    same objects, ids, classes, and field values produce identical
    bytes, so "byte-identical recovery" is a plain ``==``.
    """
    out = DataOutputStream()
    for object_id in sorted(table.ids()):
        obj = table[object_id]
        out.write_int32(object_id)
        out.write_int32(obj._ckpt_serial)
        obj.record(out)
    return out.getvalue()


@dataclass
class Workload:
    """A deterministic session workload: build roots, mutate, commit.

    ``build`` returns fresh root objects; ``mutate(roots, step)`` applies
    the step-th deterministic modification. The workload must not depend
    on wall clock, randomness, or prior runs — determinism is what makes
    byte-level comparison across runs meaningful.
    """

    build: Callable[[], Sequence[Checkpointable]]
    mutate: Callable[[Sequence[Checkpointable], int], None]
    #: total epochs committed (one base + epochs-1 deltas)
    epochs: int = 6

    def run(self, make_sink: Callable[[], object]) -> CheckpointSession:
        roots = self.build()
        session = CheckpointSession(roots=roots, sink=make_sink())
        session.base()
        for step in range(1, self.epochs):
            self.mutate(roots, step)
            session.commit()
        session.flush()
        return session


def default_workload(epochs: int = 6) -> Workload:
    """Three compound structures, two lists of three elements each."""
    from repro.synthetic.structures import build_structures, element_at

    def build():
        return build_structures(3, 2, 3, 1)

    def mutate(roots, step):
        compound = roots[step % len(roots)]
        element = element_at(compound, step % 2, step % 3)
        element.v0 = step * 1000 + 7

    return Workload(build=build, mutate=mutate, epochs=epochs)


@dataclass
class Scenario:
    """One fault-injection run: a plan on one write path."""

    name: str
    plan: FaultPlan
    path: str = "store"
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.path not in PATHS:
            raise StorageError(f"unknown scenario path {self.path!r}")


@dataclass
class ScenarioResult:
    """What one scenario did and whether recovery held."""

    name: str
    path: str
    crashed: bool
    durable_epochs: int
    #: recovered table byte-identical to the reference at that epoch count
    recovered_identical: bool
    #: fsck reports the repaired directory consistent
    fsck_consistent: bool
    #: faults the store actually injected
    injected: List[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.recovered_identical and self.fsck_consistent

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "crashed": self.crashed,
            "durable_epochs": self.durable_epochs,
            "recovered_identical": self.recovered_identical,
            "fsck_consistent": self.fsck_consistent,
            "injected": list(self.injected),
            "detail": self.detail,
            "ok": self.ok,
        }


class CrashSim:
    """Run a workload under injected faults and verify recovery.

    Parameters
    ----------
    root_dir:
        Working directory; each run gets its own subdirectory.
    workload:
        The deterministic workload (default: :func:`default_workload`).
    retry:
        Default retry policy for scenarios that don't bring their own.
    """

    def __init__(
        self,
        root_dir: str,
        workload: Optional[Workload] = None,
        retry: Optional[RetryPolicy] = None,
        tracer=None,
    ) -> None:
        self.root_dir = root_dir
        self.workload = workload or default_workload()
        self.retry = retry or RetryPolicy(
            max_attempts=4, base_delay=0.0005, max_delay=0.002
        )
        #: observability hook; the no-op singleton unless one is supplied
        self.tracer = tracer if tracer is not None else NULL_TRACER
        os.makedirs(root_dir, exist_ok=True)
        #: all runs allocate ids from this base, so runs are comparable
        self._id_base = DEFAULT_ALLOCATOR.last_allocated + 1
        self._id_high = self._id_base
        #: fingerprint of the recovered table per durable-epoch count
        self._reference: Optional[Dict[int, bytes]] = None

    # -- id pinning --------------------------------------------------------

    def _pin_ids(self) -> None:
        DEFAULT_ALLOCATOR.reset(self._id_base)

    def _release_ids(self) -> None:
        self._id_high = max(self._id_high, DEFAULT_ALLOCATOR.last_allocated)
        DEFAULT_ALLOCATOR.advance_past(self._id_high)

    # -- reference run -----------------------------------------------------

    def reference(self) -> Dict[int, bytes]:
        """Fingerprints of the fault-free run, per durable-epoch count.

        Key ``d`` maps to the fingerprint of the table recovered from
        the first ``d`` epochs; key ``0`` maps to ``b""`` (nothing
        durable, nothing recoverable).
        """
        if self._reference is not None:
            return self._reference
        directory = os.path.join(self.root_dir, "reference")
        shutil.rmtree(directory, ignore_errors=True)
        self._pin_ids()
        try:
            self.workload.run(lambda: StoreSink(FileStore(directory)))
        finally:
            self._release_ids()
        store = FileStore(directory)
        epochs = store.epochs()
        fingerprints: Dict[int, bytes] = {0: b""}
        for durable in range(1, len(epochs) + 1):
            prefix = FileStore(
                os.path.join(self.root_dir, f"reference-prefix-{durable}")
            )
            for epoch in epochs[:durable]:
                prefix.append(epoch.kind, epoch.data)
            fingerprints[durable] = table_fingerprint(prefix.recover())
        self._reference = fingerprints
        return fingerprints

    # -- scenario runs -----------------------------------------------------

    def _make_sink(self, scenario: Scenario, directory: str):
        retry = scenario.retry or self.retry
        if scenario.path == "store":
            return StoreSink(
                FaultyStore(FileStore(directory), scenario.plan), retry=retry
            )
        if scenario.path == "sink":
            return FaultySink(FileStore(directory), scenario.plan, retry=retry)
        writer = BackgroundWriter(
            FaultyStore(FileStore(directory), scenario.plan), retry=retry
        )
        return StoreSink(writer)

    def run_scenario(self, scenario: Scenario) -> ScenarioResult:
        with self.tracer.span(
            "crashsim.scenario", name=scenario.name, path=scenario.path
        ) as span:
            result = self._run_scenario(scenario)
            span.add(
                crashed=result.crashed,
                durable_epochs=result.durable_epochs,
                ok=result.ok,
            )
        return result

    def _run_scenario(self, scenario: Scenario) -> ScenarioResult:
        directory = os.path.join(self.root_dir, f"run-{scenario.name}")
        shutil.rmtree(directory, ignore_errors=True)
        reference = self.reference()
        self._pin_ids()
        crashed = False
        detail = ""
        sink_cell: List[object] = []

        def make_sink():
            sink_cell.append(self._make_sink(scenario, directory))
            return sink_cell[0]

        try:
            self.workload.run(make_sink)
        except (InjectedCrash, StorageError, OSError) as exc:
            crashed = True
            detail = f"{type(exc).__name__}: {exc}"
        finally:
            self._release_ids()
            # A dead process cannot close anything, but the *simulator*
            # must not leak writer threads across hundreds of scenarios.
            sink = sink_cell[0] if sink_cell else None
            store = getattr(sink, "store", None)
            if isinstance(store, BackgroundWriter):
                try:
                    store.close(timeout=5.0)
                except (StorageError, OSError):
                    pass

        injected: List[str] = []
        if sink_cell:
            faulty = getattr(sink_cell[0], "store", None)
            if isinstance(faulty, BackgroundWriter):
                faulty = faulty.backing
            if isinstance(faulty, FaultyStore):
                injected = list(faulty.injected)

        # -- simulated restart: repair, then recover from a fresh store --
        RecoveryManager(directory, tracer=self.tracer).repair()
        verify = RecoveryManager(directory, tracer=self.tracer).scan()
        fresh = FileStore(directory)
        epochs = fresh.epochs()
        durable = len(epochs)
        if durable == 0:
            recovered = b""
        else:
            self._pin_ids()
            try:
                recovered = table_fingerprint(fresh.recover())
            finally:
                self._release_ids()
        expected = reference.get(durable)
        identical = expected is not None and recovered == expected
        if expected is None:
            detail += f"; no reference for {durable} durable epochs"
        return ScenarioResult(
            name=scenario.name,
            path=scenario.path,
            crashed=crashed,
            durable_epochs=durable,
            recovered_identical=identical,
            fsck_consistent=verify.consistent,
            injected=injected,
            detail=detail,
        )

    def run_matrix(self, scenarios: Sequence[Scenario]) -> List[ScenarioResult]:
        return [self.run_scenario(scenario) for scenario in scenarios]


def build_matrix(seed: int = 20260806, epochs: int = 6) -> List[Scenario]:
    """The acceptance matrix: ≥ 50 scenarios across all three paths.

    Systematic coverage first — every crash point on every path, torn
    writes at every byte through the header and into the payload, bit
    flips in header and payload, transient bursts against the retry
    policy, stalls — then seeded random plans on top.
    """
    scenarios: List[Scenario] = []

    # Crash points: before / after / mid-append (tmp) at early, middle
    # and last ops, on every path.
    for path in PATHS:
        for kind in (CRASH_BEFORE, CRASH_AFTER, CRASH_TMP):
            for op in (0, epochs // 2, epochs - 1):
                scenarios.append(
                    Scenario(
                        name=f"{path}-{kind}-op{op}",
                        plan=FaultPlan.single(FaultSpec(op, kind)),
                        path=path,
                    )
                )

    # Torn writes: every byte boundary through the header, then strides
    # into the payload (clamped to file size at injection time).
    for offset in list(range(HEADER_SIZE + 1)) + [20, 40, 80]:
        scenarios.append(
            Scenario(
                name=f"store-torn-b{offset}",
                plan=FaultPlan.single(
                    FaultSpec(epochs // 2, TORN, param=offset)
                ),
                path="store",
            )
        )

    # Silent bit flips: header bits and payload bits, two paths.
    for bit in (0, 37, 111, 400, 1600):
        scenarios.append(
            Scenario(
                name=f"sink-bitflip-b{bit}",
                plan=FaultPlan.single(FaultSpec(1, BITFLIP, param=bit)),
                path="sink",
            )
        )

    # Transient bursts the retry policy must absorb, on every path.
    for path in PATHS:
        for attempts in (1, 2, 3):
            scenarios.append(
                Scenario(
                    name=f"{path}-transient-x{attempts}",
                    plan=FaultPlan.single(
                        FaultSpec(1, TRANSIENT, attempts=attempts)
                    ),
                    path=path,
                )
            )

    # Stalls (slow disk) on the async path.
    for op in (0, 2):
        scenarios.append(
            Scenario(
                name=f"background-stall-op{op}",
                plan=FaultPlan.single(FaultSpec(op, STALL, param=0.002)),
                path="background",
            )
        )

    # Seeded random plans for everything the grid above missed.
    for extra in range(8):
        path = PATHS[extra % len(PATHS)]
        scenarios.append(
            Scenario(
                name=f"{path}-seeded-{extra}",
                plan=FaultPlan.generate(seed + extra, ops=epochs),
                path=path,
            )
        )
    return scenarios


def run(
    root_dir: str, seed: int = 20260806, epochs: int = 6
) -> dict:
    """Run the full matrix; returns a JSON-serializable summary."""
    sim = CrashSim(root_dir)
    scenarios = build_matrix(seed=seed, epochs=epochs)
    results = sim.run_matrix(scenarios)
    failures = [result for result in results if not result.ok]
    return {
        "seed": seed,
        "epochs": epochs,
        "total": len(results),
        "failures": len(failures),
        "scenarios": [result.to_dict() for result in results],
    }


def summarize(summary: dict) -> str:
    lines = [
        f"crashsim: {summary['total']} scenarios, "
        f"{summary['failures']} failure(s) (seed {summary['seed']})"
    ]
    for entry in summary["scenarios"]:
        if not entry["ok"]:
            lines.append(
                f"  FAIL {entry['name']} [{entry['path']}]: "
                f"durable={entry['durable_epochs']} "
                f"identical={entry['recovered_identical']} "
                f"fsck={entry['fsck_consistent']} {entry['detail']}"
            )
    return "\n".join(lines)


def save_json(summary: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
