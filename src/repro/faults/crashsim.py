"""The crash simulator: prove recovery, don't assume it.

:class:`CrashSim` runs one deterministic session workload twice. The
*reference* run commits into a clean :class:`~repro.core.storage.FileStore`
and records, for every epoch-count prefix, a byte fingerprint of the
recovered object table. Each *scenario* then replays the same workload
(same structures, same mutation schedule, same object identifiers — the
id allocator is pinned) against a fault-injected store, "crashes"
wherever the plan says, repairs the directory with
:class:`~repro.fsck.manager.RecoveryManager`, recovers from a fresh
store, and demands:

1. the recovered object table is **byte-identical** to the reference
   fingerprint at the same durable epoch count (the recovery invariant);
2. a post-repair ``fsck`` scan reports the directory consistent;
3. with a retry policy, transient faults lose **zero** epochs.

:func:`build_matrix` generates the seeded scenario matrix (crash points,
torn-write offsets through the whole header and into the payload, bit
flips, transient bursts, stalls) across the three write paths — plain
store, session sink, and background writer — plus the ``branch`` path:
:class:`BranchSim` runs the deterministic time-travel script (commit,
named pin, restore, fork) with faults armed on the store *and* on the
session's restore/fork calls themselves, and demands every surviving
epoch on every branch materialize byte-identically after repair.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.checkpointable import Checkpointable
from repro.core.errors import StorageError
from repro.core.ids import DEFAULT_ALLOCATOR
from repro.core.restore import ObjectTable
from repro.core.retry import RetryPolicy
from repro.core.storage import BackgroundWriter, FileStore
from repro.core.streams import DataOutputStream
from repro.faults.inject import FaultySink, FaultyStore, InjectedCrash
from repro.faults.plan import (
    BITFLIP,
    CRASH_AFTER,
    CRASH_BEFORE,
    CRASH_FORK,
    CRASH_RESTORE,
    CRASH_TMP,
    SESSION_KINDS,
    STALL,
    TORN,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.faults.replicasim import (
    REPLICA_PATH,
    ReplicaSim,
    build_replica_matrix,
)
from repro.fsck.manager import RecoveryManager
from repro.obs.tracer import NULL_TRACER
from repro.runtime.session import CheckpointSession
from repro.runtime.sink import StoreSink

#: the branching time-travel path, handled by :class:`BranchSim`
BRANCH_PATH = "branch"

#: the commit paths the matrix must cover (the ``replica`` path runs
#: the same workload through a 3-way :class:`ReplicatedStore`, handled
#: by :class:`~repro.faults.replicasim.ReplicaSim`)
PATHS = ("store", "sink", "background", BRANCH_PATH, REPLICA_PATH)

#: size of the epoch frame header, for torn-write offset sweeps
HEADER_SIZE = 14


def table_fingerprint(table: ObjectTable) -> bytes:
    """A canonical byte image of a recovered object table.

    Objects are re-recorded in identifier order — two tables with the
    same objects, ids, classes, and field values produce identical
    bytes, so "byte-identical recovery" is a plain ``==``.
    """
    out = DataOutputStream()
    for object_id in sorted(table.ids()):
        obj = table[object_id]
        out.write_int32(object_id)
        out.write_int32(obj._ckpt_serial)
        obj.record(out)
    return out.getvalue()


@dataclass
class Workload:
    """A deterministic session workload: build roots, mutate, commit.

    ``build`` returns fresh root objects; ``mutate(roots, step)`` applies
    the step-th deterministic modification. The workload must not depend
    on wall clock, randomness, or prior runs — determinism is what makes
    byte-level comparison across runs meaningful.
    """

    build: Callable[[], Sequence[Checkpointable]]
    mutate: Callable[[Sequence[Checkpointable], int], None]
    #: total epochs committed (one base + epochs-1 deltas)
    epochs: int = 6

    def run(self, make_sink: Callable[[], object]) -> CheckpointSession:
        roots = self.build()
        session = CheckpointSession(roots=roots, sink=make_sink())
        session.base()
        for step in range(1, self.epochs):
            self.mutate(roots, step)
            session.commit()
        session.flush()
        return session


def default_workload(epochs: int = 6) -> Workload:
    """Three compound structures, two lists of three elements each."""
    from repro.synthetic.structures import build_structures, element_at

    def build():
        return build_structures(3, 2, 3, 1)

    def mutate(roots, step):
        compound = roots[step % len(roots)]
        element = element_at(compound, step % 2, step % 3)
        element.v0 = step * 1000 + 7

    return Workload(build=build, mutate=mutate, epochs=epochs)


@dataclass
class Scenario:
    """One fault-injection run: a plan on one write path."""

    name: str
    plan: FaultPlan
    path: str = "store"
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.path not in PATHS:
            raise StorageError(f"unknown scenario path {self.path!r}")


@dataclass
class ScenarioResult:
    """What one scenario did and whether recovery held."""

    name: str
    path: str
    crashed: bool
    durable_epochs: int
    #: recovered table byte-identical to the reference at that epoch count
    recovered_identical: bool
    #: fsck reports the repaired directory consistent
    fsck_consistent: bool
    #: faults the store actually injected
    injected: List[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.recovered_identical and self.fsck_consistent

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "crashed": self.crashed,
            "durable_epochs": self.durable_epochs,
            "recovered_identical": self.recovered_identical,
            "fsck_consistent": self.fsck_consistent,
            "injected": list(self.injected),
            "detail": self.detail,
            "ok": self.ok,
        }


class CrashSim:
    """Run a workload under injected faults and verify recovery.

    Parameters
    ----------
    root_dir:
        Working directory; each run gets its own subdirectory.
    workload:
        The deterministic workload (default: :func:`default_workload`).
    retry:
        Default retry policy for scenarios that don't bring their own.
    """

    def __init__(
        self,
        root_dir: str,
        workload: Optional[Workload] = None,
        retry: Optional[RetryPolicy] = None,
        tracer=None,
    ) -> None:
        self.root_dir = root_dir
        self.workload = workload or default_workload()
        self.retry = retry or RetryPolicy(
            max_attempts=4, base_delay=0.0005, max_delay=0.002
        )
        #: observability hook; the no-op singleton unless one is supplied
        self.tracer = tracer if tracer is not None else NULL_TRACER
        os.makedirs(root_dir, exist_ok=True)
        #: all runs allocate ids from this base, so runs are comparable
        self._id_base = DEFAULT_ALLOCATOR.last_allocated + 1
        self._id_high = self._id_base
        #: fingerprint of the recovered table per durable-epoch count
        self._reference: Optional[Dict[int, bytes]] = None

    # -- id pinning --------------------------------------------------------

    def _pin_ids(self) -> None:
        DEFAULT_ALLOCATOR.reset(self._id_base)

    def _release_ids(self) -> None:
        self._id_high = max(self._id_high, DEFAULT_ALLOCATOR.last_allocated)
        DEFAULT_ALLOCATOR.advance_past(self._id_high)

    # -- reference run -----------------------------------------------------

    def reference(self) -> Dict[int, bytes]:
        """Fingerprints of the fault-free run, per durable-epoch count.

        Key ``d`` maps to the fingerprint of the table recovered from
        the first ``d`` epochs; key ``0`` maps to ``b""`` (nothing
        durable, nothing recoverable).
        """
        if self._reference is not None:
            return self._reference
        directory = os.path.join(self.root_dir, "reference")
        shutil.rmtree(directory, ignore_errors=True)
        self._pin_ids()
        try:
            self.workload.run(lambda: StoreSink(FileStore(directory)))
        finally:
            self._release_ids()
        store = FileStore(directory)
        epochs = store.epochs()
        fingerprints: Dict[int, bytes] = {0: b""}
        for durable in range(1, len(epochs) + 1):
            prefix = FileStore(
                os.path.join(self.root_dir, f"reference-prefix-{durable}")
            )
            for epoch in epochs[:durable]:
                prefix.append(epoch.kind, epoch.data)
            fingerprints[durable] = table_fingerprint(prefix.recover())
        self._reference = fingerprints
        return fingerprints

    # -- scenario runs -----------------------------------------------------

    def _make_sink(self, scenario: Scenario, directory: str):
        retry = scenario.retry or self.retry
        if scenario.path == "store":
            return StoreSink(
                FaultyStore(FileStore(directory), scenario.plan), retry=retry
            )
        if scenario.path == "sink":
            return FaultySink(FileStore(directory), scenario.plan, retry=retry)
        if scenario.path == "background":
            writer = BackgroundWriter(
                FaultyStore(FileStore(directory), scenario.plan), retry=retry
            )
            return StoreSink(writer)
        raise StorageError(
            f"scenario path {scenario.path!r} needs "
            f"{'ReplicaSim' if scenario.path == REPLICA_PATH else 'BranchSim'}"
            ", not CrashSim"
        )

    def run_scenario(self, scenario: Scenario) -> ScenarioResult:
        with self.tracer.span(
            "crashsim.scenario", name=scenario.name, path=scenario.path
        ) as span:
            result = self._run_scenario(scenario)
            span.add(
                crashed=result.crashed,
                durable_epochs=result.durable_epochs,
                ok=result.ok,
            )
        return result

    def _run_scenario(self, scenario: Scenario) -> ScenarioResult:
        directory = os.path.join(self.root_dir, f"run-{scenario.name}")
        shutil.rmtree(directory, ignore_errors=True)
        reference = self.reference()
        self._pin_ids()
        crashed = False
        detail = ""
        sink_cell: List[object] = []

        def make_sink():
            sink_cell.append(self._make_sink(scenario, directory))
            return sink_cell[0]

        try:
            self.workload.run(make_sink)
        except (InjectedCrash, StorageError, OSError) as exc:
            crashed = True
            detail = f"{type(exc).__name__}: {exc}"
        finally:
            self._release_ids()
            # A dead process cannot close anything, but the *simulator*
            # must not leak writer threads across hundreds of scenarios.
            sink = sink_cell[0] if sink_cell else None
            store = getattr(sink, "store", None)
            if isinstance(store, BackgroundWriter):
                try:
                    store.close(timeout=5.0)
                except (StorageError, OSError):
                    pass

        injected: List[str] = []
        if sink_cell:
            faulty = getattr(sink_cell[0], "store", None)
            if isinstance(faulty, BackgroundWriter):
                faulty = faulty.backing
            if isinstance(faulty, FaultyStore):
                injected = list(faulty.injected)

        # -- simulated restart: repair, then recover from a fresh store --
        RecoveryManager(directory, tracer=self.tracer).repair()
        verify = RecoveryManager(directory, tracer=self.tracer).scan()
        fresh = FileStore(directory)
        epochs = fresh.epochs()
        durable = len(epochs)
        if durable == 0:
            recovered = b""
        else:
            self._pin_ids()
            try:
                recovered = table_fingerprint(fresh.recover())
            finally:
                self._release_ids()
        expected = reference.get(durable)
        identical = expected is not None and recovered == expected
        if expected is None:
            detail += f"; no reference for {durable} durable epochs"
        return ScenarioResult(
            name=scenario.name,
            path=scenario.path,
            crashed=crashed,
            durable_epochs=durable,
            recovered_identical=identical,
            fsck_consistent=verify.consistent,
            injected=injected,
            detail=detail,
        )

    def run_matrix(self, scenarios: Sequence[Scenario]) -> List[ScenarioResult]:
        return [self.run_scenario(scenario) for scenario in scenarios]


# ---------------------------------------------------------------------------
# The branching time-travel simulator
# ---------------------------------------------------------------------------

#: epochs the branch script appends on a fault-free run
BRANCH_SCRIPT_EPOCHS = 7


@dataclass
class BranchScript:
    """The deterministic time-travel workload: commit, pin, restore, fork.

    Epoch map of the fault-free run (store append order)::

        0  full   main                base
        1  delta  main                mutate 1
        2  delta  main   name="pin"   mutate 2
        3  delta  main                mutate 3
           -- restore("pin"): auto-fork branch main@2, parent 2 --
        4  delta  main@2 parent=2     mutate 4
           -- fork(at=0, branch="alt"): parent 0 --
        5  delta  alt    parent=0     mutate 5
        6  delta  alt                 mutate 6
    """

    build: Callable[[], Sequence[Checkpointable]]
    mutate: Callable[[Sequence[Checkpointable], int], None]
    epochs: int = BRANCH_SCRIPT_EPOCHS

    def run(
        self,
        make_sink: Callable[[], object],
        session_factory: Callable[..., CheckpointSession] = CheckpointSession,
    ) -> CheckpointSession:
        session = session_factory(roots=self.build(), sink=make_sink())
        session.base()
        self.mutate(session.roots(), 1)
        session.commit()
        self.mutate(session.roots(), 2)
        session.checkpoint("pin")
        self.mutate(session.roots(), 3)
        session.commit()
        session.restore("pin")
        self.mutate(session.roots(), 4)
        session.commit()
        session.fork(at=0, branch="alt")
        self.mutate(session.roots(), 5)
        session.commit()
        self.mutate(session.roots(), 6)
        session.commit()
        session.flush()
        return session


def default_branch_script() -> BranchScript:
    """The default workload's structures, run through the branch script."""
    from repro.synthetic.structures import build_structures, element_at

    def build():
        return build_structures(3, 2, 3, 1)

    def mutate(roots, step):
        compound = roots[step % len(roots)]
        element = element_at(compound, step % 2, step % 3)
        element.v0 = step * 1000 + 7

    return BranchScript(build=build, mutate=mutate)


class _CrashPointSession(CheckpointSession):
    """A session that dies entering (param 0) or leaving (param 1) a
    restore/fork call — the process-death analog one layer above the
    store, where no append is in flight but session state is."""

    def __init__(self, *args, crash_specs=None, crash_log=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._crash_specs: Dict[str, FaultSpec] = crash_specs or {}
        self._crash_log: List[str] = (
            crash_log if crash_log is not None else []
        )

    def _maybe_crash(self, kind: str, point: int, where: str) -> None:
        spec = self._crash_specs.get(kind)
        if spec is not None and int(spec.param) == point:
            self._crash_log.append(where)
            raise InjectedCrash(f"injected {where}")

    def restore(self, target, roots=None):
        self._maybe_crash(
            CRASH_RESTORE, 0, f"crash entering restore({target!r})"
        )
        table = super().restore(target, roots=roots)
        self._maybe_crash(
            CRASH_RESTORE, 1, f"crash leaving restore({target!r})"
        )
        return table

    def fork(self, at=None, branch=None, roots=None):
        self._maybe_crash(CRASH_FORK, 0, f"crash entering fork({branch!r})")
        table = super().fork(at=at, branch=branch, roots=roots)
        self._maybe_crash(CRASH_FORK, 1, f"crash leaving fork({branch!r})")
        return table


class BranchSim:
    """Crash-inject the branching script; verify *every* epoch, per branch.

    The lineage analog of :class:`CrashSim`. The reference run executes
    :class:`BranchScript` fault-free and fingerprints every epoch index
    materialized through its base+delta chain. A scenario replays the
    script with faults armed on the store (append-level kinds) and/or on
    the session itself (``crash-restore`` / ``crash-fork``), repairs the
    directory, and demands that every epoch surviving repair — on both
    sides of every branch point — still materializes byte-identically.
    """

    def __init__(
        self,
        root_dir: str,
        script: Optional[BranchScript] = None,
        retry: Optional[RetryPolicy] = None,
        tracer=None,
    ) -> None:
        self.root_dir = root_dir
        self.script = script or default_branch_script()
        self.retry = retry or RetryPolicy(
            max_attempts=4, base_delay=0.0005, max_delay=0.002
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        os.makedirs(root_dir, exist_ok=True)
        self._id_base = DEFAULT_ALLOCATOR.last_allocated + 1
        self._id_high = self._id_base
        #: fingerprint of the materialized table per epoch index
        self._reference: Optional[Dict[int, bytes]] = None

    def _pin_ids(self) -> None:
        DEFAULT_ALLOCATOR.reset(self._id_base)

    def _release_ids(self) -> None:
        self._id_high = max(self._id_high, DEFAULT_ALLOCATOR.last_allocated)
        DEFAULT_ALLOCATOR.advance_past(self._id_high)

    def reference(self) -> Dict[int, bytes]:
        """Per-epoch-index fingerprints of the fault-free branching run."""
        if self._reference is not None:
            return self._reference
        directory = os.path.join(self.root_dir, "branch-reference")
        shutil.rmtree(directory, ignore_errors=True)
        self._pin_ids()
        try:
            self.script.run(lambda: StoreSink(FileStore(directory)))
        finally:
            self._release_ids()
        store = FileStore(directory)
        fingerprints: Dict[int, bytes] = {}
        for index in store.lineage().indices():
            self._pin_ids()
            try:
                fingerprints[index] = table_fingerprint(
                    store.materialize(index)
                )
            finally:
                self._release_ids()
        self._reference = fingerprints
        return fingerprints

    def run_scenario(self, scenario: Scenario) -> ScenarioResult:
        with self.tracer.span(
            "crashsim.branch", name=scenario.name
        ) as span:
            result = self._run_scenario(scenario)
            span.add(
                crashed=result.crashed,
                durable_epochs=result.durable_epochs,
                ok=result.ok,
            )
        return result

    def _run_scenario(self, scenario: Scenario) -> ScenarioResult:
        directory = os.path.join(self.root_dir, f"run-{scenario.name}")
        shutil.rmtree(directory, ignore_errors=True)
        reference = self.reference()
        store_plan = FaultPlan(
            [s for s in scenario.plan if s.kind not in SESSION_KINDS]
        )
        crash_specs = {
            s.kind: s for s in scenario.plan if s.kind in SESSION_KINDS
        }
        crash_log: List[str] = []
        retry = scenario.retry or self.retry
        crashed = False
        detail = ""
        faulty_cell: List[FaultyStore] = []

        def make_sink():
            faulty = FaultyStore(FileStore(directory), store_plan)
            faulty_cell.append(faulty)
            return StoreSink(faulty, retry=retry)

        def session_factory(**kwargs):
            return _CrashPointSession(
                crash_specs=crash_specs, crash_log=crash_log, **kwargs
            )

        self._pin_ids()
        try:
            self.script.run(make_sink, session_factory=session_factory)
        except (InjectedCrash, StorageError, OSError) as exc:
            crashed = True
            detail = f"{type(exc).__name__}: {exc}"
        finally:
            self._release_ids()

        injected = list(faulty_cell[0].injected) if faulty_cell else []
        injected.extend(crash_log)

        # -- simulated restart: repair, then materialize every survivor --
        RecoveryManager(directory, tracer=self.tracer).repair()
        verify = RecoveryManager(directory, tracer=self.tracer).scan()
        fresh = FileStore(directory)
        surviving = fresh.lineage().indices()
        identical = True
        for index in surviving:
            self._pin_ids()
            try:
                recovered = table_fingerprint(fresh.materialize(index))
            finally:
                self._release_ids()
            if reference.get(index) != recovered:
                identical = False
                detail += f"; epoch {index} diverged from reference"
        return ScenarioResult(
            name=scenario.name,
            path=scenario.path,
            crashed=crashed,
            durable_epochs=len(surviving),
            recovered_identical=identical,
            fsck_consistent=verify.consistent,
            injected=injected,
            detail=detail,
        )

    def run_matrix(self, scenarios: Sequence[Scenario]) -> List[ScenarioResult]:
        return [self.run_scenario(scenario) for scenario in scenarios]


def build_branch_matrix(
    epochs: int = BRANCH_SCRIPT_EPOCHS,
) -> List[Scenario]:
    """Scenarios for the branching script: every crash point plus the
    session-level restore/fork crash points."""
    scenarios: List[Scenario] = []
    for kind in (CRASH_BEFORE, CRASH_AFTER, CRASH_TMP):
        for op in range(epochs):
            scenarios.append(
                Scenario(
                    name=f"branch-{kind}-op{op}",
                    plan=FaultPlan.single(FaultSpec(op, kind)),
                    path=BRANCH_PATH,
                )
            )
    # Torn writes before the pin, on the auto-fork branch, at the tail.
    for op in (1, 4, 6):
        scenarios.append(
            Scenario(
                name=f"branch-torn-op{op}",
                plan=FaultPlan.single(FaultSpec(op, TORN, param=7)),
                path=BRANCH_PATH,
            )
        )
    # Silent corruption on a shared ancestor: children of both branches
    # must be stranded together, the other branch must survive.
    for bit in (3, 203):
        scenarios.append(
            Scenario(
                name=f"branch-bitflip-op1-b{bit}",
                plan=FaultPlan.single(FaultSpec(1, BITFLIP, param=bit)),
                path=BRANCH_PATH,
            )
        )
    for kind in (CRASH_RESTORE, CRASH_FORK):
        for point, label in ((0, "enter"), (1, "exit")):
            scenarios.append(
                Scenario(
                    name=f"branch-{kind}-{label}",
                    plan=FaultPlan.single(FaultSpec(0, kind, param=point)),
                    path=BRANCH_PATH,
                )
            )
    scenarios.append(
        Scenario(
            name="branch-transient-x2",
            plan=FaultPlan.single(FaultSpec(4, TRANSIENT, attempts=2)),
            path=BRANCH_PATH,
        )
    )
    return scenarios


def build_matrix(seed: int = 20260806, epochs: int = 6) -> List[Scenario]:
    """The acceptance matrix: ≥ 50 scenarios across all write paths.

    Systematic coverage first — every crash point on every path, torn
    writes at every byte through the header and into the payload, bit
    flips in header and payload, transient bursts against the retry
    policy, stalls — then seeded random plans on top.
    """
    scenarios: List[Scenario] = []

    # Crash points: before / after / mid-append (tmp) at early, middle
    # and last ops, on every path.
    for path in PATHS:
        for kind in (CRASH_BEFORE, CRASH_AFTER, CRASH_TMP):
            for op in (0, epochs // 2, epochs - 1):
                scenarios.append(
                    Scenario(
                        name=f"{path}-{kind}-op{op}",
                        plan=FaultPlan.single(FaultSpec(op, kind)),
                        path=path,
                    )
                )

    # Torn writes: every byte boundary through the header, then strides
    # into the payload (clamped to file size at injection time).
    for offset in list(range(HEADER_SIZE + 1)) + [20, 40, 80]:
        scenarios.append(
            Scenario(
                name=f"store-torn-b{offset}",
                plan=FaultPlan.single(
                    FaultSpec(epochs // 2, TORN, param=offset)
                ),
                path="store",
            )
        )

    # Silent bit flips: header bits and payload bits, two paths.
    for bit in (0, 37, 111, 400, 1600):
        scenarios.append(
            Scenario(
                name=f"sink-bitflip-b{bit}",
                plan=FaultPlan.single(FaultSpec(1, BITFLIP, param=bit)),
                path="sink",
            )
        )

    # Transient bursts the retry policy must absorb, on every path.
    for path in PATHS:
        for attempts in (1, 2, 3):
            scenarios.append(
                Scenario(
                    name=f"{path}-transient-x{attempts}",
                    plan=FaultPlan.single(
                        FaultSpec(1, TRANSIENT, attempts=attempts)
                    ),
                    path=path,
                )
            )

    # Stalls (slow disk) on the async path.
    for op in (0, 2):
        scenarios.append(
            Scenario(
                name=f"background-stall-op{op}",
                plan=FaultPlan.single(FaultSpec(op, STALL, param=0.002)),
                path="background",
            )
        )

    # Seeded random plans for everything the grid above missed.
    store_paths = ("store", "sink", "background")
    for extra in range(8):
        path = store_paths[extra % len(store_paths)]
        scenarios.append(
            Scenario(
                name=f"{path}-seeded-{extra}",
                plan=FaultPlan.generate(seed + extra, ops=epochs),
                path=path,
            )
        )
    # The branching time-travel script, with its session crash points.
    scenarios.extend(build_branch_matrix())
    # The replicated store: volume loss, silent per-replica corruption,
    # torn acked writes, quorum loss, all-ack quorums, a 5-wide group.
    scenarios.extend(build_replica_matrix(epochs=epochs))
    return scenarios


def run(
    root_dir: str, seed: int = 20260806, epochs: int = 6
) -> dict:
    """Run the full matrix; returns a JSON-serializable summary."""
    scenarios = build_matrix(seed=seed, epochs=epochs)
    linear = [
        s for s in scenarios if s.path not in (BRANCH_PATH, REPLICA_PATH)
    ]
    branching = [s for s in scenarios if s.path == BRANCH_PATH]
    replicated = [s for s in scenarios if s.path == REPLICA_PATH]
    results = CrashSim(root_dir).run_matrix(linear)
    results += BranchSim(os.path.join(root_dir, BRANCH_PATH)).run_matrix(
        branching
    )
    results += ReplicaSim(os.path.join(root_dir, REPLICA_PATH)).run_matrix(
        replicated
    )
    failures = [result for result in results if not result.ok]
    return {
        "seed": seed,
        "epochs": epochs,
        "total": len(results),
        "failures": len(failures),
        "scenarios": [result.to_dict() for result in results],
    }


def summarize(summary: dict) -> str:
    lines = [
        f"crashsim: {summary['total']} scenarios, "
        f"{summary['failures']} failure(s) (seed {summary['seed']})"
    ]
    for entry in summary["scenarios"]:
        if not entry["ok"]:
            lines.append(
                f"  FAIL {entry['name']} [{entry['path']}]: "
                f"durable={entry['durable_epochs']} "
                f"identical={entry['recovered_identical']} "
                f"fsck={entry['fsck_consistent']} {entry['detail']}"
            )
    return "\n".join(lines)


def save_json(summary: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
