"""Deterministic fault injection for the checkpoint runtime.

The paper's premise is that checkpointing exists to survive faults; this
package is how the reproduction *tests* that, instead of assuming it:

- :mod:`repro.faults.plan` — seed-driven :class:`FaultPlan`/:class:`FaultSpec`:
  transient errors, torn writes, bit flips, stalls, crash points;
- :mod:`repro.faults.inject` — :class:`FaultyStore` / :class:`FaultySink`
  wrappers executing a plan against real stores and sinks;
- :mod:`repro.faults.crashsim` — the :class:`CrashSim` harness: run a
  session workload, crash it at every injected point, recover, and
  assert byte-identical state against a fault-free reference run
  (``python -m repro.faults`` runs the full matrix).
"""

from repro.faults.crashsim import (
    BranchScript,
    BranchSim,
    CrashSim,
    Scenario,
    ScenarioResult,
    Workload,
    build_branch_matrix,
    build_matrix,
    default_branch_script,
    default_workload,
    table_fingerprint,
)
from repro.faults.inject import FaultySink, FaultyStore, InjectedCrash, TransientFault
from repro.faults.plan import (
    ALL_KINDS,
    BITFLIP,
    CRASH_AFTER,
    CRASH_BEFORE,
    CRASH_FORK,
    CRASH_KINDS,
    CRASH_RESTORE,
    CRASH_TMP,
    KNOWN_KINDS,
    SESSION_KINDS,
    STALL,
    TORN,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultyStore",
    "FaultySink",
    "TransientFault",
    "InjectedCrash",
    "CrashSim",
    "BranchSim",
    "BranchScript",
    "Scenario",
    "ScenarioResult",
    "Workload",
    "default_workload",
    "default_branch_script",
    "build_matrix",
    "build_branch_matrix",
    "table_fingerprint",
    "ALL_KINDS",
    "SESSION_KINDS",
    "KNOWN_KINDS",
    "CRASH_KINDS",
    "TRANSIENT",
    "TORN",
    "BITFLIP",
    "STALL",
    "CRASH_BEFORE",
    "CRASH_AFTER",
    "CRASH_TMP",
    "CRASH_RESTORE",
    "CRASH_FORK",
]
