"""Deterministic fault injection for the checkpoint runtime.

The paper's premise is that checkpointing exists to survive faults; this
package is how the reproduction *tests* that, instead of assuming it:

- :mod:`repro.faults.plan` — seed-driven :class:`FaultPlan`/:class:`FaultSpec`:
  transient errors, torn writes, bit flips, stalls, crash points;
- :mod:`repro.faults.inject` — :class:`FaultyStore` / :class:`FaultySink`
  wrappers executing a plan against real stores and sinks;
- :mod:`repro.faults.crashsim` — the :class:`CrashSim` harness: run a
  session workload, crash it at every injected point, recover, and
  assert byte-identical state against a fault-free reference run
  (``python -m repro.faults`` runs the full matrix).
"""

from repro.faults.crashsim import (
    CrashSim,
    Scenario,
    ScenarioResult,
    Workload,
    build_matrix,
    default_workload,
    table_fingerprint,
)
from repro.faults.inject import FaultySink, FaultyStore, InjectedCrash, TransientFault
from repro.faults.plan import (
    ALL_KINDS,
    BITFLIP,
    CRASH_AFTER,
    CRASH_BEFORE,
    CRASH_KINDS,
    CRASH_TMP,
    STALL,
    TORN,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultyStore",
    "FaultySink",
    "TransientFault",
    "InjectedCrash",
    "CrashSim",
    "Scenario",
    "ScenarioResult",
    "Workload",
    "default_workload",
    "build_matrix",
    "table_fingerprint",
    "ALL_KINDS",
    "CRASH_KINDS",
    "TRANSIENT",
    "TORN",
    "BITFLIP",
    "STALL",
    "CRASH_BEFORE",
    "CRASH_AFTER",
    "CRASH_TMP",
]
