"""Fault-injecting wrappers around stores and sinks.

:class:`FaultyStore` wraps any :class:`~repro.core.storage.CheckpointStore`
and executes a :class:`~repro.faults.plan.FaultPlan` against its
``append`` stream: transient errors, stalls, torn writes, bit flips, and
crash points. Faults that manipulate bytes on disk (``torn``,
``bitflip``, ``crash-tmp``) require a file-backed store underneath.

:class:`FaultySink` is the same engine one layer up: a
:class:`~repro.runtime.sink.StoreSink` whose store is already wrapped,
so a whole :class:`~repro.runtime.session.CheckpointSession` commits
through the fault plan unchanged.

Two exception types carry the injections:

- :class:`TransientFault` — an ``OSError`` subclass, so the default
  retry classifier treats it as retryable;
- :class:`InjectedCrash` — a ``BaseException`` subclass: it models the
  *process dying*, so nothing in the runtime (retry policies, strategy
  fallback) may catch and absorb it. Only the crash simulator does.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.core.errors import CheckpointError
from repro.core.retry import RetryPolicy
from repro.core.storage import CheckpointStore, Epoch, FileStore
from repro.faults.plan import (
    BITFLIP,
    CRASH_AFTER,
    CRASH_BEFORE,
    CRASH_TMP,
    SESSION_KINDS,
    STALL,
    TORN,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.runtime.sink import StoreSink


class TransientFault(OSError):
    """An injected, retryable I/O failure."""


class InjectedCrash(BaseException):
    """The simulated process died at an injected crash point.

    Deliberately **not** an ``Exception``: generic error handling in the
    runtime must not be able to swallow a crash, exactly as it could not
    swallow a real ``kill -9``.
    """


def _file_store(store: CheckpointStore) -> FileStore:
    if not isinstance(store, FileStore):
        raise CheckpointError(
            "torn/bitflip/crash-tmp faults need a FileStore backing, got "
            f"{type(store).__name__}"
        )
    return store


class FaultyStore(CheckpointStore):
    """Execute a fault plan against the wrapped store's append stream.

    ``ops`` counts *logical* append operations: a transient fault does
    not advance the counter until the operation finally succeeds, so a
    retrying caller re-enters the same fault spec until its ``attempts``
    are exhausted — exactly how a flaky disk behaves.
    """

    def __init__(
        self,
        backing: CheckpointStore,
        plan: FaultPlan,
        sleep=time.sleep,
    ) -> None:
        for spec in plan:
            if spec.kind in SESSION_KINDS:
                raise CheckpointError(
                    f"fault kind {spec.kind!r} is a session-level crash "
                    "point; it cannot run on a store's append stream"
                )
        self.backing = backing
        self.plan = plan
        self._sleep = sleep
        #: logical append operations completed or crashed
        self.ops = 0
        #: human-readable record of every fault actually injected
        self.injected: List[str] = []
        self._transient_fired: Dict[int, int] = {}

    # -- injection ---------------------------------------------------------

    def _inject_transient(self, spec: FaultSpec) -> None:
        fired = self._transient_fired.get(spec.op, 0)
        if fired < spec.attempts:
            self._transient_fired[spec.op] = fired + 1
            self.injected.append(f"transient #{fired + 1} at op {spec.op}")
            raise TransientFault(f"injected transient fault at op {spec.op}")

    def _epoch_path(self, index: int) -> str:
        return _file_store(self.backing)._epoch_path(index)

    def _tear(self, index: int, at_byte: int) -> None:
        path = self._epoch_path(index)
        size = os.path.getsize(path)
        keep = min(int(at_byte), max(size - 1, 0))
        with open(path, "rb+") as handle:
            handle.truncate(keep)
        self.injected.append(f"torn epoch {index} at byte {keep}")

    def _flip(self, index: int, bit: int) -> None:
        path = self._epoch_path(index)
        data = bytearray(open(path, "rb").read())
        if not data:
            return
        position = int(bit) % (len(data) * 8)
        data[position // 8] ^= 1 << (position % 8)
        with open(path, "wb") as handle:
            handle.write(data)
        self.injected.append(f"flipped bit {position} of epoch {index}")

    def _orphan_tmp(self, kind: str, data: bytes) -> None:
        store = _file_store(self.backing)
        index = store._next_index()
        path = store._epoch_path(index) + ".tmp"
        with open(path, "wb") as handle:
            handle.write(bytes(data)[: max(1, len(data) // 2)])
        self.injected.append(f"orphaned {os.path.basename(path)}")

    # -- CheckpointStore interface -----------------------------------------

    def append(self, kind: str, data: bytes, **lineage) -> int:
        spec = self.plan.for_op(self.ops)
        if spec is None:
            index = self.backing.append(kind, data, **lineage)
            self.ops += 1
            return index
        if spec.kind == TRANSIENT:
            self._inject_transient(spec)
            index = self.backing.append(kind, data, **lineage)
            self.ops += 1
            return index
        if spec.kind == STALL:
            self.injected.append(f"stalled {spec.param:.3f}s at op {spec.op}")
            self._sleep(spec.param)
            index = self.backing.append(kind, data, **lineage)
            self.ops += 1
            return index
        if spec.kind == CRASH_BEFORE:
            self.ops += 1
            self.injected.append(f"crash before append at op {spec.op}")
            raise InjectedCrash(f"crash before append at op {spec.op}")
        if spec.kind == CRASH_TMP:
            self.ops += 1
            self._orphan_tmp(kind, data)
            raise InjectedCrash(f"crash mid-append (tmp left) at op {spec.op}")
        # The remaining kinds manipulate the file the append produced.
        index = self.backing.append(kind, data, **lineage)
        self.ops += 1
        if spec.kind == TORN:
            self._tear(index, int(spec.param))
            raise InjectedCrash(f"crash mid-write of epoch {index}")
        if spec.kind == BITFLIP:
            self._flip(index, int(spec.param))
            return index  # silent corruption: the caller never knows
        if spec.kind == CRASH_AFTER:
            self.injected.append(f"crash after append of epoch {index}")
            raise InjectedCrash(f"crash after append of epoch {index}")
        raise AssertionError(f"unhandled fault kind {spec.kind!r}")

    def epochs(self) -> List[Epoch]:
        return self.backing.epochs()

    def recover(self, registry=None, at=None):
        return self.backing.recover(registry, at=at)


class FaultySink(StoreSink):
    """A :class:`StoreSink` whose store runs under a fault plan.

    The convenience wrapper for session-level injection::

        sink = FaultySink(FileStore(path), plan, retry=RetryPolicy())
        session = CheckpointSession(roots=root, sink=sink)
    """

    def __init__(
        self,
        store: CheckpointStore,
        plan: FaultPlan,
        retry: Optional[RetryPolicy] = None,
        sleep=time.sleep,
    ) -> None:
        super().__init__(FaultyStore(store, plan, sleep=sleep), retry=retry)

    @property
    def faulty(self) -> FaultyStore:
        return self.store
