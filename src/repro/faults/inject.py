"""Fault-injecting wrappers around stores and sinks.

:class:`FaultyStore` wraps any :class:`~repro.core.storage.CheckpointStore`
and executes a :class:`~repro.faults.plan.FaultPlan` against its
``append`` stream: transient errors, stalls, torn writes, bit flips, and
crash points. Faults that manipulate bytes on disk (``torn``,
``bitflip``, ``crash-tmp``) require a file-backed store underneath.

:class:`FaultySink` is the same engine one layer up: a
:class:`~repro.runtime.sink.StoreSink` whose store is already wrapped,
so a whole :class:`~repro.runtime.session.CheckpointSession` commits
through the fault plan unchanged.

Two exception types carry the injections:

- :class:`TransientFault` — an ``OSError`` subclass, so the default
  retry classifier treats it as retryable;
- :class:`InjectedCrash` — a ``BaseException`` subclass: it models the
  *process dying*, so nothing in the runtime (retry policies, strategy
  fallback) may catch and absorb it. Only the crash simulator does.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.core.errors import CheckpointError
from repro.core.retry import RetryPolicy
from repro.core.storage import CheckpointStore, Epoch, FileStore
from repro.faults.plan import (
    BITFLIP,
    CORRUPT_REPLICA,
    CRASH_AFTER,
    CRASH_BEFORE,
    CRASH_TMP,
    KILL_REPLICA,
    REPLICA_KINDS,
    SESSION_KINDS,
    STALL,
    TORN,
    TORN_REPLICA,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
)
from repro.runtime.sink import StoreSink


class TransientFault(OSError):
    """An injected, retryable I/O failure."""


class InjectedCrash(BaseException):
    """The simulated process died at an injected crash point.

    Deliberately **not** an ``Exception``: generic error handling in the
    runtime must not be able to swallow a crash, exactly as it could not
    swallow a real ``kill -9``.
    """


def _file_store(store: CheckpointStore) -> FileStore:
    if not isinstance(store, FileStore):
        raise CheckpointError(
            "torn/bitflip/crash-tmp faults need a FileStore backing, got "
            f"{type(store).__name__}"
        )
    return store


class FaultyStore(CheckpointStore):
    """Execute a fault plan against the wrapped store's append stream.

    ``ops`` counts *logical* append operations: a transient fault does
    not advance the counter until the operation finally succeeds, so a
    retrying caller re-enters the same fault spec until its ``attempts``
    are exhausted — exactly how a flaky disk behaves.
    """

    def __init__(
        self,
        backing: CheckpointStore,
        plan: FaultPlan,
        sleep=time.sleep,
    ) -> None:
        for spec in plan:
            if spec.kind in SESSION_KINDS:
                raise CheckpointError(
                    f"fault kind {spec.kind!r} is a session-level crash "
                    "point; it cannot run on a store's append stream"
                )
            if spec.kind in REPLICA_KINDS:
                raise CheckpointError(
                    f"fault kind {spec.kind!r} targets one replica of a "
                    "ReplicatedStore; arm it with ReplicaFaultStore"
                )
        self.backing = backing
        self.plan = plan
        self._sleep = sleep
        #: logical append operations completed or crashed
        self.ops = 0
        #: human-readable record of every fault actually injected
        self.injected: List[str] = []
        self._transient_fired: Dict[int, int] = {}

    # -- injection ---------------------------------------------------------

    def _inject_transient(self, spec: FaultSpec) -> None:
        fired = self._transient_fired.get(spec.op, 0)
        if fired < spec.attempts:
            self._transient_fired[spec.op] = fired + 1
            self.injected.append(f"transient #{fired + 1} at op {spec.op}")
            raise TransientFault(f"injected transient fault at op {spec.op}")

    def _epoch_path(self, index: int) -> str:
        return _file_store(self.backing)._epoch_path(index)

    def _tear(self, index: int, at_byte: int) -> None:
        path = self._epoch_path(index)
        size = os.path.getsize(path)
        keep = min(int(at_byte), max(size - 1, 0))
        with open(path, "rb+") as handle:
            handle.truncate(keep)
        self.injected.append(f"torn epoch {index} at byte {keep}")

    def _flip(self, index: int, bit: int) -> None:
        path = self._epoch_path(index)
        data = bytearray(open(path, "rb").read())
        if not data:
            return
        position = int(bit) % (len(data) * 8)
        data[position // 8] ^= 1 << (position % 8)
        with open(path, "wb") as handle:
            handle.write(data)
        self.injected.append(f"flipped bit {position} of epoch {index}")

    def _orphan_tmp(self, kind: str, data: bytes) -> None:
        store = _file_store(self.backing)
        index = store._next_index()
        path = store._epoch_path(index) + ".tmp"
        with open(path, "wb") as handle:
            handle.write(bytes(data)[: max(1, len(data) // 2)])
        self.injected.append(f"orphaned {os.path.basename(path)}")

    # -- CheckpointStore interface -----------------------------------------

    def append(self, kind: str, data: bytes, **lineage) -> int:
        spec = self.plan.for_op(self.ops)
        if spec is None:
            index = self.backing.append(kind, data, **lineage)
            self.ops += 1
            return index
        if spec.kind == TRANSIENT:
            self._inject_transient(spec)
            index = self.backing.append(kind, data, **lineage)
            self.ops += 1
            return index
        if spec.kind == STALL:
            self.injected.append(f"stalled {spec.param:.3f}s at op {spec.op}")
            self._sleep(spec.param)
            index = self.backing.append(kind, data, **lineage)
            self.ops += 1
            return index
        if spec.kind == CRASH_BEFORE:
            self.ops += 1
            self.injected.append(f"crash before append at op {spec.op}")
            raise InjectedCrash(f"crash before append at op {spec.op}")
        if spec.kind == CRASH_TMP:
            self.ops += 1
            self._orphan_tmp(kind, data)
            raise InjectedCrash(f"crash mid-append (tmp left) at op {spec.op}")
        # The remaining kinds manipulate the file the append produced.
        index = self.backing.append(kind, data, **lineage)
        self.ops += 1
        if spec.kind == TORN:
            self._tear(index, int(spec.param))
            raise InjectedCrash(f"crash mid-write of epoch {index}")
        if spec.kind == BITFLIP:
            self._flip(index, int(spec.param))
            return index  # silent corruption: the caller never knows
        if spec.kind == CRASH_AFTER:
            self.injected.append(f"crash after append of epoch {index}")
            raise InjectedCrash(f"crash after append of epoch {index}")
        raise AssertionError(f"unhandled fault kind {spec.kind!r}")

    def epochs(self) -> List[Epoch]:
        return self.backing.epochs()

    def recover(self, registry=None, at=None):
        return self.backing.recover(registry, at=at)


class ReplicaFaultStore(CheckpointStore):
    """Execute replica-targeted faults against *one* replica's stream.

    Wrap each child of a :class:`~repro.core.replica.ReplicatedStore`
    with one of these (same plan, distinct ``replica`` ordinals); a spec
    only fires on the wrapper whose ordinal matches. ``op`` counts
    appends the replicated store fans out, so every wrapper sees the
    same op numbering.

    ``kill-replica`` makes every subsequent operation raise ``OSError``
    (a pulled volume — the process survives). ``corrupt-replica-record``
    and ``torn-replica-write`` let the append succeed, then damage the
    stored record *through* :meth:`put_epoch`, which recomputes the
    child store's CRC frame — so the damage is invisible to the child
    and only the replicated store's end-to-end sha256 (or a byte-compare
    scrub) can catch it. Torn damage on a file-backed child truncates
    the file directly instead, modelling a physically torn write.
    """

    def __init__(
        self,
        backing: CheckpointStore,
        plan: FaultPlan,
        replica: int,
    ) -> None:
        self.backing = backing
        self.plan = plan
        self.replica = replica
        #: append operations observed by this wrapper
        self.ops = 0
        #: whether kill-replica has fired
        self.dead = False
        #: human-readable record of every fault actually injected
        self.injected: List[str] = []

    def _check_dead(self) -> None:
        if self.dead:
            raise OSError(
                f"injected replica death: replica {self.replica} is gone"
            )

    def _damage_record(self, index: int, spec: FaultSpec) -> None:
        epoch = self.backing.epoch_map().get(index)
        if epoch is None or not epoch.data:
            return
        if spec.kind == CORRUPT_REPLICA:
            data = bytearray(epoch.data)
            position = int(spec.param) % len(data)
            data[position] ^= 0xFF
            self.backing.put_epoch(
                epoch._replace(data=bytes(data)), overwrite=True
            )
            self.injected.append(
                f"replica {self.replica}: corrupted byte {position} of "
                f"epoch {index}"
            )
            return
        # torn-replica-write
        keep = min(int(spec.param), max(len(epoch.data) - 1, 0))
        if isinstance(self.backing, FileStore):
            path = self.backing._epoch_path(index)
            size = os.path.getsize(path)
            with open(path, "rb+") as handle:
                handle.truncate(min(keep, max(size - 1, 0)))
            # the cached verified payload must not outlive the damage
            with self.backing._lock:
                self.backing._verified.pop(index, None)
        else:
            self.backing.put_epoch(
                epoch._replace(data=bytes(epoch.data[:keep])),
                overwrite=True,
            )
        self.injected.append(
            f"replica {self.replica}: tore epoch {index} at byte {keep}"
        )

    # -- CheckpointStore interface -----------------------------------------

    def append(self, kind: str, data: bytes, **lineage) -> int:
        spec = self.plan.for_op(self.ops)
        self.ops += 1
        if (
            spec is not None
            and spec.kind == KILL_REPLICA
            and spec.replica == self.replica
        ):
            self.dead = True
            self.injected.append(
                f"replica {self.replica} died at op {spec.op}"
            )
        self._check_dead()
        index = self.backing.append(kind, data, **lineage)
        if (
            spec is not None
            and spec.replica == self.replica
            and spec.kind in (CORRUPT_REPLICA, TORN_REPLICA)
        ):
            self._damage_record(index, spec)
        return index

    def epochs(self) -> List[Epoch]:
        self._check_dead()
        return self.backing.epochs()

    def epoch_map(self) -> Dict[int, Epoch]:
        self._check_dead()
        return self.backing.epoch_map()

    def put_epoch(self, epoch: Epoch, overwrite: bool = False) -> None:
        self._check_dead()
        self.backing.put_epoch(epoch, overwrite=overwrite)

    def quarantine_epoch(self, index: int, reason: str = ""):
        self._check_dead()
        return self.backing.quarantine_epoch(index, reason)

    def recover(self, registry=None, at=None):
        self._check_dead()
        return self.backing.recover(registry, at=at)

    def _serial_translation(self, registry):
        self._check_dead()
        return self.backing._serial_translation(registry)


class FaultySink(StoreSink):
    """A :class:`StoreSink` whose store runs under a fault plan.

    The convenience wrapper for session-level injection::

        sink = FaultySink(FileStore(path), plan, retry=RetryPolicy())
        session = CheckpointSession(roots=root, sink=sink)
    """

    def __init__(
        self,
        store: CheckpointStore,
        plan: FaultPlan,
        retry: Optional[RetryPolicy] = None,
        sleep=time.sleep,
    ) -> None:
        super().__init__(FaultyStore(store, plan, sleep=sleep), retry=retry)

    @property
    def faulty(self) -> FaultyStore:
        return self.store
