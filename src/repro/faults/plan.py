"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` is the *entire* randomness of a fault-injection run,
fixed up front: which append operation misbehaves, how (transient error,
torn write, bit flip, stall, crash point), and with what parameter. Two
runs built from the same seed inject byte-identical faults, which is what
lets :mod:`repro.faults.crashsim` compare a faulty run against a
fault-free reference and demand *byte-identical* recovered state.

Fault kinds
-----------
``transient``
    The append raises :class:`~repro.faults.inject.TransientFault`
    (an ``OSError``) ``attempts`` times, then succeeds — the shape a
    retry policy must absorb.
``torn``
    The epoch file is written, then truncated at byte ``param`` and the
    process "crashes" — the on-disk state a crash mid-``write`` leaves.
``bitflip``
    The epoch file is written, then bit ``param`` is flipped in place —
    silent media corruption the CRC must catch.
``stall``
    The append sleeps ``param`` seconds before completing — a slow disk,
    for exercising flush timeouts.
``crash-before``
    The process "crashes" before any byte of the epoch reaches disk.
``crash-after``
    The epoch file is fully durable, then the process "crashes" before
    the manifest rewrite — the gap between ``append`` and manifest.
``crash-tmp``
    The process "crashes" after writing ``epoch-N.ckpt.tmp`` but before
    the atomic rename — the orphaned-temporary state
    :class:`~repro.core.storage.FileStore` and ``fsck`` must quarantine.
``crash-restore`` / ``crash-fork``
    Session-level crash points: the process dies entering
    (``param == 0``) or leaving (``param == 1``) a
    ``CheckpointSession.restore`` / ``fork`` call. These never reach a
    store's append stream — the crash simulator arms them on the session
    itself — so :class:`~repro.faults.inject.FaultyStore` rejects plans
    containing them.
``kill-replica``
    Replica ``replica`` dies at op ``op``: every operation on it raises
    ``OSError`` from then on — a pulled volume. The *process* survives;
    the replicated store's quorum must absorb the loss.
``corrupt-replica-record``
    The append on replica ``replica`` succeeds, then byte ``param`` of
    the stored record is flipped **through the store's own framing** —
    the child CRC is recomputed, so only the end-to-end sha256 can catch
    it. Silent; the replica keeps acking.
``torn-replica-write``
    The append on replica ``replica`` is acked, then its record is
    truncated at byte ``param`` — a torn write the volume lied about.
    Silent at inject time; detected at read/scrub time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.errors import CheckpointError

TRANSIENT = "transient"
TORN = "torn"
BITFLIP = "bitflip"
STALL = "stall"
CRASH_BEFORE = "crash-before"
CRASH_AFTER = "crash-after"
CRASH_TMP = "crash-tmp"
CRASH_RESTORE = "crash-restore"
CRASH_FORK = "crash-fork"
KILL_REPLICA = "kill-replica"
CORRUPT_REPLICA = "corrupt-replica-record"
TORN_REPLICA = "torn-replica-write"

#: kinds injected at a store's append stream (what ``generate`` draws from)
ALL_KINDS = (
    TRANSIENT,
    TORN,
    BITFLIP,
    STALL,
    CRASH_BEFORE,
    CRASH_AFTER,
    CRASH_TMP,
)
#: kinds armed on a session's restore/fork path, not on appends
SESSION_KINDS = (CRASH_RESTORE, CRASH_FORK)
#: kinds targeting one replica of a ReplicatedStore, not the process
REPLICA_KINDS = (KILL_REPLICA, CORRUPT_REPLICA, TORN_REPLICA)
#: every kind a FaultSpec may carry
KNOWN_KINDS = ALL_KINDS + SESSION_KINDS + REPLICA_KINDS
#: kinds that end the run (the simulated process dies at this point)
CRASH_KINDS = (TORN, CRASH_BEFORE, CRASH_AFTER, CRASH_TMP) + SESSION_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: which append, what kind, with which parameter.

    ``op`` counts append operations on the faulty store from 0; ``param``
    is the kind-specific knob (truncation byte, flipped bit, stall
    seconds); ``attempts`` is how many times a ``transient`` fault fires
    before the operation succeeds; ``replica`` selects the target
    replica for the replica-scoped kinds (ignored otherwise).
    """

    op: int
    kind: str
    param: float = 0.0
    attempts: int = 1
    replica: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise CheckpointError(f"unknown fault kind {self.kind!r}")
        if self.op < 0:
            raise CheckpointError(f"fault op must be >= 0, got {self.op}")
        if self.attempts < 1:
            raise CheckpointError(
                f"fault attempts must be >= 1, got {self.attempts}"
            )

    @property
    def crashes(self) -> bool:
        return self.kind in CRASH_KINDS

    def describe(self) -> str:
        if self.kind == TRANSIENT:
            return f"op {self.op}: transient x{self.attempts}"
        if self.kind == TORN:
            return f"op {self.op}: torn write at byte {int(self.param)}"
        if self.kind == BITFLIP:
            return f"op {self.op}: bit {int(self.param)} flipped"
        if self.kind == STALL:
            return f"op {self.op}: stall {self.param:.3f}s"
        if self.kind in SESSION_KINDS:
            point = "enter" if int(self.param) == 0 else "exit"
            return f"op {self.op}: {self.kind} at {point}"
        if self.kind == KILL_REPLICA:
            return f"op {self.op}: replica {self.replica} dies"
        if self.kind == CORRUPT_REPLICA:
            return (
                f"op {self.op}: replica {self.replica} record byte "
                f"{int(self.param)} corrupted"
            )
        if self.kind == TORN_REPLICA:
            return (
                f"op {self.op}: replica {self.replica} record torn at "
                f"byte {int(self.param)}"
            )
        return f"op {self.op}: {self.kind}"


class FaultPlan:
    """An ordered set of :class:`FaultSpec`, at most one per append op."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self._by_op: Dict[int, FaultSpec] = {}
        for spec in specs:
            if spec.op in self._by_op:
                raise CheckpointError(
                    f"fault plan already has a fault at op {spec.op}"
                )
            self._by_op[spec.op] = spec

    def for_op(self, op: int) -> Optional[FaultSpec]:
        return self._by_op.get(op)

    def specs(self) -> List[FaultSpec]:
        return [self._by_op[op] for op in sorted(self._by_op)]

    def __len__(self) -> int:
        return len(self._by_op)

    def __iter__(self):
        return iter(self.specs())

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self) or "no faults"

    @classmethod
    def single(cls, spec: FaultSpec) -> "FaultPlan":
        return cls([spec])

    @classmethod
    def generate(
        cls,
        seed: int,
        ops: int,
        kinds: Sequence[str] = ALL_KINDS,
        max_faults: int = 2,
        frame_bytes: int = 64,
    ) -> "FaultPlan":
        """A deterministic plan over ``ops`` appends from ``seed``.

        ``frame_bytes`` bounds torn-write offsets and bit-flip positions
        (they are clamped to the real file size at injection time).
        The same ``(seed, ops, kinds, max_faults, frame_bytes)`` always
        yields the same plan.
        """
        rng = random.Random(seed)
        count = rng.randint(1, max(1, max_faults))
        chosen_ops = rng.sample(range(ops), min(count, ops))
        specs = []
        crashed = False
        for op in sorted(chosen_ops):
            if crashed:
                break  # nothing runs after the crash point
            kind = rng.choice(list(kinds))
            if kind == TRANSIENT:
                specs.append(
                    FaultSpec(op, TRANSIENT, attempts=rng.randint(1, 2))
                )
            elif kind == TORN:
                specs.append(
                    FaultSpec(op, TORN, param=rng.randrange(frame_bytes))
                )
                crashed = True
            elif kind == BITFLIP:
                specs.append(
                    FaultSpec(op, BITFLIP, param=rng.randrange(frame_bytes * 8))
                )
            elif kind == STALL:
                specs.append(
                    FaultSpec(op, STALL, param=rng.uniform(0.001, 0.005))
                )
            else:
                specs.append(FaultSpec(op, kind))
                crashed = True
        return cls(specs)
