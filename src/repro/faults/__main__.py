"""``python -m repro.faults``: run the seeded crash-simulation matrix.

Runs every scenario of :func:`repro.faults.crashsim.build_matrix` in a
temporary (or given) working directory and reports how many recovered
byte-identically. Exit code 0 iff every scenario passed.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.faults.crashsim import run, save_json, summarize


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run the seeded fault-injection / crash-recovery matrix.",
    )
    parser.add_argument(
        "--seed", type=int, default=20260806, help="matrix seed"
    )
    parser.add_argument(
        "--epochs", type=int, default=6, help="epochs per workload run"
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="working directory (default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the full scenario report as JSON",
    )
    args = parser.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="crashsim-")
    summary = run(workdir, seed=args.seed, epochs=args.epochs)
    print(summarize(summary))
    if args.json:
        save_json(summary, args.json)
        print(f"[wrote {args.json}]")
    return 0 if summary["failures"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
